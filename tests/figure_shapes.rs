//! Shape tests: reduced-budget versions of the claims each figure of the
//! paper makes, asserted as inequalities rather than absolute numbers.

use das_dram::geometry::FastRatio;
use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{improvement, run_one as run_one_checked};
use das_workloads::config::WorkloadConfig;
use das_workloads::spec;

fn cfg() -> SystemConfig {
    SystemConfig::test_small()
}

fn wl(name: &str) -> Vec<WorkloadConfig> {
    vec![spec::by_name(name)]
}

fn run_one(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
) -> das_sim::stats::RunMetrics {
    run_one_checked(cfg, design, workloads).expect("simulation must finish")
}

/// Fig. 7a: DAS-DRAM recovers a large share of the FS-DRAM potential on a
/// workload whose hot set fits the fast level.
#[test]
fn fig7a_das_recovers_most_of_fs_potential() {
    let base = run_one(&cfg(), Design::Standard, &wl("omnetpp"));
    let das = improvement(&run_one(&cfg(), Design::DasDram, &wl("omnetpp")), &base);
    let fs = improvement(&run_one(&cfg(), Design::FsDram, &wl("omnetpp")), &base);
    // At the full 3M-instruction budget DAS recovers >90% on omnetpp
    // (see EXPERIMENTS.md); the reduced test budget leaves proportionally
    // more cold-start migration in the measured window, so gate at 40%.
    assert!(
        das > 0.4 * fs,
        "DAS {das:.3} should recover >40% of FS {fs:.3}"
    );
}

/// Fig. 7c: dynamic migration raises the fast-level share of activations
/// far above static profiling on a phase-drifting workload.
#[test]
fn fig7c_dynamic_beats_static_fast_utilisation() {
    let sas = run_one(&cfg(), Design::SasDram, &wl("soplex"));
    let das = run_one(&cfg(), Design::DasDram, &wl("soplex"));
    assert!(
        das.fast_activation_ratio() > sas.fast_activation_ratio() + 0.15,
        "dynamic {:.2} vs static {:.2}",
        das.fast_activation_ratio(),
        sas.fast_activation_ratio()
    );
}

/// Fig. 8c: the paper's finding is that filtering "is not very effective
/// at reducing row promotion frequency" — rates stay in a narrow band —
/// while fast-level utilisation degrades at high thresholds (Fig. 8b).
#[test]
fn fig8_threshold_filtering_is_ineffective_but_costs_utilisation() {
    let mut rates = Vec::new();
    let mut fast_ratio = Vec::new();
    for t in [1u32, 2, 4, 8] {
        let c = cfg().with_threshold(t);
        let m = run_one(&c, Design::DasDram, &wl("milc"));
        rates.push(m.promotions_per_access());
        fast_ratio.push(m.fast_activation_ratio());
    }
    assert!(rates[0] > 0.0);
    let max = rates.iter().cloned().fold(f64::MIN, f64::max);
    let min = rates.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max < min * 2.5,
        "promotion rates should stay in a band: {rates:?}"
    );
    assert!(
        fast_ratio[3] <= fast_ratio[0] + 0.02,
        "high thresholds must not improve utilisation: {fast_ratio:?}"
    );
}

/// Fig. 9a: a translation cache too small to cover the fast level costs
/// performance relative to the paper's 128 KB (scaled) capacity.
#[test]
fn fig9a_small_translation_cache_hurts() {
    let base = run_one(&cfg(), Design::Standard, &wl("mcf"));
    // 4 KB full-scale equivalent: far below fast-level coverage.
    let tiny = cfg().with_tcache_bytes(4 << 10);
    let small = improvement(&run_one(&tiny, Design::DasDram, &wl("mcf")), &base);
    let full = cfg().with_tcache_bytes(128 << 10);
    let big = improvement(&run_one(&full, Design::DasDram, &wl("mcf")), &base);
    assert!(
        big > small,
        "covering tcache ({big:.4}) must beat a starved one ({small:.4})"
    );
}

/// Fig. 9b: migration group size has only a subtle effect.
#[test]
fn fig9b_group_size_effect_is_subtle() {
    let base = run_one(&cfg(), Design::Standard, &wl("omnetpp"));
    let mut imps = Vec::new();
    for g in [8u32, 32, 64] {
        let c = cfg().with_group_size(g);
        imps.push(improvement(
            &run_one(&c, Design::DasDram, &wl("omnetpp")),
            &base,
        ));
    }
    let max = imps.iter().cloned().fold(f64::MIN, f64::max);
    let min = imps.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max - min < 0.06,
        "group size should be a second-order effect: {imps:?}"
    );
}

/// Fig. 9c: shrinking the fast level to 1/32 hurts a large-footprint
/// workload relative to 1/4.
#[test]
fn fig9c_small_fast_level_hurts_large_footprints() {
    let base = run_one(&cfg(), Design::Standard, &wl("mcf"));
    let tiny = cfg().with_fast_ratio(FastRatio::new(1, 32));
    let small = improvement(&run_one(&tiny, Design::DasDram, &wl("mcf")), &base);
    let big_cfg = cfg().with_fast_ratio(FastRatio::new(1, 4));
    let big = improvement(&run_one(&big_cfg, Design::DasDram, &wl("mcf")), &base);
    assert!(
        big > small + 0.01,
        "1/4 ({big:.3}) must clearly beat 1/32 ({small:.3})"
    );
}

/// Fig. 9d: LRU vs Random replacement is a wash at the default ratio.
#[test]
fn fig9d_replacement_policy_is_negligible() {
    use das_core::replacement::ReplacementPolicy;
    let base = run_one(&cfg(), Design::Standard, &wl("soplex"));
    let lru_cfg = cfg().with_replacement(ReplacementPolicy::Lru);
    let lru = improvement(&run_one(&lru_cfg, Design::DasDram, &wl("soplex")), &base);
    let rnd_cfg = cfg().with_replacement(ReplacementPolicy::Random);
    let rnd = improvement(&run_one(&rnd_cfg, Design::DasDram, &wl("soplex")), &base);
    assert!(
        (lru - rnd).abs() < 0.04,
        "LRU {lru:.3} vs Random {rnd:.3} should be close"
    );
}

/// §7.7: DAS-DRAM consumes no more DRAM energy than the standard design's
/// run (fast activations are cheaper; migrations are rare).
#[test]
fn power_das_energy_is_competitive() {
    let base = run_one(&cfg(), Design::Standard, &wl("omnetpp"));
    let das = run_one(&cfg(), Design::DasDram, &wl("omnetpp"));
    assert!(
        das.energy.total_nj() < base.energy.total_nj() * 1.05,
        "DAS {:.0} nJ vs Std {:.0} nJ",
        das.energy.total_nj(),
        base.energy.total_nj()
    );
    assert!(das.energy.migration_nj > 0.0);
}

/// §4.2/§5.1 ablation: the overlapped 3 tRC swap beats a naive
/// 3-migration software swap.
#[test]
fn ablation_fast_swap_beats_naive_swap() {
    use das_dram::tick::Tick;
    use das_dram::timing::TimingSet;
    let base = run_one(&cfg(), Design::Standard, &wl("mcf"));
    let paper = improvement(&run_one(&cfg(), Design::DasDram, &wl("mcf")), &base);
    let mut naive_cfg = cfg();
    let mut t = TimingSet::asymmetric();
    t.swap = Tick::new(t.slow.trc().raw() * 6); // three untightened migrations
    naive_cfg.timing_override = Some(t);
    let naive = improvement(&run_one(&naive_cfg, Design::DasDram, &wl("mcf")), &base);
    assert!(
        paper > naive,
        "paper swap {paper:.4} must beat naive {naive:.4}"
    );
}
