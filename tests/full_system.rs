//! End-to-end integration tests spanning every crate: full-system runs on
//! each design, conservation invariants, determinism, and multi-core
//! behaviour.

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{improvement, profile_row_counts, run_one as run_one_checked};
use das_sim::stats::RunMetrics;
use das_workloads::config::WorkloadConfig;
use das_workloads::{mixes, spec};

fn cfg() -> SystemConfig {
    SystemConfig::test_small()
}

fn run_one(cfg: &SystemConfig, design: Design, workloads: &[WorkloadConfig]) -> RunMetrics {
    run_one_checked(cfg, design, workloads).expect("simulation must finish")
}

fn soplex() -> Vec<WorkloadConfig> {
    vec![spec::by_name("soplex")]
}

fn sanity(m: &RunMetrics) {
    assert!(m.ipc() > 0.0, "{}: zero IPC", m.design);
    assert!(m.llc_misses > 0, "{}: no misses", m.design);
    assert!(m.memory_accesses > 0, "{}: no DRAM traffic", m.design);
    assert!(m.footprint_bytes > 0);
    assert!(m.window_cycles > 0);
    let (rb, f, s) = m.access_mix.fractions();
    assert!(
        (rb + f + s - 1.0).abs() < 1e-9,
        "{}: mix fractions must sum to 1",
        m.design
    );
    assert!(m.energy.total_nj() > 0.0);
}

#[test]
fn every_design_runs_and_reports_sane_metrics() {
    let extras = [
        Design::TlDram,
        Design::DasInclusive,
        Design::ClrDram,
        Design::Lisa,
        Design::Salp,
    ];
    for design in Design::all().into_iter().chain(extras) {
        let m = run_one(&cfg(), design, &soplex());
        sanity(&m);
        match design {
            Design::Standard => {
                assert_eq!(m.access_mix.fast, 0);
                assert_eq!(m.promotions, 0);
            }
            Design::FsDram => {
                assert_eq!(m.access_mix.slow, 0);
                assert_eq!(m.promotions, 0);
            }
            // SALP keeps homogeneous timing: nothing to promote into.
            Design::SasDram | Design::Charm | Design::Salp => assert_eq!(m.promotions, 0),
            Design::DasDram
            | Design::DasDramFm
            | Design::DasInclusive
            | Design::TlDram
            | Design::ClrDram
            | Design::Lisa => {
                assert!(m.promotions > 0, "dynamic designs must migrate")
            }
        }
    }
}

#[test]
fn identical_runs_are_deterministic() {
    let a = run_one(&cfg(), Design::DasDram, &soplex());
    let b = run_one(&cfg(), Design::DasDram, &soplex());
    assert_eq!(a.cores[0].insts, b.cores[0].insts);
    assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
    assert_eq!(a.llc_misses, b.llc_misses);
    assert_eq!(a.promotions, b.promotions);
    assert_eq!(a.access_mix, b.access_mix);
}

#[test]
fn different_seeds_differ() {
    let mut c2 = cfg();
    c2.seed = 1234;
    let a = run_one(&cfg(), Design::DasDram, &soplex());
    let b = run_one(&c2, Design::DasDram, &soplex());
    assert_ne!(
        (a.cores[0].cycles, a.llc_misses),
        (b.cores[0].cycles, b.llc_misses),
        "different seeds should perturb the run"
    );
}

#[test]
fn design_ordering_holds_for_a_latency_bound_workload() {
    let wl = vec![spec::by_name("mcf")];
    let base = run_one(&cfg(), Design::Standard, &wl);
    let sas = improvement(&run_one(&cfg(), Design::SasDram, &wl), &base);
    let das = improvement(&run_one(&cfg(), Design::DasDram, &wl), &base);
    let fm = improvement(&run_one(&cfg(), Design::DasDramFm, &wl), &base);
    let fs = improvement(&run_one(&cfg(), Design::FsDram, &wl), &base);
    assert!(fs > 0.0);
    assert!(das > 0.0, "DAS must beat standard DRAM: {das}");
    assert!(
        fm >= das - 0.02,
        "free migration can only help: {fm} vs {das}"
    );
    assert!(fs >= fm - 0.02, "FS is the upper bound: {fs} vs {fm}");
    assert!(
        das > sas,
        "dynamic must beat static on a phase-drifting workload"
    );
}

#[test]
fn multi_core_mix_runs_all_four_cores() {
    let mut c = cfg();
    c.inst_budget = 200_000;
    let wl: Vec<WorkloadConfig> = mixes::mix("M5").iter().map(|w| w.scaled(2)).collect();
    let m = run_one(&c, Design::DasDram, &wl);
    assert_eq!(m.cores.len(), 4);
    for (i, core) in m.cores.iter().enumerate() {
        assert!(core.ipc() > 0.0, "core {i} made no progress");
        assert!(core.insts > 0);
    }
    sanity(&m);
}

#[test]
fn multi_core_improvement_exceeds_zero() {
    let mut c = cfg();
    c.inst_budget = 200_000;
    let wl: Vec<WorkloadConfig> = mixes::mix("M5").iter().map(|w| w.scaled(2)).collect();
    let base = run_one(&c, Design::Standard, &wl);
    let das = run_one(&c, Design::DasDram, &wl);
    assert!(improvement(&das, &base) > 0.0);
}

#[test]
fn profiling_is_reproducible_and_nonempty() {
    let c = cfg();
    let scaled: Vec<_> = soplex().iter().map(|w| w.scaled(c.scale as u64)).collect();
    let a = profile_row_counts(&c, &scaled);
    let b = profile_row_counts(&c, &scaled);
    assert_eq!(a, b);
    assert!(a.len() > 32, "profile should cover many rows: {}", a.len());
}

#[test]
fn refresh_can_be_enabled_without_deadlock() {
    let mut c = cfg();
    c.refresh = true;
    c.inst_budget = 150_000;
    let m = run_one(&c, Design::DasDram, &soplex());
    sanity(&m);
}

#[test]
fn warmup_fraction_changes_measured_window() {
    let mut c = cfg();
    c.warmup_frac = 0.0;
    let all = run_one(&c, Design::Standard, &soplex());
    c.warmup_frac = 0.5;
    let half = run_one(&c, Design::Standard, &soplex());
    assert!(half.cores[0].insts < all.cores[0].insts);
    assert!(half.cores[0].insts >= c.inst_budget / 3);
}

#[test]
fn charm_beats_sas_via_faster_column_path() {
    // CHARM = SAS + optimised fast-region CL; on a workload with real fast
    // hits it must not be slower.
    let wl = vec![spec::by_name("milc")];
    let base = run_one(&cfg(), Design::Standard, &wl);
    let sas = improvement(&run_one(&cfg(), Design::SasDram, &wl), &base);
    let charm = improvement(&run_one(&cfg(), Design::Charm, &wl), &base);
    assert!(charm >= sas - 0.005, "CHARM {charm} should be >= SAS {sas}");
}

#[test]
fn footprint_metric_tracks_workload_size() {
    let c = cfg();
    let small = run_one(&c, Design::Standard, &[spec::by_name("libquantum")]);
    let large = run_one(&c, Design::Standard, &[spec::by_name("mcf")]);
    assert!(large.footprint_bytes > small.footprint_bytes);
}

#[test]
fn inclusive_alternative_runs_and_tracks_exclusive() {
    let wl = vec![spec::by_name("omnetpp")];
    let base = run_one(&cfg(), Design::Standard, &wl);
    let excl = run_one(&cfg(), Design::DasDram, &wl);
    let incl = run_one(&cfg(), Design::DasInclusive, &wl);
    assert!(incl.promotions > 0, "inclusive must fill");
    let (ei, ii) = (improvement(&excl, &base), improvement(&incl, &base));
    assert!(ii > 0.0, "inclusive must beat standard: {ii}");
    assert!(
        (ei - ii).abs() < 0.08,
        "managements should be comparable: {ei} vs {ii}"
    );
}

#[test]
fn tl_dram_baseline_runs_with_cheap_copies() {
    let wl = vec![spec::by_name("omnetpp")];
    let base = run_one(&cfg(), Design::Standard, &wl);
    let tl = run_one(&cfg(), Design::TlDram, &wl);
    assert!(tl.promotions > 0, "TL-DRAM must cache into near segments");
    assert!(improvement(&tl, &base) > 0.0);
    // Far segments pay the isolation penalty: some slow traffic remains,
    // but near-segment caching dominates.
    assert!(tl.fast_activation_ratio() > 0.5);
}

#[test]
fn recorded_traces_run_end_to_end() {
    use das_cpu::trace::TraceItem;
    use das_sim::experiments::run_recorded;
    let mut items = Vec::new();
    for i in 0..30_000u64 {
        let addr = (i * 37 % 256) * 8192 + (i.wrapping_mul(0x9e37_79b9) >> 9) % 128 * 64;
        items.push(TraceItem::load(20, addr));
    }
    let mut c = cfg();
    c.inst_budget = u64::MAX;
    let base = run_recorded(&c, Design::Standard, vec![items.clone()]).unwrap();
    let das = run_recorded(&c, Design::DasDram, vec![items.clone()]).unwrap();
    let sas = run_recorded(&c, Design::SasDram, vec![items]).unwrap();
    assert!(base.ipc() > 0.0 && das.ipc() > 0.0 && sas.ipc() > 0.0);
    assert!(das.promotions > 0);
    assert!(
        improvement(&das, &base) > 0.0,
        "a hot-ring trace must benefit from DAS"
    );
}

#[test]
fn salp_composes_with_designs() {
    let wl = vec![spec::by_name("milc")];
    let base = run_one(&cfg(), Design::Standard, &wl);
    let mut salp_cfg = cfg();
    salp_cfg.salp = true;
    let std_salp = run_one(&salp_cfg, Design::Standard, &wl);
    let das_salp = run_one(&salp_cfg, Design::DasDram, &wl);
    assert!(
        improvement(&std_salp, &base) > 0.0,
        "SALP alone must help milc"
    );
    assert!(
        improvement(&das_salp, &base) > improvement(&std_salp, &base),
        "DAS should stack on top of SALP"
    );
}
