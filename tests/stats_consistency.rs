//! Accounting cross-checks: the relationships between RunMetrics fields
//! that must hold for any run (catching stats-plumbing regressions).

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::run_one as run_one_checked;
use das_workloads::spec;

fn run_one(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[das_workloads::config::WorkloadConfig],
) -> das_sim::stats::RunMetrics {
    run_one_checked(cfg, design, workloads).expect("simulation must finish")
}

fn run(design: Design) -> das_sim::stats::RunMetrics {
    let cfg = SystemConfig::test_small();
    run_one(&cfg, design, &[spec::by_name("soplex")])
}

#[test]
fn access_mix_total_equals_memory_accesses() {
    for design in [Design::Standard, Design::DasDram, Design::FsDram] {
        let m = run(design);
        assert_eq!(
            m.access_mix.total(),
            m.memory_accesses,
            "{}: every serviced access must be classified",
            m.design
        );
    }
}

#[test]
fn reads_dominate_memory_traffic_for_read_heavy_workloads() {
    let m = run(Design::Standard);
    // Write-backs can only come from previously fetched (read) lines.
    assert!(m.memory_accesses >= m.llc_misses / 2, "{m:?}");
}

#[test]
fn derived_ratios_match_raw_counters() {
    let m = run(Design::DasDram);
    let insts: u64 = m.cores.iter().map(|c| c.insts).sum();
    assert!((m.mpki() - m.llc_misses as f64 * 1000.0 / insts as f64).abs() < 1e-9);
    assert!((m.ppkm() - m.promotions as f64 * 1000.0 / m.llc_misses as f64).abs() < 1e-9);
    let (rb, f, s) = m.access_mix.fractions();
    assert!((rb + f + s - 1.0).abs() < 1e-12);
    assert!(m.fast_activation_ratio() >= 0.0 && m.fast_activation_ratio() <= 1.0);
}

#[test]
fn footprint_bounded_by_workload_definition() {
    let cfg = SystemConfig::test_small();
    let w = spec::by_name("soplex");
    let scaled_fp = w.scaled(cfg.scale as u64).footprint_bytes;
    let m = run_one(&cfg, Design::Standard, &[w]);
    assert!(
        m.footprint_bytes <= scaled_fp,
        "footprint cannot exceed the region"
    );
    assert!(
        m.footprint_bytes > scaled_fp / 100,
        "episode should touch real data"
    );
}

#[test]
fn energy_components_are_nonnegative_and_dominated_by_background_or_dynamic() {
    let m = run(Design::DasDram);
    let e = &m.energy;
    assert!(e.act_pre_nj >= 0.0 && e.burst_nj > 0.0 && e.background_nj > 0.0);
    assert!(e.migration_nj >= 0.0);
    assert!(e.total_nj() > e.burst_nj);
}

#[test]
fn subarray_accounting_is_bounded() {
    let m = run(Design::DasDram);
    assert!(m.active_subarrays > 0);
    assert!(m.active_subarrays <= m.total_subarrays);
    let idle = m.idle_subarray_fraction();
    assert!((0.0..=1.0).contains(&idle));
}

#[test]
fn translation_stats_only_for_managed_designs() {
    let std = run(Design::Standard);
    assert_eq!(std.translation.hits + std.translation.misses, 0);
    assert_eq!(std.table_fetch_reads, 0);
    let das = run(Design::DasDram);
    assert!(das.translation.hits + das.translation.misses > 0);
}

#[test]
fn window_cycles_scale_with_budget() {
    let mut cfg = SystemConfig::test_small();
    let short = run_one(&cfg, Design::Standard, &[spec::by_name("soplex")]);
    cfg.inst_budget *= 2;
    let long = run_one(&cfg, Design::Standard, &[spec::by_name("soplex")]);
    assert!(
        long.window_cycles > short.window_cycles * 3 / 2,
        "doubling the budget must lengthen the window: {} vs {}",
        long.window_cycles,
        short.window_cycles
    );
}
