//! Double-buffered streaming reads of `.dtr` traces.
//!
//! [`PrefetchReader`] decodes blocks on a background thread and hands them
//! to the consumer over a bounded channel of depth one — while the
//! simulator drains block *n*, the decoder is already validating and
//! unpacking block *n + 1*. The consumer-facing iterator yields plain
//! [`TraceItem`]s (the simulator's trace sources are infallible
//! iterators); decode errors are parked in a shared [`StreamStatus`] that
//! the caller must check after the run, so a truncated or corrupted trace
//! fails the job loudly instead of silently ending it early.

use std::fs::File;
use std::io::{self, BufReader, Read};
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use das_cpu::TraceItem;

use crate::format::TraceReader;

/// Shared view of a background decode's health.
///
/// Cheap to clone; the error slot is set at most once, when the decoder
/// thread hits a format or I/O error.
#[derive(Debug, Clone, Default)]
pub struct StreamStatus {
    err: Arc<Mutex<Option<String>>>,
}

impl StreamStatus {
    /// The decode error, if one occurred. Call after the consumer has
    /// drained the iterator — an early EOF plus an error here means the
    /// trace was bad, not short.
    pub fn error(&self) -> Option<String> {
        self.err.lock().map(|g| g.clone()).unwrap_or(None)
    }

    fn set(&self, msg: String) {
        if let Ok(mut g) = self.err.lock() {
            g.get_or_insert(msg);
        }
    }
}

/// A `.dtr` reader that decodes one block ahead on a background thread.
///
/// The header is validated synchronously in the constructor so an
/// unreadable file fails at open time; everything after that flows through
/// the channel. Iteration ends at the footer *or* at an error — consult
/// [`PrefetchReader::status`] to tell the two apart.
#[derive(Debug)]
pub struct PrefetchReader {
    rx: Option<Receiver<Vec<TraceItem>>>,
    cur: std::vec::IntoIter<TraceItem>,
    status: StreamStatus,
    decoder: Option<JoinHandle<()>>,
}

impl PrefetchReader {
    /// Opens `path` and starts the background decoder.
    ///
    /// # Errors
    ///
    /// File-open and header errors (bad magic, unsupported version) are
    /// reported here, synchronously.
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = File::open(path)?;
        Self::from_reader(BufReader::new(file))
    }

    /// Like [`PrefetchReader::open`] over any readable stream.
    ///
    /// # Errors
    ///
    /// Header errors (bad magic, unsupported version) and I/O errors.
    pub fn from_reader<R: Read + Send + 'static>(inp: R) -> io::Result<Self> {
        let mut reader =
            TraceReader::new(inp).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let status = StreamStatus::default();
        let thread_status = status.clone();
        // Bound 1 = double buffering: one block in flight beyond the one
        // being consumed.
        let (tx, rx) = sync_channel::<Vec<TraceItem>>(1);
        let decoder = std::thread::Builder::new()
            .name("dtr-prefetch".into())
            .spawn(move || loop {
                match reader.next_block() {
                    Ok(Some(items)) => {
                        if tx.send(items).is_err() {
                            return; // consumer dropped the reader
                        }
                    }
                    Ok(None) => return,
                    Err(e) => {
                        thread_status.set(e.to_string());
                        return;
                    }
                }
            })?;
        Ok(PrefetchReader {
            rx: Some(rx),
            cur: Vec::new().into_iter(),
            status,
            decoder: Some(decoder),
        })
    }

    /// A cloneable handle to the stream's health; check it once the
    /// iterator is exhausted (or the run that consumed it finished).
    pub fn status(&self) -> StreamStatus {
        self.status.clone()
    }
}

impl Iterator for PrefetchReader {
    type Item = TraceItem;

    fn next(&mut self) -> Option<TraceItem> {
        loop {
            if let Some(item) = self.cur.next() {
                return Some(item);
            }
            let block = self.rx.as_ref()?.recv().ok()?;
            self.cur = block.into_iter();
        }
    }
}

impl Drop for PrefetchReader {
    fn drop(&mut self) {
        // Unblock a decoder parked on `send`, then reap the thread.
        drop(self.rx.take());
        if let Some(h) = self.decoder.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceWriter;

    fn sample(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem {
                gap: (i % 11) as u32,
                addr: 0x1000 + i * 64,
                is_write: i % 7 == 0,
                depends_on_prev: false,
            })
            .collect()
    }

    fn encode(items: &[TraceItem], block: u32) -> Vec<u8> {
        let mut w = TraceWriter::with_block_records(Vec::new(), block).unwrap();
        for &i in items {
            w.push(i).unwrap();
        }
        w.finish().unwrap().0
    }

    #[test]
    fn prefetch_yields_the_exact_sequence() {
        let items = sample(777);
        let bytes = encode(&items, 64);
        let r = PrefetchReader::from_reader(std::io::Cursor::new(bytes)).unwrap();
        let status = r.status();
        let got: Vec<_> = r.collect();
        assert_eq!(got, items);
        assert_eq!(status.error(), None);
    }

    #[test]
    fn truncated_stream_sets_status() {
        let items = sample(200);
        let bytes = encode(&items, 64);
        let cut = bytes.len() - 20;
        let r = PrefetchReader::from_reader(std::io::Cursor::new(bytes[..cut].to_vec())).unwrap();
        let status = r.status();
        let got: Vec<_> = r.collect();
        assert!(got.len() < items.len());
        let err = status.error().expect("truncation must surface in status");
        assert!(err.contains("truncated") || err.contains("footer"), "{err}");
    }

    #[test]
    fn header_errors_are_synchronous() {
        let err = PrefetchReader::from_reader(std::io::Cursor::new(b"XXXX\x01\0\0\0".to_vec()))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn dropping_early_does_not_hang() {
        let items = sample(5000);
        let bytes = encode(&items, 16);
        let mut r = PrefetchReader::from_reader(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(r.next(), Some(items[0]));
        drop(r); // must reap the decoder without deadlocking on the channel
    }
}
