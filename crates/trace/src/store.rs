//! Content-addressed on-disk trace store.
//!
//! A [`TraceStore`] is a flat directory of `.dtr` files named by the
//! [`Fingerprint`] of the inputs that produced them. Lookup is a file-name
//! probe; materialization runs the caller's producer into a temp file and
//! publishes it with an atomic rename, so a fingerprint's file is either
//! absent or complete — concurrent workers (threads or processes) never
//! observe a torn trace. Within one process a per-key lock additionally
//! guarantees each distinct trace is produced at most once per grid.

use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::fingerprint::Fingerprint;
use crate::format::TraceWriter;
use crate::prefetch::PrefetchReader;

/// Counters describing how a store session went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served by an already-materialized file.
    pub hits: u64,
    /// Lookups that had to materialize the trace.
    pub misses: u64,
    /// Bytes of trace published by this process.
    pub bytes_written: u64,
    /// Bytes of trace opened for replay by this process.
    pub bytes_read: u64,
}

/// A content-addressed store of `.dtr` traces in one directory.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    /// Per-fingerprint locks so one process materializes each key once.
    keys: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    tmp_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
}

impl TraceStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            keys: Mutex::new(HashMap::new()),
            tmp_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
        })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path a fingerprint maps to (whether or not it exists).
    pub fn path_of(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.dtr", fp.hex()))
    }

    /// Whether `fp` is already materialized.
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.path_of(fp).is_file()
    }

    fn key_lock(&self, hex: &str) -> Arc<Mutex<()>> {
        // Poison recovery: the map only grows via `entry().or_default()`,
        // which cannot leave it half-updated, so a poisoned lock (a worker
        // panicked while holding it) still guards a consistent map.
        let mut keys = self.keys.lock().unwrap_or_else(|e| e.into_inner());
        keys.entry(hex.to_string()).or_default().clone()
    }

    /// Returns the path of `fp`'s trace, producing it first if absent.
    ///
    /// `produce` receives a started [`TraceWriter`] and pushes the items;
    /// the store finishes the stream, fsyncs, and renames into place. A
    /// lookup counts as a hit when the file already existed and as a miss
    /// when this call materialized it.
    ///
    /// # Errors
    ///
    /// I/O failures from the producer, the temp file, or the publish
    /// rename; the temp file is removed on failure.
    pub fn get_or_materialize<F>(&self, fp: &Fingerprint, produce: F) -> io::Result<PathBuf>
    where
        F: FnOnce(&mut TraceWriter<BufWriter<File>>) -> io::Result<()>,
    {
        let hex = fp.hex();
        let path = self.path_of(fp);
        // Poison recovery: the guarded critical section publishes via
        // atomic tmp+rename, so after a producer panic the key's file is
        // either absent (retry materializes) or complete — never torn.
        let lock = self.key_lock(&hex);
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        if path.is_file() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(path);
        }
        let tmp = self.dir.join(format!(
            ".tmp-{hex}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let file = File::create(&tmp)?;
            let mut writer = TraceWriter::new(BufWriter::new(file))?;
            produce(&mut writer)?;
            let (buffered, _count) = writer.finish()?;
            let file = buffered.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            let bytes = file.metadata()?.len();
            drop(file);
            fs::rename(&tmp, &path)?;
            Ok(bytes)
        })();
        match result {
            Ok(bytes) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
                Ok(path)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Opens `fp`'s trace for prefetched streaming replay.
    ///
    /// # Errors
    ///
    /// `NotFound` if the fingerprint was never materialized, plus any
    /// header/format error from the reader.
    pub fn open_stream(&self, fp: &Fingerprint) -> io::Result<PrefetchReader> {
        let path = self.path_of(fp);
        let bytes = fs::metadata(&path)?.len();
        let reader = PrefetchReader::open(&path)?;
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        Ok(reader)
    }

    /// This process's session counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::read_all;
    use das_cpu::TraceItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "das-trace-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp_of(name: &str) -> Fingerprint {
        let mut fp = Fingerprint::new();
        fp.write_str(name);
        fp
    }

    fn items(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::load(1, 0x2000 + i * 64))
            .collect()
    }

    #[test]
    fn materialize_once_then_hit() {
        let dir = tmpdir("hit");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w1");
        assert!(!store.contains(&fp));
        let mut produced = 0u32;
        for _ in 0..3 {
            let path = store
                .get_or_materialize(&fp, |w| {
                    produced += 1;
                    for i in items(100) {
                        w.push(i)?;
                    }
                    Ok(())
                })
                .unwrap();
            assert!(path.is_file());
        }
        assert_eq!(produced, 1, "producer runs only on the miss");
        let s = store.stats();
        assert_eq!((s.misses, s.hits), (1, 2));
        assert!(s.bytes_written > 0);
        // A fresh store over the same directory sees the file as a hit.
        let store2 = TraceStore::open(&dir).unwrap();
        store2
            .get_or_materialize(&fp, |_| panic!("must not produce"))
            .unwrap();
        assert_eq!(store2.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_roundtrips_and_counts_bytes() {
        let dir = tmpdir("stream");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w2");
        let want = items(500);
        store
            .get_or_materialize(&fp, |w| {
                for &i in &want {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        let reader = store.open_stream(&fp).unwrap();
        let status = reader.status();
        let got: Vec<_> = reader.collect();
        assert_eq!(got, want);
        assert_eq!(status.error(), None);
        let s = store.stats();
        assert_eq!(s.bytes_read, s.bytes_written);
        // And the raw file decodes identically without the prefetcher.
        let bytes = fs::read(store.path_of(&fp)).unwrap();
        assert_eq!(read_all(bytes.as_slice()).unwrap(), want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_producer_leaves_no_file() {
        let dir = tmpdir("fail");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w3");
        let err = store
            .get_or_materialize(&fp, |w| {
                w.push(TraceItem::load(0, 0))?;
                Err(io::Error::other("generator exploded"))
            })
            .unwrap_err();
        assert_eq!(err.to_string(), "generator exploded");
        assert!(!store.contains(&fp));
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "tmp file must be cleaned up");
        // The key is not poisoned: a retry can still materialize.
        store
            .get_or_materialize(&fp, |w| {
                for i in items(10) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(store.contains(&fp));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_materialize_produces_once() {
        let dir = tmpdir("concurrent");
        let store = std::sync::Arc::new(TraceStore::open(&dir).unwrap());
        let fp = fp_of("w4");
        let produced = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let fp = fp.clone();
                let produced = produced.clone();
                s.spawn(move || {
                    store
                        .get_or_materialize(&fp, |w| {
                            produced.fetch_add(1, Ordering::Relaxed);
                            for i in items(200) {
                                w.push(i)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(produced.load(Ordering::Relaxed), 1);
        let s = store.stats();
        assert_eq!((s.misses, s.hits), (1, 7));
        let _ = fs::remove_dir_all(&dir);
    }
}
