//! Content-addressed on-disk trace store.
//!
//! A [`TraceStore`] is a flat directory of `.dtr` files named by the
//! [`Fingerprint`] of the inputs that produced them. Lookup is a file-name
//! probe; materialization runs the caller's producer into a temp file and
//! publishes it with an atomic rename, so a fingerprint's file is either
//! absent or complete — concurrent workers (threads or processes) never
//! observe a torn trace. Within one process a per-key lock additionally
//! guarantees each distinct trace is produced at most once per grid.
//!
//! ## Cross-process materialize-once locking
//!
//! When several *processes* share one store (a `das-fleet` of workers),
//! each key is additionally guarded by an on-disk `<key>.lock` file
//! created with `O_EXCL` and carrying the holder's pid and a wall-clock
//! stamp. A process that loses the race waits for the lock to clear (or
//! for the trace to appear) instead of duplicating the work. Crash
//! safety: a holder that dies mid-materialize leaks its lock file, so
//! waiters run a liveness check — a lock whose pid is no longer alive
//! (Linux `/proc` probe) or whose stamp is older than the staleness
//! window is *reclaimed* (deleted) and the waiter takes over. The lock is
//! purely a work-deduplication device: correctness never depends on it,
//! because publication is an atomic tmp+rename of deterministic bytes —
//! if two processes ever do materialize the same key, the second rename
//! simply overwrites identical content. That is also why the bounded
//! wait ([`LockOptions::max_wait`]) may safely fall through to a
//! lock-less "barge" materialization instead of deadlocking on a hung
//! but live holder.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::fingerprint::Fingerprint;
use crate::format::TraceWriter;
use crate::prefetch::PrefetchReader;

/// Counters describing how a store session went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served by an already-materialized file.
    pub hits: u64,
    /// Lookups that had to materialize the trace.
    pub misses: u64,
    /// Bytes of trace published by this process.
    pub bytes_written: u64,
    /// Bytes of trace opened for replay by this process.
    pub bytes_read: u64,
    /// Stale cross-process locks reclaimed (holder dead or timed out).
    pub locks_reclaimed: u64,
    /// Materializations that waited on another process's lock.
    pub lock_waits: u64,
}

/// Tuning for the cross-process materialize-once lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOptions {
    /// A lock older than this is stale even if its pid looks alive
    /// (guards against pid reuse and non-Linux hosts without `/proc`).
    pub staleness: Duration,
    /// Poll interval while waiting on another process's lock.
    pub poll: Duration,
    /// Upper bound on waiting for a live holder; past it the waiter
    /// barges and materializes without the lock (safe: atomic rename of
    /// deterministic bytes).
    pub max_wait: Duration,
}

impl Default for LockOptions {
    fn default() -> LockOptions {
        LockOptions {
            staleness: Duration::from_secs(120),
            poll: Duration::from_millis(50),
            max_wait: Duration::from_secs(600),
        }
    }
}

/// A content-addressed store of `.dtr` traces in one directory.
#[derive(Debug)]
pub struct TraceStore {
    dir: PathBuf,
    /// Per-fingerprint locks so one process materializes each key once.
    keys: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    tmp_seq: AtomicU64,
    lock_opts: LockOptions,
    hits: AtomicU64,
    misses: AtomicU64,
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    locks_reclaimed: AtomicU64,
    lock_waits: AtomicU64,
}

/// How one attempt at the on-disk key lock went.
enum LockAttempt {
    /// We hold the lock (guard removes the file on drop).
    Held(LockGuard),
    /// Another process holds a live lock — wait and retry.
    Busy,
    /// Waited past `max_wait` on a live holder — proceed without a lock.
    Barged,
}

/// Deletes the lock file on drop (including the producer-error path).
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

fn now_epoch_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Whether `pid` is demonstrably dead. On hosts without `/proc` this is
/// always `false` and staleness falls back to the time window alone.
fn pid_is_dead(pid: u64) -> bool {
    Path::new("/proc").is_dir() && !Path::new(&format!("/proc/{pid}")).exists()
}

/// Parses `pid epoch_ms` from a lock file. `None` means torn/unreadable —
/// treated as stale (the writer crashed mid-write or the file is foreign).
fn parse_lock(text: &str) -> Option<(u64, u64)> {
    let mut it = text.split_whitespace();
    let pid = it.next()?.parse().ok()?;
    let stamp = it.next()?.parse().ok()?;
    Some((pid, stamp))
}

impl TraceStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(TraceStore {
            dir: dir.to_path_buf(),
            keys: Mutex::new(HashMap::new()),
            tmp_seq: AtomicU64::new(0),
            lock_opts: LockOptions::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            locks_reclaimed: AtomicU64::new(0),
            lock_waits: AtomicU64::new(0),
        })
    }

    /// Overrides the cross-process lock tuning (tests and impatient
    /// callers).
    pub fn set_lock_options(&mut self, opts: LockOptions) {
        self.lock_opts = opts;
    }

    /// The on-disk lock path guarding `fp`'s materialization.
    pub fn lock_path_of(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.lock", fp.hex()))
    }

    /// One shot at taking the on-disk lock: `O_EXCL`-creates it, or
    /// inspects the incumbent and reclaims it when stale.
    fn try_file_lock(&self, lock_path: &Path, waited: Duration) -> io::Result<LockAttempt> {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path)
        {
            Ok(mut f) => {
                // Best-effort identity stamp; a torn write parses as
                // stale, which is the safe direction.
                let _ = write!(f, "{} {}", std::process::id(), now_epoch_ms());
                let _ = f.sync_data();
                Ok(LockAttempt::Held(LockGuard {
                    path: lock_path.to_path_buf(),
                }))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let stale = match fs::read_to_string(lock_path) {
                    Ok(text) => match parse_lock(&text) {
                        Some((pid, stamp)) => {
                            pid_is_dead(pid)
                                || u128::from(now_epoch_ms().saturating_sub(stamp))
                                    > self.lock_opts.staleness.as_millis()
                        }
                        None => true, // torn/foreign content
                    },
                    // Raced with the holder's release: retry from the top.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => false,
                    Err(_) => true,
                };
                if stale {
                    // Reclaim. Two waiters may race here and one may even
                    // delete a *fresh* lock re-created in the window — the
                    // result is at worst a duplicate materialization of
                    // identical bytes, never corruption (atomic rename).
                    let _ = fs::remove_file(lock_path);
                    self.locks_reclaimed.fetch_add(1, Ordering::Relaxed);
                    return Ok(LockAttempt::Busy); // retry the create
                }
                if waited >= self.lock_opts.max_wait {
                    return Ok(LockAttempt::Barged);
                }
                Ok(LockAttempt::Busy)
            }
            Err(e) => Err(e),
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path a fingerprint maps to (whether or not it exists).
    pub fn path_of(&self, fp: &Fingerprint) -> PathBuf {
        self.dir.join(format!("{}.dtr", fp.hex()))
    }

    /// Whether `fp` is already materialized.
    pub fn contains(&self, fp: &Fingerprint) -> bool {
        self.path_of(fp).is_file()
    }

    fn key_lock(&self, hex: &str) -> Arc<Mutex<()>> {
        // Poison recovery: the map only grows via `entry().or_default()`,
        // which cannot leave it half-updated, so a poisoned lock (a worker
        // panicked while holding it) still guards a consistent map.
        let mut keys = self.keys.lock().unwrap_or_else(|e| e.into_inner());
        keys.entry(hex.to_string()).or_default().clone()
    }

    /// Returns the path of `fp`'s trace, producing it first if absent.
    ///
    /// `produce` receives a started [`TraceWriter`] and pushes the items;
    /// the store finishes the stream, fsyncs, and renames into place. A
    /// lookup counts as a hit when the file already existed and as a miss
    /// when this call materialized it.
    ///
    /// # Errors
    ///
    /// I/O failures from the producer, the temp file, or the publish
    /// rename; the temp file is removed on failure.
    pub fn get_or_materialize<F>(&self, fp: &Fingerprint, produce: F) -> io::Result<PathBuf>
    where
        F: FnOnce(&mut TraceWriter<BufWriter<File>>) -> io::Result<()>,
    {
        let hex = fp.hex();
        let path = self.path_of(fp);
        // Poison recovery: the guarded critical section publishes via
        // atomic tmp+rename, so after a producer panic the key's file is
        // either absent (retry materializes) or complete — never torn.
        let lock = self.key_lock(&hex);
        let _guard = lock.lock().unwrap_or_else(|e| e.into_inner());
        if path.is_file() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(path);
        }
        // Cross-process turn-taking: hold `<key>.lock` while producing, or
        // wait for whoever does (re-probing for the published file), with
        // stale-lock reclamation and a bounded-wait barge.
        let lock_path = self.dir.join(format!("{hex}.lock"));
        let started = Instant::now();
        let mut waited_once = false;
        let _file_guard = loop {
            if path.is_file() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(path);
            }
            match self.try_file_lock(&lock_path, started.elapsed())? {
                LockAttempt::Held(g) => break Some(g),
                LockAttempt::Barged => break None,
                LockAttempt::Busy => {
                    if !waited_once {
                        waited_once = true;
                        self.lock_waits.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(self.lock_opts.poll);
                }
            }
        };
        let tmp = self.dir.join(format!(
            ".tmp-{hex}-{}-{}",
            std::process::id(),
            self.tmp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let result = (|| {
            let file = File::create(&tmp)?;
            let mut writer = TraceWriter::new(BufWriter::new(file))?;
            produce(&mut writer)?;
            let (buffered, _count) = writer.finish()?;
            let file = buffered.into_inner().map_err(|e| e.into_error())?;
            file.sync_all()?;
            let bytes = file.metadata()?.len();
            drop(file);
            fs::rename(&tmp, &path)?;
            Ok(bytes)
        })();
        match result {
            Ok(bytes) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
                Ok(path)
            }
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Opens `fp`'s trace for prefetched streaming replay.
    ///
    /// # Errors
    ///
    /// `NotFound` if the fingerprint was never materialized, plus any
    /// header/format error from the reader.
    pub fn open_stream(&self, fp: &Fingerprint) -> io::Result<PrefetchReader> {
        let path = self.path_of(fp);
        let bytes = fs::metadata(&path)?.len();
        let reader = PrefetchReader::open(&path)?;
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        Ok(reader)
    }

    /// This process's session counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            locks_reclaimed: self.locks_reclaimed.load(Ordering::Relaxed),
            lock_waits: self.lock_waits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::read_all;
    use das_cpu::TraceItem;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "das-trace-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fp_of(name: &str) -> Fingerprint {
        let mut fp = Fingerprint::new();
        fp.write_str(name);
        fp
    }

    fn items(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem::load(1, 0x2000 + i * 64))
            .collect()
    }

    #[test]
    fn materialize_once_then_hit() {
        let dir = tmpdir("hit");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w1");
        assert!(!store.contains(&fp));
        let mut produced = 0u32;
        for _ in 0..3 {
            let path = store
                .get_or_materialize(&fp, |w| {
                    produced += 1;
                    for i in items(100) {
                        w.push(i)?;
                    }
                    Ok(())
                })
                .unwrap();
            assert!(path.is_file());
        }
        assert_eq!(produced, 1, "producer runs only on the miss");
        let s = store.stats();
        assert_eq!((s.misses, s.hits), (1, 2));
        assert!(s.bytes_written > 0);
        // A fresh store over the same directory sees the file as a hit.
        let store2 = TraceStore::open(&dir).unwrap();
        store2
            .get_or_materialize(&fp, |_| panic!("must not produce"))
            .unwrap();
        assert_eq!(store2.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_roundtrips_and_counts_bytes() {
        let dir = tmpdir("stream");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w2");
        let want = items(500);
        store
            .get_or_materialize(&fp, |w| {
                for &i in &want {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        let reader = store.open_stream(&fp).unwrap();
        let status = reader.status();
        let got: Vec<_> = reader.collect();
        assert_eq!(got, want);
        assert_eq!(status.error(), None);
        let s = store.stats();
        assert_eq!(s.bytes_read, s.bytes_written);
        // And the raw file decodes identically without the prefetcher.
        let bytes = fs::read(store.path_of(&fp)).unwrap();
        assert_eq!(read_all(bytes.as_slice()).unwrap(), want);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_producer_leaves_no_file() {
        let dir = tmpdir("fail");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w3");
        let err = store
            .get_or_materialize(&fp, |w| {
                w.push(TraceItem::load(0, 0))?;
                Err(io::Error::other("generator exploded"))
            })
            .unwrap_err();
        assert_eq!(err.to_string(), "generator exploded");
        assert!(!store.contains(&fp));
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "tmp file must be cleaned up");
        // The key is not poisoned: a retry can still materialize.
        store
            .get_or_materialize(&fp, |w| {
                for i in items(10) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(store.contains(&fp));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_a_crashed_process_is_reclaimed() {
        let dir = tmpdir("stale-lock");
        let store = TraceStore::open(&dir).unwrap();
        let fp = fp_of("w-stale");
        // A crashed materializer left its lock behind: a pid that cannot
        // be alive (pid_max is far below this) and an ancient stamp.
        fs::create_dir_all(&dir).unwrap();
        fs::write(store.lock_path_of(&fp), "4294900000 1000").unwrap();
        let path = store
            .get_or_materialize(&fp, |w| {
                for i in items(50) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(path.is_file(), "reclaimed lock lets the waiter produce");
        assert!(
            !store.lock_path_of(&fp).exists(),
            "reclaimed+released lock leaves no file"
        );
        let s = store.stats();
        assert_eq!(s.locks_reclaimed, 1);
        assert_eq!(s.misses, 1);

        // Torn lock content (crash mid-write) is also stale.
        let fp2 = fp_of("w-torn");
        fs::write(store.lock_path_of(&fp2), "gar").unwrap();
        store
            .get_or_materialize(&fp2, |w| {
                for i in items(10) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(store.stats().locks_reclaimed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_lock_is_waited_on_until_released() {
        let dir = tmpdir("live-lock");
        let mut store = TraceStore::open(&dir).unwrap();
        store.set_lock_options(LockOptions {
            staleness: Duration::from_secs(120),
            poll: Duration::from_millis(5),
            max_wait: Duration::from_secs(30),
        });
        let fp = fp_of("w-live");
        // A *live* holder (our own pid, fresh stamp): the materializer
        // must wait, not reclaim. Release the lock from another thread
        // after a delay and watch the wait be counted.
        let lock_path = store.lock_path_of(&fp);
        fs::write(
            &lock_path,
            format!("{} {}", std::process::id(), now_epoch_ms()),
        )
        .unwrap();
        let releaser = {
            let lock_path = lock_path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(60));
                fs::remove_file(&lock_path).unwrap();
            })
        };
        store
            .get_or_materialize(&fp, |w| {
                for i in items(10) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        releaser.join().unwrap();
        let s = store.stats();
        assert_eq!(s.locks_reclaimed, 0, "live lock must not be reclaimed");
        assert_eq!(s.lock_waits, 1);
        assert!(store.contains(&fp));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bounded_wait_barges_past_a_hung_live_holder() {
        let dir = tmpdir("barge");
        let mut store = TraceStore::open(&dir).unwrap();
        store.set_lock_options(LockOptions {
            staleness: Duration::from_secs(120),
            poll: Duration::from_millis(5),
            max_wait: Duration::from_millis(40),
        });
        let fp = fp_of("w-hung");
        // Live pid + fresh stamp, never released: the waiter must barge
        // after max_wait instead of deadlocking — publication stays safe
        // because it is an atomic rename.
        fs::write(
            store.lock_path_of(&fp),
            format!("{} {}", std::process::id(), now_epoch_ms()),
        )
        .unwrap();
        store
            .get_or_materialize(&fp, |w| {
                for i in items(10) {
                    w.push(i)?;
                }
                Ok(())
            })
            .unwrap();
        assert!(store.contains(&fp));
        assert!(
            store.lock_path_of(&fp).exists(),
            "barging leaves the foreign lock alone"
        );
        assert_eq!(store.stats().locks_reclaimed, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_materialize_produces_once() {
        let dir = tmpdir("concurrent");
        let store = std::sync::Arc::new(TraceStore::open(&dir).unwrap());
        let fp = fp_of("w4");
        let produced = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let fp = fp.clone();
                let produced = produced.clone();
                s.spawn(move || {
                    store
                        .get_or_materialize(&fp, |w| {
                            produced.fetch_add(1, Ordering::Relaxed);
                            for i in items(200) {
                                w.push(i)?;
                            }
                            Ok(())
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(produced.load(Ordering::Relaxed), 1);
        let s = store.stats();
        assert_eq!((s.misses, s.hits), (1, 7));
        let _ = fs::remove_dir_all(&dir);
    }
}
