//! The `.dtr` binary trace format: streaming encode/decode of
//! [`TraceItem`] sequences.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! header   "DTRC" magic (4 bytes) | u32 format version
//! block*   'B' | u32 payload_len | u32 record_count | payload | u32 crc32(payload)
//! footer   'F' | u64 total_items | u32 crc32(total_items bytes)
//! ```
//!
//! Within a block payload each record is two varints (LEB128):
//!
//! ```text
//! head  = gap << 2 | is_write << 1 | depends_on_prev
//! delta = zigzag(addr - prev_addr)      // prev_addr resets to 0 per block
//! ```
//!
//! The per-block address-delta baseline makes every block independently
//! decodable — the property the prefetching reader and CRC isolation rely
//! on — while still compressing the dominant case (short strides within a
//! row sweep) to two or three bytes per reference. A corrupted block is
//! detected by its CRC before any record in it is surfaced; a truncated
//! file is detected by the missing or short footer; a wrong item count is
//! detected by the footer's total.

use std::fmt;
use std::io::{self, Read, Write};

use das_cpu::TraceItem;

use crate::crc::crc32;

/// File magic: the first four bytes of every `.dtr` file.
pub const MAGIC: [u8; 4] = *b"DTRC";

/// Current format version. Bump on any incompatible layout change; readers
/// reject other versions loudly instead of misdecoding.
pub const FORMAT_VERSION: u32 = 1;

/// Records per block before the writer seals it (~10–30 KiB of payload at
/// typical stride entropy — large enough to amortize the CRC and the
/// prefetch hand-off, small enough to bound decode-ahead memory).
pub const DEFAULT_BLOCK_RECORDS: u32 = 4096;

const TAG_BLOCK: u8 = b'B';
const TAG_FOOTER: u8 = b'F';

/// Why a `.dtr` stream could not be decoded.
#[derive(Debug)]
pub enum TraceFormatError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The first four bytes are not the `.dtr` magic.
    BadMagic,
    /// The header names a version this build does not read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// A block's payload failed its CRC — the block was torn or corrupted.
    CorruptBlock {
        /// 0-based index of the damaged block.
        index: usize,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the payload as read.
        computed: u32,
    },
    /// Structural damage: truncation, a bad tag, a varint overrun, or a
    /// record count that does not match the payload.
    Malformed {
        /// What was wrong, in reader terms.
        what: String,
    },
    /// The footer's total disagrees with the records actually decoded.
    CountMismatch {
        /// Total the footer claims.
        footer: u64,
        /// Records decoded from the blocks.
        decoded: u64,
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::Io(e) => write!(f, "I/O error: {e}"),
            TraceFormatError::BadMagic => write!(f, "not a .dtr file (bad magic)"),
            TraceFormatError::UnsupportedVersion { found } => write!(
                f,
                ".dtr version {found} unsupported (this build reads {FORMAT_VERSION})"
            ),
            TraceFormatError::CorruptBlock {
                index,
                stored,
                computed,
            } => write!(
                f,
                "block {index} corrupt: stored crc {stored:08x}, computed {computed:08x}"
            ),
            TraceFormatError::Malformed { what } => write!(f, "malformed .dtr: {what}"),
            TraceFormatError::CountMismatch { footer, decoded } => write!(
                f,
                "footer claims {footer} items but blocks decoded {decoded}"
            ),
        }
    }
}

impl std::error::Error for TraceFormatError {}

impl From<io::Error> for TraceFormatError {
    fn from(e: io::Error) -> Self {
        TraceFormatError::Io(e)
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn take_varint(payload: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = payload.get(*pos) else {
            return Err("varint runs past the block payload".into());
        };
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err("varint overflows 64 bits".into());
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Streaming `.dtr` encoder.
///
/// Push items, then call [`TraceWriter::finish`] — dropping the writer
/// without finishing leaves the stream footer-less, which readers report
/// as truncation.
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    payload: Vec<u8>,
    block_records: u32,
    records_in_block: u32,
    prev_addr: u64,
    total: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a stream on `out` (writes the header) with the default block
    /// size.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn new(out: W) -> io::Result<Self> {
        Self::with_block_records(out, DEFAULT_BLOCK_RECORDS)
    }

    /// Like [`TraceWriter::new`] with an explicit records-per-block bound
    /// (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn with_block_records(mut out: W, block_records: u32) -> io::Result<Self> {
        out.write_all(&MAGIC)?;
        out.write_all(&FORMAT_VERSION.to_le_bytes())?;
        Ok(TraceWriter {
            out,
            payload: Vec::new(),
            block_records: block_records.max(1),
            records_in_block: 0,
            prev_addr: 0,
            total: 0,
        })
    }

    /// Appends one item to the stream.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink when a block seals.
    pub fn push(&mut self, item: TraceItem) -> io::Result<()> {
        let head = (u64::from(item.gap) << 2)
            | (u64::from(item.is_write) << 1)
            | u64::from(item.depends_on_prev);
        push_varint(&mut self.payload, head);
        let delta = item.addr.wrapping_sub(self.prev_addr) as i64;
        push_varint(&mut self.payload, zigzag(delta));
        self.prev_addr = item.addr;
        self.records_in_block += 1;
        self.total += 1;
        if self.records_in_block >= self.block_records {
            self.seal_block()?;
        }
        Ok(())
    }

    fn seal_block(&mut self) -> io::Result<()> {
        if self.records_in_block == 0 {
            return Ok(());
        }
        self.out.write_all(&[TAG_BLOCK])?;
        self.out
            .write_all(&(self.payload.len() as u32).to_le_bytes())?;
        self.out.write_all(&self.records_in_block.to_le_bytes())?;
        self.out.write_all(&self.payload)?;
        self.out.write_all(&crc32(&self.payload).to_le_bytes())?;
        self.payload.clear();
        self.records_in_block = 0;
        self.prev_addr = 0; // per-block delta baseline
        Ok(())
    }

    /// Items pushed so far.
    pub fn items_written(&self) -> u64 {
        self.total
    }

    /// Seals the last block, writes the footer and flushes, returning the
    /// sink and the total item count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.seal_block()?;
        self.out.write_all(&[TAG_FOOTER])?;
        let count = self.total.to_le_bytes();
        self.out.write_all(&count)?;
        self.out.write_all(&crc32(&count).to_le_bytes())?;
        self.out.flush()?;
        Ok((self.out, self.total))
    }
}

/// Streaming `.dtr` decoder: an iterator of `Result<TraceItem, _>` that
/// validates each block's CRC before surfacing any record from it, and the
/// footer count at the end.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    inp: R,
    cur: std::vec::IntoIter<TraceItem>,
    blocks_read: usize,
    decoded: u64,
    /// Set once the footer validated (`Ok`) or an error was surfaced.
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream: reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`TraceFormatError::BadMagic`] / [`TraceFormatError::UnsupportedVersion`]
    /// on a foreign or future file, or the underlying I/O error.
    pub fn new(mut inp: R) -> Result<Self, TraceFormatError> {
        let mut magic = [0u8; 4];
        read_exact_or(&mut inp, &mut magic, "truncated header")?;
        if magic != MAGIC {
            return Err(TraceFormatError::BadMagic);
        }
        let mut ver = [0u8; 4];
        read_exact_or(&mut inp, &mut ver, "truncated header")?;
        let found = u32::from_le_bytes(ver);
        if found != FORMAT_VERSION {
            return Err(TraceFormatError::UnsupportedVersion { found });
        }
        Ok(TraceReader {
            inp,
            cur: Vec::new().into_iter(),
            blocks_read: 0,
            decoded: 0,
            done: false,
        })
    }

    /// Decodes the next whole block, or validates the footer and returns
    /// `None` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Any [`TraceFormatError`]; after an error the reader is done.
    pub fn next_block(&mut self) -> Result<Option<Vec<TraceItem>>, TraceFormatError> {
        if self.done {
            return Ok(None);
        }
        let mut tag = [0u8; 1];
        match self.inp.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.done = true;
                return Err(TraceFormatError::Malformed {
                    what: "stream ends without a footer (truncated file)".into(),
                });
            }
            Err(e) => {
                self.done = true;
                return Err(e.into());
            }
        }
        match tag[0] {
            TAG_BLOCK => match self.read_block() {
                Ok(items) => Ok(Some(items)),
                Err(e) => {
                    self.done = true;
                    Err(e)
                }
            },
            TAG_FOOTER => {
                self.done = true;
                let mut count = [0u8; 8];
                read_exact_or(&mut self.inp, &mut count, "truncated footer")?;
                let mut stored = [0u8; 4];
                read_exact_or(&mut self.inp, &mut stored, "truncated footer")?;
                let stored = u32::from_le_bytes(stored);
                let computed = crc32(&count);
                if stored != computed {
                    return Err(TraceFormatError::CorruptBlock {
                        index: self.blocks_read,
                        stored,
                        computed,
                    });
                }
                let footer = u64::from_le_bytes(count);
                if footer != self.decoded {
                    return Err(TraceFormatError::CountMismatch {
                        footer,
                        decoded: self.decoded,
                    });
                }
                let mut extra = [0u8; 1];
                match self.inp.read_exact(&mut extra) {
                    Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(None),
                    Ok(()) => Err(TraceFormatError::Malformed {
                        what: "bytes after the footer".into(),
                    }),
                    Err(e) => Err(e.into()),
                }
            }
            other => {
                self.done = true;
                Err(TraceFormatError::Malformed {
                    what: format!("unknown block tag {other:#04x}"),
                })
            }
        }
    }

    fn read_block(&mut self) -> Result<Vec<TraceItem>, TraceFormatError> {
        let mut len = [0u8; 4];
        read_exact_or(&mut self.inp, &mut len, "truncated block header")?;
        let mut count = [0u8; 4];
        read_exact_or(&mut self.inp, &mut count, "truncated block header")?;
        let len = u32::from_le_bytes(len) as usize;
        let count = u32::from_le_bytes(count);
        let mut payload = vec![0u8; len];
        read_exact_or(&mut self.inp, &mut payload, "truncated block payload")?;
        let mut stored = [0u8; 4];
        read_exact_or(&mut self.inp, &mut stored, "truncated block crc")?;
        let stored = u32::from_le_bytes(stored);
        let computed = crc32(&payload);
        let index = self.blocks_read;
        self.blocks_read += 1;
        if stored != computed {
            return Err(TraceFormatError::CorruptBlock {
                index,
                stored,
                computed,
            });
        }
        let items =
            decode_block(&payload, count).map_err(|what| TraceFormatError::Malformed { what })?;
        self.decoded += u64::from(count);
        Ok(items)
    }

    /// Blocks decoded so far.
    pub fn blocks_read(&self) -> usize {
        self.blocks_read
    }
}

fn read_exact_or<R: Read>(inp: &mut R, buf: &mut [u8], what: &str) -> Result<(), TraceFormatError> {
    inp.read_exact(buf).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceFormatError::Malformed { what: what.into() }
        } else {
            TraceFormatError::Io(e)
        }
    })
}

/// Decodes one block payload into items.
pub(crate) fn decode_block(payload: &[u8], count: u32) -> Result<Vec<TraceItem>, String> {
    let mut items = Vec::with_capacity(count as usize);
    let mut pos = 0usize;
    let mut prev_addr = 0u64;
    for _ in 0..count {
        let head = take_varint(payload, &mut pos)?;
        let gap = u32::try_from(head >> 2).map_err(|_| "gap exceeds u32".to_string())?;
        let delta = unzigzag(take_varint(payload, &mut pos)?);
        let addr = prev_addr.wrapping_add(delta as u64);
        prev_addr = addr;
        items.push(TraceItem {
            gap,
            addr,
            is_write: head & 0b10 != 0,
            depends_on_prev: head & 0b01 != 0,
        });
    }
    if pos != payload.len() {
        return Err(format!(
            "block payload has {} trailing bytes after {count} records",
            payload.len() - pos
        ));
    }
    Ok(items)
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceItem, TraceFormatError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(item) = self.cur.next() {
            return Some(Ok(item));
        }
        match self.next_block() {
            Ok(Some(items)) => {
                self.cur = items.into_iter();
                self.cur.next().map(Ok)
            }
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

/// Reads a whole `.dtr` stream into memory, validating everything.
///
/// # Errors
///
/// The first [`TraceFormatError`] encountered.
pub fn read_all<R: Read>(inp: R) -> Result<Vec<TraceItem>, TraceFormatError> {
    let mut reader = TraceReader::new(inp)?;
    let mut items = Vec::new();
    while let Some(block) = reader.next_block()? {
        items.extend(block);
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<TraceItem> {
        (0..n)
            .map(|i| TraceItem {
                gap: (i % 97) as u32,
                addr: 0x4000_0000 + (i * 64) % 8192 + (i / 13) * 8192,
                is_write: i % 5 == 0,
                depends_on_prev: i % 5 != 0 && i % 3 == 0,
            })
            .collect()
    }

    fn encode(items: &[TraceItem], block: u32) -> Vec<u8> {
        let mut w = TraceWriter::with_block_records(Vec::new(), block).unwrap();
        for &i in items {
            w.push(i).unwrap();
        }
        let (bytes, count) = w.finish().unwrap();
        assert_eq!(count, items.len() as u64);
        bytes
    }

    #[test]
    fn roundtrip_across_block_boundaries() {
        for block in [1, 3, 64, 4096] {
            let items = sample(1000);
            let bytes = encode(&items, block);
            assert_eq!(read_all(bytes.as_slice()).unwrap(), items, "block {block}");
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode(&[], 16);
        assert_eq!(read_all(bytes.as_slice()).unwrap(), Vec::new());
    }

    #[test]
    fn varints_survive_extreme_values() {
        let items = vec![
            TraceItem {
                gap: u32::MAX,
                addr: u64::MAX,
                is_write: true,
                depends_on_prev: false,
            },
            TraceItem::load(0, 0),
            TraceItem::dependent_load(1, u64::MAX / 2),
        ];
        let bytes = encode(&items, 2);
        assert_eq!(read_all(bytes.as_slice()).unwrap(), items);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let items = sample(4);
        let mut bytes = encode(&items, 16);
        bytes[0] = b'X';
        assert!(matches!(
            read_all(bytes.as_slice()),
            Err(TraceFormatError::BadMagic)
        ));
        let mut bytes = encode(&items, 16);
        bytes[4] = 0x7f; // version 0x7f
        assert!(matches!(
            read_all(bytes.as_slice()),
            Err(TraceFormatError::UnsupportedVersion { found: 0x7f })
        ));
    }

    #[test]
    fn corrupt_payload_is_rejected_by_crc() {
        let items = sample(300);
        let bytes = encode(&items, 128);
        // Flip one payload byte in the second block: header is 8 bytes,
        // find the second 'B' tag and damage a byte well inside it.
        let mut pos = 8usize;
        let mut starts = Vec::new();
        while pos < bytes.len() && bytes[pos] == TAG_BLOCK {
            starts.push(pos);
            let len = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap()) as usize;
            pos += 1 + 4 + 4 + len + 4;
        }
        assert!(starts.len() >= 2, "need two blocks");
        let mut damaged = bytes.clone();
        damaged[starts[1] + 12] ^= 0x40;
        match read_all(damaged.as_slice()) {
            Err(TraceFormatError::CorruptBlock { index: 1, .. }) => {}
            other => panic!("expected CorruptBlock in block 1, got {other:?}"),
        }
        // The undamaged prefix still streams: the iterator yields the whole
        // first block before surfacing the error.
        let mut r = TraceReader::new(damaged.as_slice()).unwrap();
        let first: Vec<_> = r.by_ref().take(128).map(Result::unwrap).collect();
        assert_eq!(first, items[..128]);
        assert!(r.next().unwrap().is_err());
    }

    #[test]
    fn truncation_is_reported() {
        let items = sample(50);
        let bytes = encode(&items, 16);
        for cut in [bytes.len() - 1, bytes.len() - 13, 9, 5] {
            let err = read_all(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, TraceFormatError::Malformed { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn footer_count_mismatch_is_reported() {
        let items = sample(20);
        let mut bytes = encode(&items, 64);
        // The footer is the last 13 bytes: tag + count + crc. Rewrite the
        // count (and fix its crc so the count check itself is reached).
        let flen = bytes.len();
        let count_at = flen - 12;
        bytes[count_at..count_at + 8].copy_from_slice(&21u64.to_le_bytes());
        let crc = crc32(&bytes[count_at..count_at + 8]);
        bytes[flen - 4..].copy_from_slice(&crc.to_le_bytes());
        match read_all(bytes.as_slice()) {
            Err(TraceFormatError::CountMismatch {
                footer: 21,
                decoded: 20,
            }) => {}
            other => panic!("expected CountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = encode(&sample(5), 16);
        bytes.push(0xAA);
        assert!(matches!(
            read_all(bytes.as_slice()),
            Err(TraceFormatError::Malformed { .. })
        ));
    }

    #[test]
    fn iterator_and_block_reader_agree() {
        let items = sample(500);
        let bytes = encode(&items, 100);
        let via_iter: Vec<_> = TraceReader::new(bytes.as_slice())
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(via_iter, items);
    }

    #[test]
    fn compression_beats_text() {
        let items = sample(4096);
        let binary = encode(&items, DEFAULT_BLOCK_RECORDS).len();
        let text: usize = items
            .iter()
            .map(|i| format!("{} {:#x} R\n", i.gap, i.addr).len())
            .sum();
        assert!(
            binary * 2 < text,
            "binary {binary} should be well under half of text {text}"
        );
    }
}
