//! Stable 128-bit fingerprints for content addressing.
//!
//! The store keys traces by a fingerprint of their *inputs* (workload
//! spec, seed, scale, instruction budget, generator version), not of the
//! produced bytes — the whole point is to decide whether a trace needs
//! producing without producing it. The hash is FNV-1a/128: simple, with no
//! platform or endianness dependence, and stable across releases (the
//! constants below are part of the on-disk contract — never change them
//! without bumping the format version).
//!
//! Field separation: every write is length- or width-delimited (strings
//! are length-prefixed, integers fixed-width little-endian), so distinct
//! field sequences can never collide by concatenation.

use std::fmt;

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// An accumulating 128-bit FNV-1a fingerprint.
///
/// # Examples
///
/// ```
/// use das_trace::Fingerprint;
///
/// let mut a = Fingerprint::new();
/// a.write_str("mcf");
/// a.write_u64(42);
/// let mut b = Fingerprint::new();
/// b.write_str("mcf");
/// b.write_u64(42);
/// assert_eq!(a.hex(), b.hex());
/// assert_eq!(a.hex().len(), 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    h: u128,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    /// A fresh fingerprint at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fingerprint { h: FNV128_OFFSET }
    }

    /// Feeds raw bytes (no delimiter — use the typed writers for fields).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u128::from(b);
            self.h = self.h.wrapping_mul(FNV128_PRIME);
        }
    }

    /// Feeds a length-prefixed string field.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a fixed-width little-endian `u64` field.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a fixed-width little-endian `u32` field.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds an `f64` by its exact bit pattern (no rounding ambiguity).
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// The 32-hex-character digest — the store's file-name key.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.h)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fingerprint_is_the_offset_basis() {
        assert_eq!(Fingerprint::new().hex(), format!("{FNV128_OFFSET:032x}"));
    }

    #[test]
    fn field_order_and_content_matter() {
        let mut a = Fingerprint::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fingerprint::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.hex(), b.hex(), "length prefixes separate fields");
        let mut c = Fingerprint::new();
        c.write_u64(1);
        c.write_u64(2);
        let mut d = Fingerprint::new();
        d.write_u64(2);
        d.write_u64(1);
        assert_ne!(c.hex(), d.hex());
    }

    #[test]
    fn f64_uses_exact_bits() {
        let mut a = Fingerprint::new();
        a.write_f64(0.1 + 0.2);
        let mut b = Fingerprint::new();
        b.write_f64(0.3);
        assert_ne!(a.hex(), b.hex(), "0.1+0.2 != 0.3 bit-wise");
    }
}
