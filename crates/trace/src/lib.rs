//! # das-trace — content-addressed binary trace store with streaming replay
//!
//! The paper's evaluation is trace-driven; at harness scale (hundreds of
//! jobs per grid) every run re-synthesizing its instruction trace
//! in-process is the dataloader problem of a training stack. This crate
//! provides the storage layer:
//!
//! * [`format`] — the compact `.dtr` binary trace format: magic +
//!   versioned header, varint/delta-encoded [`das_cpu::TraceItem`]
//!   records, per-block CRC32, and a counted footer, with streaming
//!   [`TraceWriter`]/[`TraceReader`];
//! * [`prefetch`] — a double-buffered [`PrefetchReader`] that decodes the
//!   next block on a background thread while the simulator consumes the
//!   current one;
//! * [`store`] — a content-addressed on-disk [`TraceStore`] keyed by a
//!   stable [`Fingerprint`] of the trace's inputs, materializing each
//!   distinct trace once and publishing atomically (tmp + rename) so
//!   concurrent workers never observe torn files;
//! * [`fingerprint`] — the 128-bit FNV-1a fingerprint builder.
//!
//! Determinism is load-bearing: a trace read back from the store is
//! item-for-item identical to the generator stream that produced it, so
//! store-served simulations are bit-identical to generator-backed ones
//! (locked by round-trip and `RunMetrics` equality tests downstream).
//!
//! # Examples
//!
//! ```
//! use das_cpu::TraceItem;
//! use das_trace::{read_all, TraceReader, TraceWriter};
//!
//! let items = vec![TraceItem::load(3, 0x1000), TraceItem::store(0, 0x1040)];
//! let mut w = TraceWriter::new(Vec::new()).unwrap();
//! for &i in &items {
//!     w.push(i).unwrap();
//! }
//! let (bytes, count) = w.finish().unwrap();
//! assert_eq!(count, 2);
//! assert_eq!(read_all(bytes.as_slice()).unwrap(), items);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub(crate) mod crc;
pub mod fingerprint;
pub mod format;
pub mod prefetch;
pub mod store;

pub use fingerprint::Fingerprint;
pub use format::{
    read_all, TraceFormatError, TraceReader, TraceWriter, DEFAULT_BLOCK_RECORDS, FORMAT_VERSION,
};
pub use prefetch::{PrefetchReader, StreamStatus};
pub use store::{StoreStats, TraceStore};
