//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte slices.
//!
//! The table is built once per process; the algorithm is the textbook
//! byte-at-a-time variant — trace blocks are tens of kilobytes, so table
//! lookup throughput is far above the decode rate it protects.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// CRC-32 of `data`.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut c = !0u32;
    for &b in data {
        c = t[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let mut data = b"the quick brown fox".to_vec();
        let clean = crc32(&data);
        data[3] ^= 0x01;
        assert_ne!(crc32(&data), clean);
    }
}
