//! Seeded randomized tests for the DRAM substrate (formerly proptest;
//! rewritten on the deterministic `das-faults` PRNG): address-mapping
//! bijections, layout invariants, and timing-legality properties.

use das_dram::channel::ChannelDevice;
use das_dram::command::DramCommand;
use das_dram::geometry::{Arrangement, BankCoord, BankLayout, DramGeometry, FastRatio};
use das_dram::tick::Tick;
use das_dram::timing::TimingSet;
use das_faults::Prng;

/// decode∘encode is the identity for any line-aligned in-range address.
#[test]
fn decode_encode_roundtrip() {
    let g = DramGeometry::paper_scaled(8);
    let mut rng = Prng::new(1);
    for _ in 0..2000 {
        let aligned = rng.range_u64(0, 1 << 30) & !63;
        let coord = g.decode(aligned);
        assert_eq!(g.encode(coord), aligned % g.total_bytes());
    }
}

/// Every in-range coordinate encodes to an address that decodes back.
#[test]
fn encode_decode_roundtrip() {
    let g = DramGeometry::paper_scaled(8);
    let mut rng = Prng::new(2);
    for _ in 0..2000 {
        let coord = das_dram::geometry::MemCoord {
            bank: BankCoord::new(
                rng.range_u32(0, 2) as u8,
                rng.range_u32(0, 2) as u8,
                rng.range_u32(0, 8) as u8,
            ),
            row: rng.range_u32(0, 4096) % g.rows_per_bank,
            col: rng.range_u32(0, 128),
        };
        assert_eq!(g.decode(g.encode(coord)), coord);
    }
}

/// Bank layouts partition the physical rows exactly for every ratio and
/// arrangement combination that divides evenly.
#[test]
fn layout_partitions_rows() {
    let rows = 4096u32;
    for den in [4u32, 8, 16, 32] {
        for arrangement in [
            Arrangement::Partitioning,
            Arrangement::Interleaving,
            Arrangement::ReducedInterleaving,
        ] {
            let layout = BankLayout::build(rows, FastRatio::new(1, den), arrangement, 128, 512);
            assert_eq!(layout.fast_rows() + layout.slow_rows(), rows);
            assert_eq!(layout.fast_rows(), rows / den);
            // Subarray extents tile the bank exactly.
            let mut expected_start = 0u32;
            for sa in layout.subarrays() {
                assert_eq!(sa.phys_start, expected_start);
                expected_start += sa.rows;
            }
            assert_eq!(expected_start, rows);
            // Kind-space maps are bijective into the right kinds.
            for i in 0..layout.fast_rows() {
                assert_eq!(
                    layout.row_kind(layout.fast_to_phys(i)),
                    das_dram::SubarrayKind::Fast
                );
            }
        }
    }
}

/// `earliest_issue` is self-consistent: a later `now` never yields an
/// earlier tick.
#[test]
fn earliest_issue_is_monotone_in_now() {
    let mut rng = Prng::new(3);
    for _ in 0..300 {
        let layout = BankLayout::build(
            512,
            FastRatio::new(1, 8),
            Arrangement::ReducedInterleaving,
            128,
            512,
        );
        let dev = ChannelDevice::new(0, 1, 2, layout, TimingSet::asymmetric(), false);
        let bank = BankCoord::new(0, 0, 0);
        let row_sel = rng.range_u32(0, 448);
        let later = rng.range_u64(1, 10_000);
        let row = dev
            .layout()
            .slow_to_phys(row_sel % dev.layout().slow_rows());
        let cmd = DramCommand::Activate {
            bank,
            phys_row: row,
        };
        let t0 = dev.earliest_issue(&cmd, Tick::ZERO).unwrap();
        let t1 = dev.earliest_issue(&cmd, Tick::new(later)).unwrap();
        assert!(t1 >= t0);
        assert!(t1 >= Tick::new(later));
    }
}

/// A random but *legal* command sequence (always issuing at the device's
/// own earliest-issue tick) never trips a constraint assertion, and reads
/// always produce in-order data on the shared bus.
#[test]
fn random_legal_sequences_hold_invariants() {
    for seed in 0..50u64 {
        let mut rng = Prng::new(seed ^ 0xd7a8);
        let n = rng.range_usize(1, 60);
        let layout = BankLayout::build(
            512,
            FastRatio::new(1, 8),
            Arrangement::ReducedInterleaving,
            128,
            512,
        );
        let mut dev = ChannelDevice::new(0, 1, 4, layout, TimingSet::asymmetric(), false);
        let mut now = Tick::ZERO;
        let mut last_data = Tick::ZERO;
        for i in 0..n {
            let op = rng.range_u32(0, 4);
            let bank = BankCoord::new(0, 0, (i % 4) as u8);
            let open = dev.open_row(bank);
            let cmd = match op {
                0 => DramCommand::Activate {
                    bank,
                    phys_row: dev
                        .layout()
                        .slow_to_phys((i as u32 * 7) % dev.layout().slow_rows()),
                },
                1 => DramCommand::Read {
                    bank,
                    phys_row: open.unwrap_or(0),
                    col: (i % 128) as u32,
                },
                2 => DramCommand::Write {
                    bank,
                    phys_row: open.unwrap_or(0),
                    col: (i % 128) as u32,
                },
                _ => DramCommand::Precharge {
                    bank,
                    phys_row: open.unwrap_or(0),
                },
            };
            let Some(t) = dev.earliest_issue(&cmd, now) else {
                continue;
            };
            let out = dev.issue(&cmd, t);
            now = t;
            if let Some(d) = out.data_end {
                assert!(d > t, "seed {seed}: data cannot precede the command");
                assert!(d >= last_data, "seed {seed}: bus bursts must not reorder");
                last_data = d;
            }
        }
    }
}
