//! DRAM timing parameter sets.
//!
//! Values follow the paper's Table 1 (DDR3-1600, Samsung 2 Gb D-die class
//! timings) for the slow/conventional subarrays, and the CHARM-derived short
//! bitline timings for fast subarrays: tRCD 8.75 ns, tRC 25 ns.

use crate::geometry::SubarrayKind;
use crate::tick::Tick;

/// Per-subarray-kind DRAM timing parameters.
///
/// All values are durations. `tRC` is derived as `tRAS + tRP` and checked at
/// construction.
///
/// # Examples
///
/// ```
/// use das_dram::timing::TimingParams;
///
/// let slow = TimingParams::ddr3_1600();
/// assert_eq!(slow.trc().as_ns(), 48.75);
/// let fast = TimingParams::fast_subarray();
/// assert_eq!(fast.trc().as_ns(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingParams {
    /// Memory clock period (1.25 ns at DDR3-1600).
    pub tck: Tick,
    /// ACT → internal READ/WRITE delay (row to column delay).
    pub trcd: Tick,
    /// ACT → PRE minimum (restore complete).
    pub tras: Tick,
    /// PRE → ACT minimum (bitline precharge).
    pub trp: Tick,
    /// READ command → first data (CAS latency).
    pub cl: Tick,
    /// WRITE command → first data (CAS write latency).
    pub cwl: Tick,
    /// Data burst duration (BL8 at DDR: 4 tCK).
    pub tburst: Tick,
    /// Column command to column command spacing.
    pub tccd: Tick,
    /// READ → PRE spacing.
    pub trtp: Tick,
    /// Write data end → READ command (same rank) turnaround.
    pub twtr: Tick,
    /// Write data end → PRE (write recovery).
    pub twr: Tick,
    /// ACT → ACT different bank, same rank.
    pub trrd: Tick,
    /// Four-activate window, same rank.
    pub tfaw: Tick,
    /// Average refresh interval.
    pub trefi: Tick,
    /// Refresh cycle time.
    pub trfc: Tick,
}

impl TimingParams {
    /// DDR3-1600 conventional (512-cell bitline) subarray timings from
    /// Table 1: tRCD = 13.75 ns, tRC = 48.75 ns.
    pub fn ddr3_1600() -> Self {
        let p = TimingParams {
            tck: Tick::from_ns(1.25),
            trcd: Tick::from_ns(13.75),
            tras: Tick::from_ns(35.0),
            trp: Tick::from_ns(13.75),
            cl: Tick::from_ns(13.75),
            cwl: Tick::from_ns(10.0),
            tburst: Tick::from_ns(5.0),
            tccd: Tick::from_ns(5.0),
            trtp: Tick::from_ns(7.5),
            twtr: Tick::from_ns(7.5),
            twr: Tick::from_ns(15.0),
            trrd: Tick::from_ns(6.25),
            tfaw: Tick::from_ns(30.0),
            trefi: Tick::from_ns(7800.0),
            trfc: Tick::from_ns(160.0),
        };
        p.validate();
        p
    }

    /// Fast (128-cell bitline) subarray timings per Table 1 / CHARM:
    /// tRCD = 8.75 ns, tRC = 25 ns. Column-path latency (CL) is unchanged —
    /// the DAS fast level shortens only the cell-array operations.
    pub fn fast_subarray() -> Self {
        let p = TimingParams {
            trcd: Tick::from_ns(8.75),
            tras: Tick::from_ns(17.5),
            trp: Tick::from_ns(7.5),
            twr: Tick::from_ns(7.5),
            ..Self::ddr3_1600()
        };
        p.validate();
        p
    }

    /// CHARM's fast-region timings: the fast-subarray cell timings *plus*
    /// an optimised column access path (reduced CL), per §7's description of
    /// the CHARM baseline ("SAS-DRAM with optimized column access latency").
    pub fn charm_fast() -> Self {
        let p = TimingParams {
            cl: Tick::from_ns(8.75),
            ..Self::fast_subarray()
        };
        p.validate();
        p
    }

    /// TL-DRAM far-segment timings (§3.1): sensing through the isolation
    /// transistor adds series resistance, prolonging restore — tRAS and
    /// write recovery grow relative to commodity DRAM.
    pub fn tl_dram_far() -> Self {
        let p = TimingParams {
            tras: Tick::from_ns(40.0),
            twr: Tick::from_ns(17.5),
            ..Self::ddr3_1600()
        };
        p.validate();
        p
    }

    /// CLR-DRAM max-latency-reduction morph (Luo et al., ISCA 2020, §4):
    /// coupling a row with its neighbour doubles the drivers per cell, so
    /// activation, restore, and precharge all shrink — tRCD by ~60 %,
    /// tRAS by ~64 %, tRP by ~35 % — at the cost of the coupled row's
    /// capacity.
    pub fn clr_morphed() -> Self {
        let p = TimingParams {
            trcd: Tick::from_ns(5.5),
            tras: Tick::from_ns(12.5),
            trp: Tick::from_ns(9.0),
            twr: Tick::from_ns(7.0),
            ..Self::ddr3_1600()
        };
        p.validate();
        p
    }

    /// Row cycle time: `tRAS + tRP`.
    pub fn trc(&self) -> Tick {
        self.tras + self.trp
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any ordering invariant is violated (e.g. `tRCD > tRAS`).
    pub fn validate(&self) {
        assert!(self.trcd <= self.tras, "tRCD must not exceed tRAS");
        assert!(self.trtp <= self.tras, "tRTP must not exceed tRAS");
        assert!(self.tburst <= self.tccd, "burst longer than tCCD");
        assert!(self.trrd <= self.tfaw, "tRRD must not exceed tFAW");
        assert!(self.tck > Tick::ZERO, "tCK must be positive");
    }

    /// Idealised closed-to-data read latency for one access: `tRCD + CL +
    /// burst`. Used for analytical sanity checks, not by the engine.
    pub fn closed_read_latency(&self) -> Tick {
        self.trcd + self.cl + self.tburst
    }
}

/// One refresh schedule: a REF command every `trefi` costing `trfc` of
/// rank-blocking time.
///
/// A homogeneous device runs one cadence per rank; asymmetric-retention
/// devices (short-bitline cells can trade retention for latency) may run
/// the fast and slow levels on distinct cadences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshCadence {
    /// Average refresh interval.
    pub trefi: Tick,
    /// Refresh cycle time (rank blocked).
    pub trfc: Tick,
}

impl TimingParams {
    /// The refresh cadence carried by this parameter set.
    pub fn refresh_cadence(&self) -> RefreshCadence {
        RefreshCadence {
            trefi: self.trefi,
            trfc: self.trfc,
        }
    }
}

/// The pair of timing parameter sets used by a hybrid-bitline device, plus
/// the migration costs of §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSet {
    /// Timings applied to rows in slow subarrays.
    pub slow: TimingParams,
    /// Timings applied to rows in fast subarrays.
    pub fast: TimingParams,
    /// Duration of one row migration (source row → migration row →
    /// destination row): 1.5 tRC (§4.2).
    pub single_migration: Tick,
    /// Duration of a full row *swap* (promotion + victim demotion through
    /// the migration rows, Fig. 6): Table 1's "migration latency", 3 tRC.
    pub swap: Tick,
}

impl TimingSet {
    /// Homogeneous conventional DRAM (the Std-DRAM baseline): both kinds use
    /// slow timings; migration is never used.
    pub fn homogeneous_slow() -> Self {
        let slow = TimingParams::ddr3_1600();
        TimingSet {
            slow,
            fast: slow,
            single_migration: Tick::MAX,
            swap: Tick::MAX,
        }
    }

    /// Homogeneous fast DRAM (the FS-DRAM upper bound).
    pub fn homogeneous_fast() -> Self {
        let fast = TimingParams::fast_subarray();
        TimingSet {
            slow: fast,
            fast,
            single_migration: Tick::MAX,
            swap: Tick::MAX,
        }
    }

    /// The paper's asymmetric device (SAS-DRAM and DAS-DRAM): slow + fast
    /// timings, migration latency 146.25 ns (Table 1).
    pub fn asymmetric() -> Self {
        let slow = TimingParams::ddr3_1600();
        TimingSet {
            slow,
            fast: TimingParams::fast_subarray(),
            single_migration: Tick::from_ns(73.125),
            swap: Tick::from_ns(146.25),
        }
    }

    /// CHARM: asymmetric with an optimised column path in the fast region
    /// and no migration support.
    pub fn charm() -> Self {
        TimingSet {
            fast: TimingParams::charm_fast(),
            single_migration: Tick::MAX,
            swap: Tick::MAX,
            ..Self::asymmetric()
        }
    }

    /// Asymmetric with free migration — the DAS-DRAM (FM) overhead probe of
    /// §7 ("ideal DAS-DRAM with zero row migration latency").
    pub fn asymmetric_free_migration() -> Self {
        TimingSet {
            single_migration: Tick::ZERO,
            swap: Tick::ZERO,
            ..Self::asymmetric()
        }
    }

    /// TL-DRAM (§3.1): near segments behave like short-bitline subarrays,
    /// far segments pay the isolation-transistor restore penalty. An
    /// inter-segment copy rides the shared bitline within the subarray —
    /// one tRC, cheaper than DAS's migration-row path.
    pub fn tl_dram() -> Self {
        let far = TimingParams::tl_dram_far();
        TimingSet {
            slow: far,
            fast: TimingParams::fast_subarray(),
            single_migration: far.trc(),
            swap: far.trc() * 2,
        }
    }

    /// CLR-DRAM (Luo et al., ISCA 2020): rows dynamically morph between
    /// max-capacity (commodity timings) and max-latency-reduction (coupled
    /// drivers) modes. Morphing a row is an in-place ACT+PRE pair on the
    /// coupled pair — one tRC per direction, two for an exchange — so we
    /// reuse the migration hooks with intra-subarray costs.
    pub fn clr_dram() -> Self {
        let slow = TimingParams::ddr3_1600();
        TimingSet {
            slow,
            fast: TimingParams::clr_morphed(),
            single_migration: slow.trc(),
            swap: slow.trc() * 2,
        }
    }

    /// LISA (Chang et al., HPCA 2016): links neighbouring subarrays'
    /// bitlines so a row buffer movement (RBM) copies a row across the
    /// boundary in ~8 ns instead of rank-level copy. A DAS-style swap
    /// becomes two RBM hops plus the source/destination activations —
    /// one third of the migration-cell path's 146.25 ns.
    pub fn lisa() -> Self {
        TimingSet {
            single_migration: Tick::from_ns(24.375),
            swap: Tick::from_ns(48.75),
            ..Self::asymmetric()
        }
    }

    /// The parameter set applied to rows of subarray `kind`.
    pub fn params_for(&self, kind: SubarrayKind) -> &TimingParams {
        match kind {
            SubarrayKind::Fast => &self.fast,
            SubarrayKind::Slow => &self.slow,
        }
    }

    /// Rank- and channel-level parameters (tRRD, tFAW, bus, turnarounds) are
    /// set by the conventional peripheral circuits, shared by both kinds.
    pub fn rank_params(&self) -> &TimingParams {
        &self.slow
    }

    /// Whether this device supports in-array row migration.
    pub fn supports_migration(&self) -> bool {
        self.swap != Tick::MAX
    }

    /// The distinct refresh cadences of the two latency levels. Equal
    /// cadences (every stock device today) collapse into one schedule, so a
    /// homogeneous-refresh rank is driven exactly as before the per-level
    /// hook existed.
    pub fn refresh_cadences(&self) -> Vec<RefreshCadence> {
        let slow = self.slow.refresh_cadence();
        let fast = self.fast.refresh_cadence();
        if fast == slow {
            vec![slow]
        } else {
            vec![slow, fast]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let s = TimingParams::ddr3_1600();
        assert_eq!(s.trcd, Tick::from_ns(13.75));
        assert_eq!(s.trc(), Tick::from_ns(48.75));
        let f = TimingParams::fast_subarray();
        assert_eq!(f.trcd, Tick::from_ns(8.75));
        assert_eq!(f.trc(), Tick::from_ns(25.0));
        let set = TimingSet::asymmetric();
        assert_eq!(set.swap, Tick::from_ns(146.25));
        assert_eq!(set.single_migration.as_ns(), 1.5 * s.trc().as_ns());
        assert_eq!(set.swap.as_ns(), 3.0 * s.trc().as_ns());
    }

    #[test]
    fn charm_reduces_only_column_path() {
        let charm = TimingSet::charm();
        let das = TimingSet::asymmetric();
        assert!(charm.fast.cl < das.fast.cl);
        assert_eq!(charm.fast.trcd, das.fast.trcd);
        assert_eq!(charm.slow, das.slow);
        assert!(!charm.supports_migration());
        assert!(das.supports_migration());
    }

    #[test]
    fn homogeneous_sets_are_uniform() {
        let std = TimingSet::homogeneous_slow();
        assert_eq!(
            std.params_for(SubarrayKind::Fast),
            std.params_for(SubarrayKind::Slow)
        );
        let fs = TimingSet::homogeneous_fast();
        assert_eq!(fs.slow.trc(), Tick::from_ns(25.0));
        assert!(!std.supports_migration());
    }

    #[test]
    fn fast_closed_read_is_faster() {
        assert!(
            TimingParams::fast_subarray().closed_read_latency()
                < TimingParams::ddr3_1600().closed_read_latency()
        );
    }

    #[test]
    fn tl_dram_far_is_slower_than_commodity() {
        let far = TimingParams::tl_dram_far();
        let base = TimingParams::ddr3_1600();
        assert!(far.trc() > base.trc());
        assert!(far.twr > base.twr);
        let set = TimingSet::tl_dram();
        assert!(set.supports_migration());
        assert!(set.single_migration < TimingSet::asymmetric().single_migration * 2);
    }

    #[test]
    fn clr_morphed_shrinks_cell_timings_only() {
        let m = TimingParams::clr_morphed();
        let base = TimingParams::ddr3_1600();
        assert!(m.trcd < base.trcd);
        assert!(m.trc() < TimingParams::fast_subarray().trc());
        assert_eq!(m.cl, base.cl, "morphing does not touch the column path");
        let set = TimingSet::clr_dram();
        assert_eq!(set.single_migration, base.trc());
        assert_eq!(set.swap.as_ns(), 2.0 * base.trc().as_ns());
        assert!(set.supports_migration());
    }

    #[test]
    fn lisa_swap_is_one_third_of_das() {
        let lisa = TimingSet::lisa();
        let das = TimingSet::asymmetric();
        assert_eq!(lisa.slow, das.slow);
        assert_eq!(lisa.fast, das.fast);
        assert_eq!(lisa.swap.as_ns() * 3.0, das.swap.as_ns());
        assert_eq!(lisa.single_migration * 2, lisa.swap);
        assert!(lisa.supports_migration());
    }

    #[test]
    fn free_migration_is_zero_cost() {
        let fm = TimingSet::asymmetric_free_migration();
        assert_eq!(fm.swap, Tick::ZERO);
        assert!(fm.supports_migration());
    }

    #[test]
    fn equal_refresh_cadences_collapse_to_one_schedule() {
        for set in [
            TimingSet::homogeneous_slow(),
            TimingSet::asymmetric(),
            TimingSet::tl_dram(),
            TimingSet::clr_dram(),
            TimingSet::lisa(),
        ] {
            let c = set.refresh_cadences();
            assert_eq!(c.len(), 1, "stock devices refresh homogeneously");
            assert_eq!(c[0], set.slow.refresh_cadence());
        }
        let mut asym = TimingSet::asymmetric();
        asym.fast.trefi = Tick::from_ns(3900.0);
        let c = asym.refresh_cadences();
        assert_eq!(c.len(), 2);
        assert_eq!(c[0], asym.slow.refresh_cadence());
        assert_eq!(c[1], asym.fast.refresh_cadence());
    }

    #[test]
    #[should_panic(expected = "tRCD must not exceed tRAS")]
    fn validate_catches_bad_ordering() {
        let mut p = TimingParams::ddr3_1600();
        p.tras = Tick::from_ns(5.0);
        p.validate();
    }
}
