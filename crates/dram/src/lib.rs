//! # das-dram — cycle-level DRAM device model
//!
//! The DRAM substrate for the DAS-DRAM reproduction (Lu, Lin & Yang,
//! *Improving DRAM Latency with Dynamic Asymmetric Subarray*, MICRO 2015).
//!
//! This crate models a DDR3-class DRAM device at command granularity:
//!
//! * [`tick`] — the simulation time base (1/24 ns ticks, making every Table 1
//!   parameter exact);
//! * [`geometry`] — channels/ranks/banks/subarrays, fast/slow bank layouts
//!   (Fig. 5 arrangements) and the address mapping;
//! * [`timing`] — DDR3-1600 and short-bitline timing parameter sets;
//! * [`command`] — ACT/RD/WR/PRE plus the paper's `RowSwap` and `Refresh`;
//! * [`bank`], [`rank`], [`channel`] — the state machines enforcing every
//!   inter-command constraint (tRCD, tRAS, tRP, tCCD, tRTP, tWTR, tWR, tRRD,
//!   tFAW, bus occupancy, turnarounds, refresh).
//!
//! The device is *passive*: a memory controller (see `das-memctrl`) queries
//! [`channel::ChannelDevice::earliest_issue`] and commits commands with
//! [`channel::ChannelDevice::issue`].
//!
//! # Examples
//!
//! ```
//! use das_dram::channel::ChannelDevice;
//! use das_dram::command::DramCommand;
//! use das_dram::geometry::{Arrangement, BankCoord, BankLayout, FastRatio};
//! use das_dram::tick::Tick;
//! use das_dram::timing::TimingSet;
//!
//! let layout = BankLayout::build(4096, FastRatio::PAPER_DEFAULT,
//!     Arrangement::ReducedInterleaving, 128, 512);
//! let mut ch = ChannelDevice::new(0, 2, 8, layout, TimingSet::asymmetric(), false);
//! let bank = BankCoord::new(0, 0, 0);
//! let row = ch.layout().fast_to_phys(0);
//! let act = DramCommand::Activate { bank, phys_row: row };
//! let t = ch.earliest_issue(&act, Tick::ZERO).expect("ACT legal on idle bank");
//! ch.issue(&act, t);
//! let rd = DramCommand::Read { bank, phys_row: row, col: 0 };
//! let t = ch.earliest_issue(&rd, t).expect("row open");
//! let data_done = ch.issue(&rd, t).data_end.expect("reads return data");
//! assert_eq!(data_done.as_ns(), 8.75 + 13.75 + 5.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod area;
pub mod bank;
pub mod channel;
pub mod command;
pub mod geometry;
pub mod rank;
pub mod tick;
pub mod timing;

pub use area::{
    AsymmetricAreaModel, ClrDramAreaModel, LisaAreaModel, SalpAreaModel, TlDramAreaModel,
};
pub use bank::{Bank, BankStats, RowBufferState};
pub use channel::{ChannelDevice, IssueOutcome};
pub use command::{DramCommand, MigrationKind};
pub use geometry::{
    Arrangement, BankCoord, BankLayout, DramGeometry, FastRatio, GlobalRowId, MemCoord, Subarray,
    SubarrayKind,
};
pub use tick::{Tick, TICKS_PER_CPU_CYCLE, TICKS_PER_NS};
pub use timing::{TimingParams, TimingSet};
