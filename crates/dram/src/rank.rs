//! Rank-level activation constraints (tRRD, tFAW, refresh) and the shared
//! per-channel data bus with read/write turnaround tracking.

use crate::tick::Tick;
use crate::timing::RefreshCadence;

/// Direction of a data-bus transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusDir {
    /// Device → controller (READ data).
    Read,
    /// Controller → device (WRITE data).
    Write,
}

/// Occupancy and turnaround state of one channel's data bus.
///
/// The bus serialises all data bursts on a channel. Direction switches pay a
/// turnaround gap: writes after reads wait two tCK of bus turnaround, reads
/// after writes wait the rank write-to-read turnaround (tWTR) measured from
/// the end of the write burst.
#[derive(Debug, Clone)]
pub struct DataBus {
    free_at: Tick,
    last_dir: Option<BusDir>,
    last_end: Tick,
}

impl Default for DataBus {
    fn default() -> Self {
        Self::new()
    }
}

impl DataBus {
    /// An idle bus.
    pub fn new() -> Self {
        DataBus {
            free_at: Tick::ZERO,
            last_dir: None,
            last_end: Tick::ZERO,
        }
    }

    /// Earliest tick a burst in `dir` may *start* on the bus, given the
    /// write-to-read turnaround `twtr` and the read-to-write gap `rtw`.
    pub fn earliest_start(&self, dir: BusDir, twtr: Tick, rtw: Tick) -> Tick {
        let mut t = self.free_at;
        match (self.last_dir, dir) {
            (Some(BusDir::Write), BusDir::Read) => t = t.max(self.last_end + twtr),
            (Some(BusDir::Read), BusDir::Write) => t = t.max(self.last_end + rtw),
            _ => {}
        }
        t
    }

    /// Records a burst occupying `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the burst starts before the bus is free.
    pub fn occupy(&mut self, dir: BusDir, start: Tick, end: Tick) {
        debug_assert!(
            start >= self.free_at,
            "bus conflict: start {start} < free {}",
            self.free_at
        );
        debug_assert!(end >= start);
        self.free_at = end;
        self.last_dir = Some(dir);
        self.last_end = end;
    }

    /// Tick at which the bus becomes idle.
    pub fn free_at(&self) -> Tick {
        self.free_at
    }
}

/// One independent refresh schedule of a rank.
#[derive(Debug, Clone)]
struct RefreshTrack {
    cadence: RefreshCadence,
    next_due: Tick,
}

/// Sliding-window activation and refresh tracker for one rank.
#[derive(Debug, Clone)]
pub struct RankTracker {
    /// Issue times of the most recent four ACTs (ring buffer), oldest first
    /// via `head`.
    act_window: [Tick; 4],
    head: usize,
    acts_seen: u64,
    last_act: Tick,
    busy_until: Tick,
    /// One schedule per distinct refresh cadence (a homogeneous device has
    /// one; fast/slow levels with distinct tREFI/tRFC each run their own).
    tracks: Vec<RefreshTrack>,
    refreshes: u64,
}

impl RankTracker {
    /// A fresh rank on a single refresh cadence, first REF due after one
    /// tREFI.
    pub fn new(cadence: RefreshCadence) -> Self {
        Self::with_cadences(&[cadence])
    }

    /// A rank running one independent refresh schedule per distinct cadence
    /// (fast and slow levels may refresh at different rates). Duplicate
    /// cadences collapse into one schedule, reproducing the homogeneous
    /// device exactly.
    ///
    /// # Panics
    ///
    /// Panics if `cadences` is empty.
    pub fn with_cadences(cadences: &[RefreshCadence]) -> Self {
        let mut tracks: Vec<RefreshTrack> = Vec::new();
        for &c in cadences {
            if !tracks.iter().any(|t| t.cadence == c) {
                tracks.push(RefreshTrack {
                    cadence: c,
                    next_due: c.trefi,
                });
            }
        }
        assert!(!tracks.is_empty(), "a rank needs a refresh cadence");
        RankTracker {
            act_window: [Tick::ZERO; 4],
            head: 0,
            acts_seen: 0,
            last_act: Tick::ZERO,
            busy_until: Tick::ZERO,
            tracks,
            refreshes: 0,
        }
    }

    /// Earliest tick a new ACT may issue in this rank under tRRD/tFAW and
    /// any in-progress refresh.
    pub fn earliest_activate(&self, trrd: Tick, tfaw: Tick) -> Tick {
        let mut t = self.busy_until;
        if self.acts_seen > 0 {
            t = t.max(self.last_act + trrd);
        }
        if self.acts_seen >= self.act_window.len() as u64 {
            // The oldest of the last four ACTs bounds the 4-activate window.
            t = t.max(self.act_window[self.head] + tfaw);
        }
        t
    }

    /// Records an ACT at `at`.
    pub fn record_activate(&mut self, at: Tick) {
        self.last_act = at;
        self.act_window[self.head] = at;
        self.head = (self.head + 1) % self.act_window.len();
        self.acts_seen += 1;
    }

    /// Whether any refresh schedule is due at `now`.
    pub fn refresh_due(&self, now: Tick) -> bool {
        now >= self.next_refresh_due()
    }

    /// Tick of the next scheduled refresh across all schedules.
    pub fn next_refresh_due(&self) -> Tick {
        self.tracks
            .iter()
            .map(|t| t.next_due)
            .min()
            .expect("at least one cadence")
    }

    /// Rank busy (refresh in progress) until this tick.
    pub fn busy_until(&self) -> Tick {
        self.busy_until
    }

    /// Starts the earliest-due refresh schedule at `at`, blocking the rank
    /// for that schedule's tRFC and rescheduling it one of its tREFIs
    /// later. Returns the completion tick. Ties resolve to the schedule
    /// listed first (the slow level), deterministically.
    pub fn refresh(&mut self, at: Tick) -> Tick {
        debug_assert!(at >= self.busy_until);
        let track = self
            .tracks
            .iter_mut()
            .min_by_key(|t| t.next_due)
            .expect("at least one cadence");
        self.busy_until = at + track.cadence.trfc;
        track.next_due += track.cadence.trefi;
        self.refreshes += 1;
        self.busy_until
    }

    /// Number of refreshes performed.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> Tick {
        Tick::from_ns(ns)
    }

    fn cadence(trefi: f64, trfc: f64) -> RefreshCadence {
        RefreshCadence {
            trefi: t(trefi),
            trfc: t(trfc),
        }
    }

    #[test]
    fn bus_serialises_bursts() {
        let mut bus = DataBus::new();
        assert_eq!(bus.earliest_start(BusDir::Read, t(7.5), t(2.5)), Tick::ZERO);
        bus.occupy(BusDir::Read, t(10.0), t(15.0));
        assert_eq!(bus.free_at(), t(15.0));
        assert_eq!(bus.earliest_start(BusDir::Read, t(7.5), t(2.5)), t(15.0));
    }

    #[test]
    fn bus_turnarounds() {
        let mut bus = DataBus::new();
        bus.occupy(BusDir::Write, t(10.0), t(15.0));
        // Read after write: wait tWTR past the data end.
        assert_eq!(bus.earliest_start(BusDir::Read, t(7.5), t(2.5)), t(22.5));
        // Write after write: no turnaround.
        assert_eq!(bus.earliest_start(BusDir::Write, t(7.5), t(2.5)), t(15.0));
        let mut bus2 = DataBus::new();
        bus2.occupy(BusDir::Read, t(0.0), t(5.0));
        assert_eq!(bus2.earliest_start(BusDir::Write, t(7.5), t(2.5)), t(7.5));
    }

    #[test]
    fn trrd_spaces_activates() {
        let mut r = RankTracker::new(cadence(7800.0, 160.0));
        assert_eq!(r.earliest_activate(t(6.25), t(30.0)), Tick::ZERO);
        r.record_activate(t(0.0));
        assert_eq!(r.earliest_activate(t(6.25), t(30.0)), t(6.25));
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let mut r = RankTracker::new(cadence(7800.0, 160.0));
        for i in 0..4 {
            let at = t(6.25 * i as f64);
            assert!(r.earliest_activate(t(6.25), t(30.0)) <= at);
            r.record_activate(at);
        }
        // Fifth ACT must wait until 30 ns after the first.
        assert_eq!(r.earliest_activate(t(6.25), t(30.0)), t(30.0));
    }

    #[test]
    fn refresh_blocks_rank_and_reschedules() {
        let mut r = RankTracker::new(cadence(100.0, 160.0));
        assert!(!r.refresh_due(t(50.0)));
        assert!(r.refresh_due(t(100.0)));
        let done = r.refresh(t(100.0));
        assert_eq!(done, t(260.0));
        assert_eq!(r.earliest_activate(t(6.25), t(30.0)), t(260.0));
        assert_eq!(r.next_refresh_due(), t(200.0));
        assert_eq!(r.refreshes(), 1);
    }

    #[test]
    fn duplicate_cadences_collapse_into_one_schedule() {
        let c = cadence(100.0, 10.0);
        let mut dual = RankTracker::with_cadences(&[c, c]);
        let mut single = RankTracker::new(c);
        for step in 1..=5u64 {
            assert_eq!(dual.next_refresh_due(), single.next_refresh_due());
            let at = dual.next_refresh_due();
            assert_eq!(dual.refresh(at), single.refresh(at));
            assert_eq!(dual.refreshes(), step);
        }
    }

    #[test]
    fn asymmetric_cadences_run_independent_schedules() {
        // Slow level every 100 ns (cost 10), fast level every 40 ns (cost 4):
        // the fast schedule fires more often without perturbing the slow one.
        let mut r = RankTracker::with_cadences(&[cadence(100.0, 10.0), cadence(40.0, 4.0)]);
        assert_eq!(r.next_refresh_due(), t(40.0));
        assert_eq!(r.refresh(t(40.0)), t(44.0)); // fast REF
        assert_eq!(r.next_refresh_due(), t(80.0));
        assert_eq!(r.refresh(t(80.0)), t(84.0)); // fast REF
        assert_eq!(r.next_refresh_due(), t(100.0));
        assert_eq!(r.refresh(t(100.0)), t(110.0)); // slow REF
        assert_eq!(r.next_refresh_due(), t(120.0)); // fast again
        assert_eq!(r.refreshes(), 3);
    }
}
