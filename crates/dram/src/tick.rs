//! Simulation time base.
//!
//! All simulator time is expressed in integer [`Tick`]s of **1/24 ns**
//! ([`TICKS_PER_NS`] = 24). This granularity was chosen so that every timing
//! quantity in the paper's Table 1 is an exact integer:
//!
//! | quantity | value | ticks |
//! |---|---|---|
//! | CPU cycle (3 GHz) | 1/3 ns | 8 |
//! | tCK (DDR3-1600) | 1.25 ns | 30 |
//! | tRCD (slow) | 13.75 ns | 330 |
//! | tRC (slow) | 48.75 ns | 1170 |
//! | tRCD (fast) | 8.75 ns | 210 |
//! | tRC (fast) | 25 ns | 600 |
//! | one row migration (1.5 tRC) | 73.125 ns | 1755 |
//! | row swap / migration latency (Table 1) | 146.25 ns | 3510 |

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// Number of [`Tick`]s per nanosecond.
pub const TICKS_PER_NS: u64 = 24;

/// Number of [`Tick`]s per CPU cycle at the paper's 3 GHz core clock.
pub const TICKS_PER_CPU_CYCLE: u64 = TICKS_PER_NS / 3;

/// A point in simulated time (or a duration), in units of 1/24 ns.
///
/// `Tick` is a transparent newtype over `u64` implementing saturating-free
/// checked-by-debug arithmetic through the standard operators. Construct
/// values with [`Tick::from_ns`], [`Tick::from_ns_int`], [`Tick::from_cpu_cycles`]
/// or the raw [`Tick::new`].
///
/// # Examples
///
/// ```
/// use das_dram::tick::Tick;
///
/// let trcd = Tick::from_ns(13.75);
/// assert_eq!(trcd.as_ns(), 13.75);
/// assert_eq!(trcd + trcd, Tick::from_ns(27.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(u64);

impl Tick {
    /// Time zero / zero-length duration.
    pub const ZERO: Tick = Tick(0);
    /// The largest representable time, used as "never".
    pub const MAX: Tick = Tick(u64::MAX);

    /// Creates a `Tick` from a raw count of 1/24-ns units.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Tick(raw)
    }

    /// Creates a `Tick` from a (possibly fractional) number of nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `ns` is negative or does not convert to an
    /// exact integer number of ticks (all paper parameters do).
    #[inline]
    pub fn from_ns(ns: f64) -> Self {
        let raw = ns * TICKS_PER_NS as f64;
        debug_assert!(raw >= 0.0, "negative time");
        debug_assert!(
            (raw - raw.round()).abs() < 1e-6,
            "{ns} ns is not an integer number of ticks"
        );
        Tick(raw.round() as u64)
    }

    /// Creates a `Tick` from an integer number of nanoseconds.
    #[inline]
    pub const fn from_ns_int(ns: u64) -> Self {
        Tick(ns * TICKS_PER_NS)
    }

    /// Creates a `Tick` from a number of CPU cycles at 3 GHz.
    #[inline]
    pub const fn from_cpu_cycles(cycles: u64) -> Self {
        Tick(cycles * TICKS_PER_CPU_CYCLE)
    }

    /// The raw tick count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// This time expressed in nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / TICKS_PER_NS as f64
    }

    /// This time expressed in CPU cycles (3 GHz), rounded down.
    #[inline]
    pub const fn as_cpu_cycles(self) -> u64 {
        self.0 / TICKS_PER_CPU_CYCLE
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Tick) -> Tick {
        Tick(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Tick) -> Option<Tick> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Tick(v)),
            None => None,
        }
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: Tick) -> Tick {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: Tick) -> Tick {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    #[inline]
    fn sub(self, rhs: Tick) -> Tick {
        debug_assert!(self.0 >= rhs.0, "tick subtraction underflow");
        Tick(self.0 - rhs.0)
    }
}

impl SubAssign for Tick {
    #[inline]
    fn sub_assign(&mut self, rhs: Tick) {
        debug_assert!(self.0 >= rhs.0, "tick subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn mul(self, rhs: u64) -> Tick {
        Tick(self.0 * rhs)
    }
}

impl Mul<Tick> for u64 {
    type Output = Tick;
    #[inline]
    fn mul(self, rhs: Tick) -> Tick {
        Tick(self * rhs.0)
    }
}

impl Sum for Tick {
    fn sum<I: Iterator<Item = Tick>>(iter: I) -> Tick {
        iter.fold(Tick::ZERO, Add::add)
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

impl From<Tick> for u64 {
    #[inline]
    fn from(t: Tick) -> u64 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_quantities_are_exact() {
        assert_eq!(Tick::from_ns(13.75).raw(), 330);
        assert_eq!(Tick::from_ns(48.75).raw(), 1170);
        assert_eq!(Tick::from_ns(8.75).raw(), 210);
        assert_eq!(Tick::from_ns(25.0).raw(), 600);
        assert_eq!(Tick::from_ns(146.25).raw(), 3510);
        assert_eq!(Tick::from_ns(73.125).raw(), 1755);
        assert_eq!(Tick::from_ns(1.25).raw(), 30);
    }

    #[test]
    fn cpu_cycle_is_8_ticks() {
        assert_eq!(TICKS_PER_CPU_CYCLE, 8);
        assert_eq!(Tick::from_cpu_cycles(3).raw(), 24);
        assert_eq!(Tick::from_ns_int(1).as_cpu_cycles(), 3);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = Tick::from_ns_int(10);
        let b = Tick::from_ns_int(4);
        assert_eq!((a + b).as_ns(), 14.0);
        assert_eq!((a - b).as_ns(), 6.0);
        assert_eq!((a * 3).as_ns(), 30.0);
        assert_eq!(3 * b, b * 3);
        assert_eq!(b.saturating_sub(a), Tick::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn ordering_and_display() {
        assert!(Tick::from_ns_int(1) < Tick::from_ns_int(2));
        assert_eq!(format!("{}", Tick::from_ns(1.25)), "1.250ns");
        assert_eq!(Tick::default(), Tick::ZERO);
    }

    #[test]
    fn sum_of_ticks() {
        let total: Tick = [1u64, 2, 3].iter().map(|&n| Tick::from_ns_int(n)).sum();
        assert_eq!(total, Tick::from_ns_int(6));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Tick::MAX.checked_add(Tick::new(1)), None);
        assert_eq!(Tick::new(1).checked_add(Tick::new(2)), Some(Tick::new(3)));
    }
}
