//! DRAM organization: channels, ranks, banks, subarrays, rows and the
//! physical-address → device-coordinate mapping.
//!
//! The asymmetric organization follows §4.3 of the paper: each bank mixes
//! *fast* subarrays (128-cell bitlines) with conventional *slow* subarrays
//! (512-cell bitlines), laid out in one of the three arrangements of Fig. 5
//! (partitioning / interleaving / reduced interleaving). The logical row
//! space of a bank is the union of both kinds; management (in `das-core`)
//! permutes logical rows across the fast and slow *slots* of a migration
//! group.

use core::fmt;

use crate::tick::Tick;

/// Whether a subarray uses short (fast) or conventional (slow) bitlines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubarrayKind {
    /// Short-bitline subarray (128 cells/bitline): low tRCD/tRC.
    Fast,
    /// Conventional subarray (512 cells/bitline): baseline timings.
    Slow,
}

impl fmt::Display for SubarrayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubarrayKind::Fast => write!(f, "fast"),
            SubarrayKind::Slow => write!(f, "slow"),
        }
    }
}

/// Physical placement of fast subarrays within a bank (paper Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Arrangement {
    /// All fast subarrays at one end of the bank. Unbounded ratio but long
    /// average migration paths.
    Partitioning,
    /// Strict fast/slow alternation. Locks the ratio near 1:1.
    Interleaving,
    /// The paper's choice: small runs of fast subarrays interleaved among
    /// slow ones, bounding the migration hop distance while allowing a
    /// small fast fraction.
    #[default]
    ReducedInterleaving,
}

/// Coordinates of one bank in the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankCoord {
    /// Channel index.
    pub channel: u8,
    /// Rank within the channel.
    pub rank: u8,
    /// Bank within the rank.
    pub bank: u8,
}

impl BankCoord {
    /// Creates a bank coordinate.
    pub const fn new(channel: u8, rank: u8, bank: u8) -> Self {
        BankCoord {
            channel,
            rank,
            bank,
        }
    }
}

impl fmt::Display for BankCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}r{}b{}", self.channel, self.rank, self.bank)
    }
}

/// A decoded memory request target: bank coordinates plus the *logical* row
/// within the bank and the column (cache line within the row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemCoord {
    /// The bank holding the row.
    pub bank: BankCoord,
    /// Logical (pre-translation) row index within the bank.
    pub row: u32,
    /// Cache-line index within the row.
    pub col: u32,
}

/// Globally unique identifier for a logical row: `(channel, rank, bank, row)`
/// packed into a `u64`. Used as the key for translation structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalRowId(pub u64);

impl fmt::Display for GlobalRowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row#{}", self.0)
    }
}

/// Exact rational fast-level capacity share (e.g. 1/8 of total capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FastRatio {
    num: u32,
    den: u32,
}

impl FastRatio {
    /// The paper's default fast-level share: 1/8 of total capacity.
    pub const PAPER_DEFAULT: FastRatio = FastRatio { num: 1, den: 8 };

    /// Creates a ratio `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`, `num == 0`, or `num > den`.
    pub fn new(num: u32, den: u32) -> Self {
        assert!(
            den > 0 && num > 0 && num <= den,
            "invalid fast ratio {num}/{den}"
        );
        FastRatio { num, den }
    }

    /// Numerator.
    pub fn num(self) -> u32 {
        self.num
    }

    /// Denominator.
    pub fn den(self) -> u32 {
        self.den
    }

    /// Applies the ratio to a count.
    ///
    /// # Panics
    ///
    /// Panics if `total * num` is not divisible by `den`; geometries are
    /// chosen so that fast-row counts are exact.
    pub fn apply(self, total: u32) -> u32 {
        let scaled = total as u64 * self.num as u64;
        assert!(
            scaled.is_multiple_of(self.den as u64),
            "{total} rows not divisible into ratio {self}"
        );
        (scaled / self.den as u64) as u32
    }

    /// The ratio as an `f64` fraction.
    pub fn as_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Display for FastRatio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

/// One subarray inside a bank: a contiguous run of physical rows sharing
/// bitlines (and, with its neighbours, half row buffers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subarray {
    /// Fast (short-bitline) or slow (conventional).
    pub kind: SubarrayKind,
    /// First physical row of the subarray.
    pub phys_start: u32,
    /// Number of rows in the subarray.
    pub rows: u32,
}

/// Physical layout of one bank: the ordered list of subarrays and the
/// fast/slow row index spaces.
///
/// Physical rows are numbered `0..rows_per_bank` in layout order. The *fast
/// space* indexes all rows of fast subarrays (in layout order) and the
/// *slow space* all rows of slow subarrays. Management addresses migration
/// targets through these two spaces.
#[derive(Debug, Clone)]
pub struct BankLayout {
    subarrays: Vec<Subarray>,
    fast_rows: u32,
    slow_rows: u32,
    /// For each subarray, the starting index of its rows within its kind's
    /// index space.
    kind_space_start: Vec<u32>,
}

impl BankLayout {
    /// Builds the layout for a bank of `rows_per_bank` rows with the given
    /// fast share and arrangement.
    ///
    /// Fast subarrays hold `fast_subarray_rows` rows, slow ones
    /// `slow_subarray_rows` (128/512 in the paper). Subarrays at the tail
    /// may be partial so that any exact ratio can be realised.
    ///
    /// # Panics
    ///
    /// Panics if the ratio does not divide `rows_per_bank` exactly.
    pub fn build(
        rows_per_bank: u32,
        ratio: FastRatio,
        arrangement: Arrangement,
        fast_subarray_rows: u32,
        slow_subarray_rows: u32,
    ) -> Self {
        let fast_rows = ratio.apply(rows_per_bank);
        let slow_rows = rows_per_bank - fast_rows;
        let mut subarrays = Vec::new();
        let push_run = |subarrays: &mut Vec<Subarray>, kind, mut rows: u32, unit: u32| {
            while rows > 0 {
                let take = rows.min(unit);
                subarrays.push(Subarray {
                    kind,
                    phys_start: 0,
                    rows: take,
                });
                rows -= take;
            }
        };
        match arrangement {
            Arrangement::Partitioning => {
                push_run(
                    &mut subarrays,
                    SubarrayKind::Fast,
                    fast_rows,
                    fast_subarray_rows,
                );
                push_run(
                    &mut subarrays,
                    SubarrayKind::Slow,
                    slow_rows,
                    slow_subarray_rows,
                );
            }
            Arrangement::Interleaving => {
                // Strict alternation of single fast and slow subarrays; the
                // longer side's remainder trails at the end.
                let mut fast_left = fast_rows;
                let mut slow_left = slow_rows;
                while fast_left > 0 && slow_left > 0 {
                    let f = fast_left.min(fast_subarray_rows);
                    push_run(&mut subarrays, SubarrayKind::Fast, f, fast_subarray_rows);
                    fast_left -= f;
                    let s = slow_left.min(slow_subarray_rows);
                    push_run(&mut subarrays, SubarrayKind::Slow, s, slow_subarray_rows);
                    slow_left -= s;
                }
                push_run(
                    &mut subarrays,
                    SubarrayKind::Fast,
                    fast_left,
                    fast_subarray_rows,
                );
                push_run(
                    &mut subarrays,
                    SubarrayKind::Slow,
                    slow_left,
                    slow_subarray_rows,
                );
            }
            Arrangement::ReducedInterleaving => {
                // Each fast subarray is followed by a proportional run of
                // slow rows, spreading the fast level evenly through the
                // bank and bounding the migration hop distance (paper §4.3).
                let fast_runs = fast_rows.div_ceil(fast_subarray_rows).max(1);
                let mut fast_left = fast_rows;
                let mut slow_left = slow_rows;
                for run in 0..fast_runs {
                    let f = fast_left.min(fast_subarray_rows);
                    push_run(&mut subarrays, SubarrayKind::Fast, f, fast_subarray_rows);
                    fast_left -= f;
                    let runs_after = (fast_runs - run - 1) as u64;
                    let s = if runs_after == 0 {
                        slow_left
                    } else {
                        (slow_left as u64 / (runs_after + 1)) as u32
                    };
                    push_run(&mut subarrays, SubarrayKind::Slow, s, slow_subarray_rows);
                    slow_left -= s;
                }
                push_run(
                    &mut subarrays,
                    SubarrayKind::Slow,
                    slow_left,
                    slow_subarray_rows,
                );
            }
        }
        // Assign physical start offsets and kind-space starts.
        let mut phys = 0u32;
        let mut fast_seen = 0u32;
        let mut slow_seen = 0u32;
        let mut kind_space_start = Vec::with_capacity(subarrays.len());
        for sa in &mut subarrays {
            sa.phys_start = phys;
            phys += sa.rows;
            match sa.kind {
                SubarrayKind::Fast => {
                    kind_space_start.push(fast_seen);
                    fast_seen += sa.rows;
                }
                SubarrayKind::Slow => {
                    kind_space_start.push(slow_seen);
                    slow_seen += sa.rows;
                }
            }
        }
        debug_assert_eq!(phys, rows_per_bank);
        debug_assert_eq!(fast_seen, fast_rows);
        debug_assert_eq!(slow_seen, slow_rows);
        BankLayout {
            subarrays,
            fast_rows,
            slow_rows,
            kind_space_start,
        }
    }

    /// Number of rows in fast subarrays.
    pub fn fast_rows(&self) -> u32 {
        self.fast_rows
    }

    /// Number of rows in slow subarrays.
    pub fn slow_rows(&self) -> u32 {
        self.slow_rows
    }

    /// Total rows in the bank.
    pub fn total_rows(&self) -> u32 {
        self.fast_rows + self.slow_rows
    }

    /// The subarrays in physical order.
    pub fn subarrays(&self) -> &[Subarray] {
        &self.subarrays
    }

    /// Physical row of the `i`-th row of the fast space.
    ///
    /// # Panics
    ///
    /// Panics if `i >= fast_rows()`.
    pub fn fast_to_phys(&self, i: u32) -> u32 {
        assert!(i < self.fast_rows, "fast row {i} out of range");
        self.kind_to_phys(SubarrayKind::Fast, i)
    }

    /// Physical row of the `i`-th row of the slow space.
    ///
    /// # Panics
    ///
    /// Panics if `i >= slow_rows()`.
    pub fn slow_to_phys(&self, i: u32) -> u32 {
        assert!(i < self.slow_rows, "slow row {i} out of range");
        self.kind_to_phys(SubarrayKind::Slow, i)
    }

    fn kind_to_phys(&self, kind: SubarrayKind, i: u32) -> u32 {
        // Subarrays of one kind appear in increasing kind-space order, so a
        // linear scan grouped by kind finds the right one; banks have few
        // subarrays (≤ tens), and callers cache results, so this is cheap.
        for (sa, &start) in self.subarrays.iter().zip(&self.kind_space_start) {
            if sa.kind == kind && i >= start && i < start + sa.rows {
                return sa.phys_start + (i - start);
            }
        }
        unreachable!("kind-space index {i} not found")
    }

    /// The subarray index and kind of a physical row.
    ///
    /// # Panics
    ///
    /// Panics if `phys_row` is out of range.
    pub fn classify(&self, phys_row: u32) -> (usize, SubarrayKind) {
        let idx = self
            .subarrays
            .partition_point(|sa| sa.phys_start + sa.rows <= phys_row);
        let sa = self
            .subarrays
            .get(idx)
            .unwrap_or_else(|| panic!("physical row {phys_row} out of range"));
        (idx, sa.kind)
    }

    /// The kind (fast/slow) of a physical row.
    pub fn row_kind(&self, phys_row: u32) -> SubarrayKind {
        self.classify(phys_row).1
    }

    /// Number of subarray boundaries a migrating row crosses between two
    /// physical rows — the migration hop distance of §4.3.
    pub fn migration_hops(&self, phys_a: u32, phys_b: u32) -> u32 {
        let (ia, _) = self.classify(phys_a);
        let (ib, _) = self.classify(phys_b);
        (ia as i64 - ib as i64).unsigned_abs() as u32
    }

    /// Mean migration hop distance between fast and slow rows, used by the
    /// arrangement ablation.
    pub fn mean_fast_slow_hops(&self) -> f64 {
        let mut total = 0u64;
        let mut n = 0u64;
        for (ia, a) in self.subarrays.iter().enumerate() {
            if a.kind != SubarrayKind::Fast {
                continue;
            }
            for (ib, b) in self.subarrays.iter().enumerate() {
                if b.kind != SubarrayKind::Slow {
                    continue;
                }
                let hops = (ia as i64 - ib as i64).unsigned_abs();
                total += hops * (a.rows as u64) * (b.rows as u64);
                n += (a.rows as u64) * (b.rows as u64);
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64
        }
    }
}

/// Full system geometry and address mapping.
///
/// The default mapping places, from least- to most-significant address bits:
/// line offset, channel, column, bank, rank, row — maximising row-buffer
/// locality under the open-page policy of Table 1.
#[derive(Debug, Clone)]
pub struct DramGeometry {
    /// Number of memory channels.
    pub channels: u8,
    /// Ranks per channel.
    pub ranks_per_channel: u8,
    /// Banks per rank.
    pub banks_per_rank: u8,
    /// Rows per bank (logical == physical count; contents are permuted).
    pub rows_per_bank: u32,
    /// Bytes per row (the promotion/migration unit).
    pub row_bytes: u32,
    /// Bytes per cache line / column access.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// The paper's Table 1 system: two 4 GB DDR3-1600 DIMMs, 2 channels,
    /// 2 ranks/channel, 8 banks/rank, 8 KB rows → 32768 rows/bank.
    pub fn paper_full() -> Self {
        DramGeometry {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            rows_per_bank: 32768,
            row_bytes: 8192,
            line_bytes: 64,
        }
    }

    /// The paper geometry with every capacity divided by `factor`
    /// (rows per bank shrink; row and line sizes are preserved).
    ///
    /// # Panics
    ///
    /// Panics if `factor` does not divide the row count.
    pub fn paper_scaled(factor: u32) -> Self {
        let mut g = Self::paper_full();
        assert!(factor > 0 && g.rows_per_bank.is_multiple_of(factor));
        g.rows_per_bank /= factor;
        g
    }

    /// Total bytes of DRAM in the system.
    pub fn total_bytes(&self) -> u64 {
        self.channels as u64
            * self.ranks_per_channel as u64
            * self.banks_per_rank as u64
            * self.rows_per_bank as u64
            * self.row_bytes as u64
    }

    /// Total number of banks in the system.
    pub fn total_banks(&self) -> u32 {
        self.channels as u32 * self.ranks_per_channel as u32 * self.banks_per_rank as u32
    }

    /// Cache lines per row.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Decodes a physical byte address into device coordinates.
    ///
    /// Bit order (low → high): line offset, column, channel, bank, rank,
    /// row. One row-sized block of contiguous addresses therefore maps to
    /// exactly **one** DRAM row (the migration unit), consecutive blocks
    /// rotate over channels and banks, and sequential lines within a block
    /// are row-buffer hits — the natural layout for an open-page policy.
    ///
    /// Addresses wrap modulo the total capacity, so synthetic traces may use
    /// any 64-bit address.
    pub fn decode(&self, addr: u64) -> MemCoord {
        let addr = addr % self.total_bytes();
        let mut a = addr / self.line_bytes as u64;
        let col = (a % self.lines_per_row() as u64) as u32;
        a /= self.lines_per_row() as u64;
        let channel = (a % self.channels as u64) as u8;
        a /= self.channels as u64;
        let bank = (a % self.banks_per_rank as u64) as u8;
        a /= self.banks_per_rank as u64;
        let rank = (a % self.ranks_per_channel as u64) as u8;
        a /= self.ranks_per_channel as u64;
        let row = (a % self.rows_per_bank as u64) as u32;
        MemCoord {
            bank: BankCoord {
                channel,
                rank,
                bank,
            },
            row,
            col,
        }
    }

    /// Re-encodes device coordinates into the canonical byte address of the
    /// first byte of the addressed line. Inverse of [`DramGeometry::decode`].
    pub fn encode(&self, coord: MemCoord) -> u64 {
        let mut a = coord.row as u64;
        a = a * self.ranks_per_channel as u64 + coord.bank.rank as u64;
        a = a * self.banks_per_rank as u64 + coord.bank.bank as u64;
        a = a * self.channels as u64 + coord.bank.channel as u64;
        a = a * self.lines_per_row() as u64 + coord.col as u64;
        a * self.line_bytes as u64
    }

    /// Packs bank coordinates and a logical row into a [`GlobalRowId`].
    pub fn global_row_id(&self, bank: BankCoord, row: u32) -> GlobalRowId {
        let mut id = bank.channel as u64;
        id = id * self.ranks_per_channel as u64 + bank.rank as u64;
        id = id * self.banks_per_rank as u64 + bank.bank as u64;
        id = id * self.rows_per_bank as u64 + row as u64;
        GlobalRowId(id)
    }

    /// Total number of logical rows in the system.
    pub fn total_rows(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank as u64
    }

    /// Iterates over every bank coordinate in the system.
    pub fn banks(&self) -> impl Iterator<Item = BankCoord> + '_ {
        let (ch, rk, bk) = (self.channels, self.ranks_per_channel, self.banks_per_rank);
        (0..ch).flat_map(move |c| {
            (0..rk).flat_map(move |r| (0..bk).map(move |b| BankCoord::new(c, r, b)))
        })
    }

    /// Flat bank index in `0..total_banks()` for a coordinate.
    pub fn bank_index(&self, bank: BankCoord) -> usize {
        (bank.channel as usize * self.ranks_per_channel as usize + bank.rank as usize)
            * self.banks_per_rank as usize
            + bank.bank as usize
    }

    /// The DRAM access time contribution of transferring one line over the
    /// channel at the given burst duration (helper used in docs/tests).
    pub fn burst_time(&self, burst: Tick) -> Tick {
        burst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_full_capacity_is_8gb() {
        let g = DramGeometry::paper_full();
        assert_eq!(g.total_bytes(), 8 << 30);
        assert_eq!(g.total_banks(), 32);
        assert_eq!(g.lines_per_row(), 128);
        assert_eq!(g.total_rows(), 1 << 20);
    }

    #[test]
    fn scaled_capacity_divides() {
        let g = DramGeometry::paper_scaled(8);
        assert_eq!(g.total_bytes(), 1 << 30);
        assert_eq!(g.rows_per_bank, 4096);
    }

    #[test]
    fn decode_encode_roundtrip() {
        let g = DramGeometry::paper_scaled(8);
        for addr in [0u64, 64, 8192, 123 * 64, 0x3fff_ffc0, 0x1234_5678 & !63] {
            let c = g.decode(addr);
            assert_eq!(g.encode(c), addr % g.total_bytes(), "addr {addr:#x}");
        }
    }

    #[test]
    fn one_row_block_is_one_dram_row() {
        let g = DramGeometry::paper_full();
        let a = g.decode(0);
        let b = g.decode(64);
        let last = g.decode(g.row_bytes as u64 - 64);
        assert_eq!(a.bank, b.bank);
        assert_eq!(a.row, b.row);
        assert_eq!(b.col, a.col + 1);
        assert_eq!(last.bank, a.bank);
        assert_eq!(last.col, g.lines_per_row() - 1);
    }

    #[test]
    fn consecutive_row_blocks_rotate_channels_then_banks() {
        let g = DramGeometry::paper_full();
        let row = g.row_bytes as u64;
        let a = g.decode(0);
        let b = g.decode(row);
        let c = g.decode(row * 2);
        assert_eq!(a.bank.channel, 0);
        assert_eq!(b.bank.channel, 1);
        assert_eq!(c.bank.channel, 0);
        assert_ne!(a.bank.bank, c.bank.bank, "third block moves to a new bank");
        assert_eq!(a.row, c.row);
    }

    #[test]
    fn global_row_ids_are_unique_and_dense() {
        let g = DramGeometry::paper_scaled(64);
        let mut seen = std::collections::HashSet::new();
        for bank in g.banks() {
            for row in 0..g.rows_per_bank {
                assert!(seen.insert(g.global_row_id(bank, row).0));
            }
        }
        assert_eq!(seen.len() as u64, g.total_rows());
        assert_eq!(*seen.iter().max().unwrap(), g.total_rows() - 1);
    }

    #[test]
    fn layout_reduced_interleaving_paper_ratio() {
        let l = BankLayout::build(
            32768,
            FastRatio::PAPER_DEFAULT,
            Arrangement::default(),
            128,
            512,
        );
        assert_eq!(l.fast_rows(), 4096);
        assert_eq!(l.slow_rows(), 28672);
        assert_eq!(l.total_rows(), 32768);
        // Fast subarrays are spread out, not all leading.
        let first_slow = l
            .subarrays()
            .iter()
            .position(|s| s.kind == SubarrayKind::Slow);
        let last_fast = l
            .subarrays()
            .iter()
            .rposition(|s| s.kind == SubarrayKind::Fast);
        assert!(first_slow.unwrap() < last_fast.unwrap());
    }

    #[test]
    fn layout_all_ratio_sweeps_build() {
        for den in [4u32, 8, 16, 32] {
            let l = BankLayout::build(
                4096,
                FastRatio::new(1, den),
                Arrangement::ReducedInterleaving,
                128,
                512,
            );
            assert_eq!(l.fast_rows(), 4096 / den);
            assert_eq!(l.total_rows(), 4096);
        }
    }

    #[test]
    fn kind_space_roundtrip() {
        let l = BankLayout::build(4096, FastRatio::new(1, 8), Arrangement::default(), 128, 512);
        for i in 0..l.fast_rows() {
            let p = l.fast_to_phys(i);
            assert_eq!(l.row_kind(p), SubarrayKind::Fast, "fast {i} -> phys {p}");
        }
        for i in 0..l.slow_rows() {
            let p = l.slow_to_phys(i);
            assert_eq!(l.row_kind(p), SubarrayKind::Slow, "slow {i} -> phys {p}");
        }
        // Bijection: every physical row is hit exactly once.
        let mut hit = vec![false; l.total_rows() as usize];
        for i in 0..l.fast_rows() {
            hit[l.fast_to_phys(i) as usize] = true;
        }
        for i in 0..l.slow_rows() {
            hit[l.slow_to_phys(i) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn partitioning_has_longer_paths_than_reduced_interleaving() {
        let part = BankLayout::build(
            4096,
            FastRatio::new(1, 8),
            Arrangement::Partitioning,
            128,
            512,
        );
        let ri = BankLayout::build(
            4096,
            FastRatio::new(1, 8),
            Arrangement::ReducedInterleaving,
            128,
            512,
        );
        assert!(part.mean_fast_slow_hops() > ri.mean_fast_slow_hops());
    }

    #[test]
    fn fast_ratio_validation() {
        assert_eq!(FastRatio::new(1, 8).apply(32), 4);
        assert_eq!(FastRatio::PAPER_DEFAULT.as_f64(), 0.125);
        assert_eq!(format!("{}", FastRatio::new(1, 4)), "1/4");
    }

    #[test]
    #[should_panic(expected = "invalid fast ratio")]
    fn fast_ratio_rejects_zero_denominator() {
        let _ = FastRatio::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn fast_ratio_rejects_inexact_split() {
        let _ = FastRatio::new(1, 3).apply(32);
    }
}
