//! DRAM command vocabulary.
//!
//! The controller drives the device with the classic ACT / RD / WR / PRE
//! commands (§2.3), plus the paper's additions: `RowSwap` (the 4-step
//! migration-row exchange of Fig. 6) and per-rank `Refresh`.

use core::fmt;

use crate::geometry::BankCoord;

/// The flavour of an in-array row migration (selects its duration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MigrationKind {
    /// Exclusive-cache promotion: full two-row exchange through the
    /// migration rows (Fig. 6) — 3 tRC.
    #[default]
    Swap,
    /// Inclusive-cache fill over a clean victim: one row copy through the
    /// migration row (Fig. 3d) — 1.5 tRC.
    Copy,
    /// Inclusive-cache fill over a dirty victim: write the victim back to
    /// its home row, then copy the promotee in — two serial migrations,
    /// 3 tRC.
    CopyWithWriteback,
}

/// A command issued by the memory controller to one channel.
///
/// Rows in commands are **physical** rows — translation from logical rows
/// happens in the management layer before scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramCommand {
    /// Open `phys_row` in `bank` (charge sharing + sensing).
    Activate {
        /// Target bank.
        bank: BankCoord,
        /// Physical row to open.
        phys_row: u32,
    },
    /// Read one burst from column `col` of the open row `phys_row`.
    Read {
        /// Target bank.
        bank: BankCoord,
        /// Physical row the access targets (identifies the subarray whose
        /// local row buffer serves it under SALP).
        phys_row: u32,
        /// Column (cache line) index.
        col: u32,
    },
    /// Write one burst to column `col` of the open row `phys_row`.
    Write {
        /// Target bank.
        bank: BankCoord,
        /// Physical row the access targets.
        phys_row: u32,
        /// Column (cache line) index.
        col: u32,
    },
    /// Close the row buffer serving `phys_row`'s subarray (the bank's only
    /// buffer in conventional mode) and precharge its bitlines.
    Precharge {
        /// Target bank.
        bank: BankCoord,
        /// A row identifying the subarray to precharge.
        phys_row: u32,
    },
    /// Move row contents through the migration cells (Fig. 3d / Fig. 6).
    /// Requires the bank to be precharged; occupies the bank for the
    /// migration latency but never touches the data bus.
    RowSwap {
        /// Target bank.
        bank: BankCoord,
        /// One row of the pair (conventionally the promotee's current row).
        phys_a: u32,
        /// The other row (conventionally the victim's current row).
        phys_b: u32,
        /// Exchange or one-way copy (selects the duration).
        kind: MigrationKind,
    },
    /// Refresh one rank. All banks of the rank must be precharged.
    Refresh {
        /// Channel-local rank index.
        rank: u8,
    },
}

impl DramCommand {
    /// The bank a bank-scoped command addresses, `None` for rank-scoped
    /// commands (refresh).
    pub fn bank(&self) -> Option<BankCoord> {
        match *self {
            DramCommand::Activate { bank, .. }
            | DramCommand::Read { bank, .. }
            | DramCommand::Write { bank, .. }
            | DramCommand::Precharge { bank, .. }
            | DramCommand::RowSwap { bank, .. } => Some(bank),
            DramCommand::Refresh { .. } => None,
        }
    }

    /// Whether this command transfers data on the channel bus.
    pub fn uses_data_bus(&self) -> bool {
        matches!(self, DramCommand::Read { .. } | DramCommand::Write { .. })
    }

    /// Whether this is a column (CAS) command.
    pub fn is_column(&self) -> bool {
        self.uses_data_bus()
    }
}

impl fmt::Display for DramCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DramCommand::Activate { bank, phys_row } => write!(f, "ACT {bank} row{phys_row}"),
            DramCommand::Read {
                bank,
                phys_row,
                col,
            } => {
                write!(f, "RD {bank} row{phys_row} col{col}")
            }
            DramCommand::Write {
                bank,
                phys_row,
                col,
            } => {
                write!(f, "WR {bank} row{phys_row} col{col}")
            }
            DramCommand::Precharge { bank, phys_row } => write!(f, "PRE {bank} row{phys_row}"),
            DramCommand::RowSwap {
                bank,
                phys_a,
                phys_b,
                kind,
            } => match kind {
                MigrationKind::Swap => write!(f, "SWAP {bank} row{phys_a}<->row{phys_b}"),
                MigrationKind::Copy => write!(f, "COPY {bank} row{phys_a}->row{phys_b}"),
                MigrationKind::CopyWithWriteback => {
                    write!(f, "COPY+WB {bank} row{phys_a}->row{phys_b}")
                }
            },
            DramCommand::Refresh { rank } => write!(f, "REF rank{rank}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BankCoord {
        BankCoord::new(0, 1, 3)
    }

    #[test]
    fn bank_extraction() {
        assert_eq!(
            DramCommand::Activate {
                bank: bank(),
                phys_row: 7
            }
            .bank(),
            Some(bank())
        );
        assert_eq!(DramCommand::Refresh { rank: 0 }.bank(), None);
        assert_eq!(
            DramCommand::RowSwap {
                bank: bank(),
                phys_a: 1,
                phys_b: 2,
                kind: MigrationKind::Swap
            }
            .bank(),
            Some(bank())
        );
    }

    #[test]
    fn data_bus_usage() {
        assert!(DramCommand::Read {
            bank: bank(),
            phys_row: 0,
            col: 0
        }
        .uses_data_bus());
        assert!(DramCommand::Write {
            bank: bank(),
            phys_row: 0,
            col: 0
        }
        .uses_data_bus());
        assert!(!DramCommand::Activate {
            bank: bank(),
            phys_row: 0
        }
        .uses_data_bus());
        assert!(!DramCommand::RowSwap {
            bank: bank(),
            phys_a: 0,
            phys_b: 1,
            kind: MigrationKind::Swap
        }
        .uses_data_bus());
        assert!(!DramCommand::Precharge {
            bank: bank(),
            phys_row: 0
        }
        .uses_data_bus());
    }

    #[test]
    fn display_is_informative() {
        let s = format!(
            "{}",
            DramCommand::RowSwap {
                bank: bank(),
                phys_a: 5,
                phys_b: 9,
                kind: MigrationKind::Copy
            }
        );
        assert!(s.contains("COPY") && s.contains("row5") && s.contains("row9"));
    }
}
