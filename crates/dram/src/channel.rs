//! One DRAM channel: banks, rank trackers and the shared data bus, with a
//! legality/earliest-time query interface for the memory controller.
//!
//! The controller's scheduler asks [`ChannelDevice::earliest_issue`] when a
//! candidate command could issue, picks one, and commits it with
//! [`ChannelDevice::issue`]. All timing constraints of §2.3 (and the swap of
//! §4.2) are enforced here.

use crate::bank::{Bank, BankStats};
use crate::command::DramCommand;
use crate::geometry::{BankCoord, BankLayout, SubarrayKind};
use crate::rank::{BusDir, DataBus, RankTracker};
use crate::tick::Tick;
use crate::timing::TimingSet;

/// Result of committing a command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For column commands, the tick the data burst completes on the bus.
    pub data_end: Option<Tick>,
    /// Tick at which the command's effect completes (row open, precharge
    /// done, swap finished, refresh finished).
    pub done: Tick,
}

/// One memory channel of the simulated device.
#[derive(Debug, Clone)]
pub struct ChannelDevice {
    channel_id: u8,
    layout: BankLayout,
    timing: TimingSet,
    banks_per_rank: u8,
    banks: Vec<Bank>,
    ranks: Vec<RankTracker>,
    bus: DataBus,
    refresh_enabled: bool,
    salp: bool,
}

impl ChannelDevice {
    /// Builds a channel with `ranks` ranks of `banks_per_rank` banks, all
    /// sharing the same bank `layout` and `timing`.
    pub fn new(
        channel_id: u8,
        ranks: u8,
        banks_per_rank: u8,
        layout: BankLayout,
        timing: TimingSet,
        refresh_enabled: bool,
    ) -> Self {
        Self::with_salp(
            channel_id,
            ranks,
            banks_per_rank,
            layout,
            timing,
            refresh_enabled,
            false,
        )
    }

    /// Like [`ChannelDevice::new`] with subarray-level parallelism (one
    /// local row buffer per subarray — the SALP/MASA composition §8 calls
    /// compatible with hybrid-bitline designs).
    #[allow(clippy::too_many_arguments)]
    pub fn with_salp(
        channel_id: u8,
        ranks: u8,
        banks_per_rank: u8,
        layout: BankLayout,
        timing: TimingSet,
        refresh_enabled: bool,
        salp: bool,
    ) -> Self {
        let cadences = timing.refresh_cadences();
        let buffers = if salp { layout.subarrays().len() } else { 1 };
        ChannelDevice {
            channel_id,
            layout,
            timing,
            banks_per_rank,
            banks: (0..ranks as usize * banks_per_rank as usize)
                .map(|_| Bank::with_subarrays(buffers))
                .collect(),
            ranks: (0..ranks)
                .map(|_| RankTracker::with_cadences(&cadences))
                .collect(),
            bus: DataBus::new(),
            refresh_enabled,
            salp,
        }
    }

    fn buffer_of(&self, phys_row: u32) -> usize {
        if self.salp {
            self.layout.classify(phys_row).0
        } else {
            0
        }
    }

    fn bank_idx(&self, bank: BankCoord) -> usize {
        debug_assert_eq!(
            bank.channel, self.channel_id,
            "command routed to wrong channel"
        );
        bank.rank as usize * self.banks_per_rank as usize + bank.bank as usize
    }

    /// The bank layout shared by all banks of this channel.
    pub fn layout(&self) -> &BankLayout {
        &self.layout
    }

    /// The timing set in force.
    pub fn timing(&self) -> &TimingSet {
        &self.timing
    }

    /// Whether `phys_row` is currently open in its serving row buffer.
    pub fn is_row_open(&self, bank: BankCoord, phys_row: u32) -> bool {
        let idx = self.buffer_of(phys_row);
        self.banks[self.bank_idx(bank)].open_row(idx) == Some(phys_row)
    }

    /// The row currently occupying the buffer that would serve `phys_row`
    /// (the bank's only buffer in conventional mode).
    pub fn open_row_in_buffer_of(&self, bank: BankCoord, phys_row: u32) -> Option<u32> {
        let idx = self.buffer_of(phys_row);
        self.banks[self.bank_idx(bank)].open_row(idx)
    }

    /// All rows currently open in `bank`.
    pub fn open_rows(&self, bank: BankCoord) -> Vec<u32> {
        self.banks[self.bank_idx(bank)].open_rows()
    }

    /// The physical row currently open in `bank`'s conventional buffer
    /// (buffer 0), if any.
    pub fn open_row(&self, bank: BankCoord) -> Option<u32> {
        self.banks[self.bank_idx(bank)].open_row(0)
    }

    /// Statistics of one bank.
    pub fn bank_stats(&self, bank: BankCoord) -> BankStats {
        self.banks[self.bank_idx(bank)].stats()
    }

    /// Aggregated statistics over all banks of the channel.
    pub fn channel_stats(&self) -> BankStats {
        let mut total = BankStats::default();
        for b in &self.banks {
            let s = b.stats();
            total.activates += s.activates;
            total.reads += s.reads;
            total.writes += s.writes;
            total.precharges += s.precharges;
            total.swaps += s.swaps;
        }
        total
    }

    /// Subarray kind of a physical row under this channel's layout.
    pub fn row_kind(&self, phys_row: u32) -> SubarrayKind {
        self.layout.row_kind(phys_row)
    }

    /// Coordinates of every bank of `rank` that currently has a row open.
    pub fn open_banks_of_rank(&self, rank: u8) -> Vec<BankCoord> {
        (0..self.banks_per_rank)
            .map(|b| BankCoord::new(self.channel_id, rank, b))
            .filter(|&c| !self.banks[self.bank_idx(c)].all_precharged())
            .collect()
    }

    /// Number of ranks on this channel.
    pub fn ranks(&self) -> u8 {
        self.ranks.len() as u8
    }

    /// Earliest tick `cmd` may legally issue, or `None` if the bank state
    /// does not admit it at all (e.g. READ with no open row) so another
    /// command must come first.
    pub fn earliest_issue(&self, cmd: &DramCommand, now: Tick) -> Option<Tick> {
        let rp = self.timing.rank_params();
        let t = match *cmd {
            DramCommand::Activate { bank, phys_row } => {
                let idx = self.buffer_of(phys_row);
                let b = &self.banks[self.bank_idx(bank)];
                let rank = &self.ranks[bank.rank as usize];
                b.earliest_activate(idx)?
                    .max(rank.earliest_activate(rp.trrd, rp.tfaw))
            }
            DramCommand::Read { bank, phys_row, .. } => {
                if !self.is_row_open(bank, phys_row) {
                    return None;
                }
                let idx = self.buffer_of(phys_row);
                let b = &self.banks[self.bank_idx(bank)];
                let cmd_ready = b.earliest_read(idx)?;
                let p = self.open_row_params(bank, phys_row)?;
                let bus_start = self.bus.earliest_start(BusDir::Read, rp.twtr, rp.tck * 2);
                cmd_ready.max(bus_start.saturating_sub(p.cl))
            }
            DramCommand::Write { bank, phys_row, .. } => {
                if !self.is_row_open(bank, phys_row) {
                    return None;
                }
                let idx = self.buffer_of(phys_row);
                let b = &self.banks[self.bank_idx(bank)];
                let cmd_ready = b.earliest_write(idx)?;
                let p = self.open_row_params(bank, phys_row)?;
                let bus_start = self.bus.earliest_start(BusDir::Write, rp.twtr, rp.tck * 2);
                cmd_ready.max(bus_start.saturating_sub(p.cwl))
            }
            DramCommand::Precharge { bank, phys_row } => {
                let idx = self.buffer_of(phys_row);
                self.banks[self.bank_idx(bank)].earliest_precharge(idx)?
            }
            DramCommand::RowSwap {
                bank,
                phys_a,
                phys_b,
                ..
            } => {
                if !self.timing.supports_migration() {
                    return None;
                }
                debug_assert_ne!(phys_a, phys_b, "swap of a row with itself");
                let b = &self.banks[self.bank_idx(bank)];
                let rank = &self.ranks[bank.rank as usize];
                b.earliest_swap()?
                    .max(rank.earliest_activate(rp.trrd, rp.tfaw))
            }
            DramCommand::Refresh { rank } => {
                let tracker = &self.ranks[rank as usize];
                let mut t = tracker.busy_until();
                for b in 0..self.banks_per_rank {
                    let coord = BankCoord::new(self.channel_id, rank, b);
                    // Every bank must be fully precharged before REF.
                    t = t.max(self.banks[self.bank_idx(coord)].earliest_all_precharged()?);
                }
                t
            }
        };
        Some(t.max(now))
    }

    /// Commits `cmd` at tick `at` (which must be ≥ the value returned by
    /// [`ChannelDevice::earliest_issue`]).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the command is illegal at `at`.
    pub fn issue(&mut self, cmd: &DramCommand, at: Tick) -> IssueOutcome {
        let timing = self.timing;
        let rp = *timing.rank_params();
        match *cmd {
            DramCommand::Activate { bank, phys_row } => {
                let kind = self.layout.row_kind(phys_row);
                let buf = self.buffer_of(phys_row);
                let idx = self.bank_idx(bank);
                self.banks[idx].activate(buf, phys_row, kind, &timing, at);
                self.ranks[bank.rank as usize].record_activate(at);
                IssueOutcome {
                    data_end: None,
                    done: at + timing.params_for(kind).trcd,
                }
            }
            DramCommand::Read { bank, phys_row, .. } => {
                let p = *self
                    .open_row_params(bank, phys_row)
                    .expect("READ on closed row");
                let buf = self.buffer_of(phys_row);
                let idx = self.bank_idx(bank);
                let data_end = self.banks[idx].read(buf, &timing, at);
                self.bus.occupy(BusDir::Read, at + p.cl, data_end);
                IssueOutcome {
                    data_end: Some(data_end),
                    done: data_end,
                }
            }
            DramCommand::Write { bank, phys_row, .. } => {
                let p = *self
                    .open_row_params(bank, phys_row)
                    .expect("WRITE on closed row");
                let buf = self.buffer_of(phys_row);
                let idx = self.bank_idx(bank);
                let data_end = self.banks[idx].write(buf, &timing, at);
                self.bus.occupy(BusDir::Write, at + p.cwl, data_end);
                IssueOutcome {
                    data_end: Some(data_end),
                    done: data_end,
                }
            }
            DramCommand::Precharge { bank, phys_row } => {
                let buf = self.buffer_of(phys_row);
                let idx = self.bank_idx(bank);
                self.banks[idx].precharge(buf, &timing, at);
                let done = at + rp.trp;
                IssueOutcome {
                    data_end: None,
                    done,
                }
            }
            DramCommand::RowSwap { bank, kind, .. } => {
                assert!(
                    timing.supports_migration(),
                    "device has no migration support"
                );
                let duration = match kind {
                    crate::command::MigrationKind::Swap => timing.swap,
                    crate::command::MigrationKind::Copy => timing.single_migration,
                    crate::command::MigrationKind::CopyWithWriteback => timing.single_migration * 2,
                };
                let idx = self.bank_idx(bank);
                let done = self.banks[idx].swap(duration, at);
                self.ranks[bank.rank as usize].record_activate(at);
                IssueOutcome {
                    data_end: None,
                    done,
                }
            }
            DramCommand::Refresh { rank } => {
                let done = self.ranks[rank as usize].refresh(at);
                for b in 0..self.banks_per_rank {
                    let coord = BankCoord::new(self.channel_id, rank, b);
                    let idx = self.bank_idx(coord);
                    self.banks[idx].block_until(done);
                }
                IssueOutcome {
                    data_end: None,
                    done,
                }
            }
        }
    }

    /// Whether a refresh is pending on any rank at `now` (always `false`
    /// when refresh is disabled).
    pub fn refresh_due(&self, now: Tick) -> Option<u8> {
        if !self.refresh_enabled {
            return None;
        }
        self.ranks
            .iter()
            .enumerate()
            .find(|(_, r)| r.refresh_due(now))
            .map(|(i, _)| i as u8)
    }

    /// Earliest tick at which any rank will require a refresh.
    pub fn next_refresh_due(&self) -> Option<Tick> {
        if !self.refresh_enabled {
            return None;
        }
        self.ranks.iter().map(|r| r.next_refresh_due()).min()
    }

    fn open_row_params(
        &self,
        bank: BankCoord,
        phys_row: u32,
    ) -> Option<&crate::timing::TimingParams> {
        let idx = self.buffer_of(phys_row);
        let row = self.banks[self.bank_idx(bank)].open_row(idx)?;
        Some(self.timing.params_for(self.layout.row_kind(row)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Arrangement, FastRatio};

    fn device(timing: TimingSet) -> ChannelDevice {
        let layout =
            BankLayout::build(4096, FastRatio::new(1, 8), Arrangement::default(), 128, 512);
        ChannelDevice::new(0, 2, 8, layout, timing, false)
    }

    fn bank0() -> BankCoord {
        BankCoord::new(0, 0, 0)
    }

    #[test]
    fn full_access_cycle_timing() {
        let mut d = device(TimingSet::homogeneous_slow());
        let slow_row = d.layout().slow_to_phys(0);
        let act = DramCommand::Activate {
            bank: bank0(),
            phys_row: slow_row,
        };
        let t0 = d.earliest_issue(&act, Tick::ZERO).unwrap();
        assert_eq!(t0, Tick::ZERO);
        d.issue(&act, t0);
        let rd = DramCommand::Read {
            bank: bank0(),
            phys_row: slow_row,
            col: 3,
        };
        let t1 = d.earliest_issue(&rd, Tick::ZERO).unwrap();
        assert_eq!(t1, Tick::from_ns(13.75));
        let out = d.issue(&rd, t1);
        assert_eq!(out.data_end, Some(Tick::from_ns(13.75 + 13.75 + 5.0)));
        assert_eq!(d.open_row(bank0()), Some(slow_row));
    }

    #[test]
    fn read_with_closed_bank_is_inadmissible() {
        let d = device(TimingSet::homogeneous_slow());
        assert_eq!(
            d.earliest_issue(
                &DramCommand::Read {
                    bank: bank0(),
                    phys_row: 0,
                    col: 0
                },
                Tick::ZERO
            ),
            None
        );
    }

    #[test]
    fn fast_row_read_is_faster_end_to_end() {
        let mut d = device(TimingSet::asymmetric());
        let run = |d: &mut ChannelDevice, row: u32| {
            let act = DramCommand::Activate {
                bank: bank0(),
                phys_row: row,
            };
            let t = d.earliest_issue(&act, Tick::ZERO).unwrap();
            d.issue(&act, t);
            let rd = DramCommand::Read {
                bank: bank0(),
                phys_row: row,
                col: 0,
            };
            let t = d.earliest_issue(&rd, Tick::ZERO).unwrap();
            d.issue(&rd, t).data_end.unwrap()
        };
        let fast_row = d.layout().fast_to_phys(0);
        let fast_done = run(&mut d, fast_row);
        let mut d2 = device(TimingSet::asymmetric());
        let slow_row = d2.layout().slow_to_phys(0);
        let slow_done = run(&mut d2, slow_row);
        assert!(
            fast_done < slow_done,
            "fast {fast_done} !< slow {slow_done}"
        );
        assert_eq!(
            slow_done - fast_done,
            Tick::from_ns(5.0),
            "tRCD delta 13.75-8.75"
        );
    }

    #[test]
    fn bus_serialises_reads_across_banks() {
        let mut d = device(TimingSet::homogeneous_slow());
        let b0 = BankCoord::new(0, 0, 0);
        let b1 = BankCoord::new(0, 0, 1);
        let row = d.layout().slow_to_phys(0);
        for b in [b0, b1] {
            let act = DramCommand::Activate {
                bank: b,
                phys_row: row,
            };
            let t = d.earliest_issue(&act, Tick::ZERO).unwrap();
            d.issue(&act, t);
        }
        let rd0 = DramCommand::Read {
            bank: b0,
            phys_row: row,
            col: 0,
        };
        let t = d.earliest_issue(&rd0, Tick::ZERO).unwrap();
        let out0 = d.issue(&rd0, t);
        let rd1 = DramCommand::Read {
            bank: b1,
            phys_row: row,
            col: 0,
        };
        let t1 = d.earliest_issue(&rd1, Tick::ZERO).unwrap();
        let out1 = d.issue(&rd1, t1);
        // Second burst cannot overlap the first.
        assert!(out1.data_end.unwrap() >= out0.data_end.unwrap() + Tick::from_ns(5.0));
    }

    #[test]
    fn trrd_spaces_cross_bank_activates() {
        let mut d = device(TimingSet::homogeneous_slow());
        let row = d.layout().slow_to_phys(0);
        let a0 = DramCommand::Activate {
            bank: BankCoord::new(0, 0, 0),
            phys_row: row,
        };
        d.issue(&a0, Tick::ZERO);
        let a1 = DramCommand::Activate {
            bank: BankCoord::new(0, 0, 1),
            phys_row: row,
        };
        assert_eq!(d.earliest_issue(&a1, Tick::ZERO), Some(Tick::from_ns(6.25)));
        // A different rank is unconstrained by this rank's tRRD.
        let a2 = DramCommand::Activate {
            bank: BankCoord::new(0, 1, 0),
            phys_row: row,
        };
        assert_eq!(d.earliest_issue(&a2, Tick::ZERO), Some(Tick::ZERO));
    }

    #[test]
    fn swap_requires_migration_support() {
        let d = device(TimingSet::homogeneous_slow());
        let cmd = DramCommand::RowSwap {
            bank: bank0(),
            phys_a: 0,
            phys_b: 1,
            kind: Default::default(),
        };
        assert_eq!(d.earliest_issue(&cmd, Tick::ZERO), None);

        let mut d = device(TimingSet::asymmetric());
        let fast = d.layout().fast_to_phys(0);
        let slow = d.layout().slow_to_phys(0);
        let cmd = DramCommand::RowSwap {
            bank: bank0(),
            phys_a: fast,
            phys_b: slow,
            kind: Default::default(),
        };
        let t = d.earliest_issue(&cmd, Tick::ZERO).unwrap();
        let out = d.issue(&cmd, t);
        assert_eq!(out.done, Tick::from_ns(146.25));
        // Bank blocked until the swap completes.
        let act = DramCommand::Activate {
            bank: bank0(),
            phys_row: slow,
        };
        assert_eq!(
            d.earliest_issue(&act, Tick::ZERO),
            Some(Tick::from_ns(146.25))
        );
        assert_eq!(d.channel_stats().swaps, 1);
    }

    #[test]
    fn refresh_requires_all_banks_closed_and_blocks_them() {
        let layout =
            BankLayout::build(4096, FastRatio::new(1, 8), Arrangement::default(), 128, 512);
        let mut d = ChannelDevice::new(0, 1, 2, layout, TimingSet::homogeneous_slow(), true);
        assert_eq!(d.refresh_due(Tick::ZERO), None);
        assert!(d.refresh_due(Tick::from_ns(7800.0)).is_some());
        // Open a bank: refresh becomes inadmissible.
        let row = d.layout().slow_to_phys(0);
        d.issue(
            &DramCommand::Activate {
                bank: bank0(),
                phys_row: row,
            },
            Tick::ZERO,
        );
        assert_eq!(
            d.earliest_issue(&DramCommand::Refresh { rank: 0 }, Tick::ZERO),
            None
        );
        // Close it and refresh.
        let pre = DramCommand::Precharge {
            bank: bank0(),
            phys_row: row,
        };
        let t = d.earliest_issue(&pre, Tick::ZERO).unwrap();
        d.issue(&pre, t);
        let refr = DramCommand::Refresh { rank: 0 };
        let t = d.earliest_issue(&refr, Tick::from_ns(7800.0)).unwrap();
        let out = d.issue(&refr, t);
        assert_eq!(out.done, t + Tick::from_ns(160.0));
        let act = DramCommand::Activate {
            bank: bank0(),
            phys_row: row,
        };
        assert_eq!(d.earliest_issue(&act, t), Some(out.done));
    }

    #[test]
    fn earliest_issue_respects_now() {
        let d = device(TimingSet::homogeneous_slow());
        let act = DramCommand::Activate {
            bank: bank0(),
            phys_row: 0,
        };
        assert_eq!(
            d.earliest_issue(&act, Tick::from_ns(99.0)),
            Some(Tick::from_ns(99.0))
        );
    }
}
