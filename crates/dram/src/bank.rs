//! Per-bank state machine with earliest-issue-time bookkeeping.
//!
//! A bank tracks its open row(s), the subarray kind of each, and the
//! earliest tick at which each command class may legally be issued. Rank-
//! and channel-level constraints (tRRD, tFAW, data bus, turnarounds) live
//! in [`crate::rank`].
//!
//! Two operating modes:
//! * **conventional** (default): one row buffer per bank — an ACT requires
//!   the bank precharged, the classic §2.3 machine;
//! * **SALP** (`with_subarrays`): one local row buffer per subarray (the
//!   MASA scheme of Kim et al., cited in §8 as composable with
//!   hybrid-bitline designs). Different subarrays of a bank may hold open
//!   rows simultaneously; ACTs within a bank are spaced by an
//!   inter-subarray gap, and the column path remains shared.

use crate::geometry::SubarrayKind;
use crate::tick::Tick;
use crate::timing::{TimingParams, TimingSet};

/// The open/closed state of one row buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowBufferState {
    /// All bitlines precharged; an ACT is required before column access.
    Precharged,
    /// A row is (being) opened; column commands become legal at `tRCD`.
    Open {
        /// Physical row latched in the row buffer.
        phys_row: u32,
        /// Subarray kind of the open row (selects timing parameters).
        kind: SubarrayKind,
    },
}

/// One row buffer's scheduling state.
#[derive(Debug, Clone, Copy)]
struct BufferState {
    state: RowBufferState,
    act_ready: Tick,
    rd_ready: Tick,
    wr_ready: Tick,
    pre_ready: Tick,
}

impl BufferState {
    fn new() -> Self {
        BufferState {
            state: RowBufferState::Precharged,
            act_ready: Tick::ZERO,
            rd_ready: Tick::ZERO,
            wr_ready: Tick::ZERO,
            pre_ready: Tick::ZERO,
        }
    }
}

/// Event counters for one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Number of ACT commands.
    pub activates: u64,
    /// Number of READ commands.
    pub reads: u64,
    /// Number of WRITE commands.
    pub writes: u64,
    /// Number of PRE commands.
    pub precharges: u64,
    /// Number of row swaps.
    pub swaps: u64,
}

/// One DRAM bank. See the [module docs](self) for the two operating modes.
///
/// All mutating operations take a buffer index (`0` in conventional mode),
/// assert legality in debug builds, and update the earliest-time fields.
/// Query methods are side-effect free so a scheduler can rank candidate
/// commands before committing to one.
#[derive(Debug, Clone)]
pub struct Bank {
    buffers: Vec<BufferState>,
    /// Earliest tick the *bank* may accept another ACT (inter-subarray
    /// spacing under SALP; unused extra constraint otherwise).
    bank_act_ready: Tick,
    /// Shared column path: earliest next column command.
    col_ready: Tick,
    stats: BankStats,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A conventional bank: one row buffer.
    pub fn new() -> Self {
        Self::with_subarrays(1)
    }

    /// A SALP bank with one local row buffer per subarray.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays == 0`.
    pub fn with_subarrays(subarrays: usize) -> Self {
        assert!(subarrays > 0, "a bank needs at least one row buffer");
        Bank {
            buffers: vec![BufferState::new(); subarrays],
            bank_act_ready: Tick::ZERO,
            col_ready: Tick::ZERO,
            stats: BankStats::default(),
        }
    }

    /// Number of independent row buffers.
    pub fn buffers(&self) -> usize {
        self.buffers.len()
    }

    fn buf(&self, idx: usize) -> &BufferState {
        &self.buffers[idx.min(self.buffers.len() - 1)]
    }

    fn buf_mut(&mut self, idx: usize) -> &mut BufferState {
        let idx = idx.min(self.buffers.len() - 1);
        &mut self.buffers[idx]
    }

    /// Current state of buffer `idx`.
    pub fn state(&self, idx: usize) -> RowBufferState {
        self.buf(idx).state
    }

    /// The physical row open in buffer `idx`, if any.
    pub fn open_row(&self, idx: usize) -> Option<u32> {
        match self.buf(idx).state {
            RowBufferState::Open { phys_row, .. } => Some(phys_row),
            RowBufferState::Precharged => None,
        }
    }

    /// All open rows of the bank (empty when fully precharged).
    pub fn open_rows(&self) -> Vec<u32> {
        self.buffers
            .iter()
            .filter_map(|b| match b.state {
                RowBufferState::Open { phys_row, .. } => Some(phys_row),
                RowBufferState::Precharged => None,
            })
            .collect()
    }

    /// Whether every buffer is precharged.
    pub fn all_precharged(&self) -> bool {
        self.buffers
            .iter()
            .all(|b| b.state == RowBufferState::Precharged)
    }

    /// Per-bank statistics.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// Earliest tick an ACT into buffer `idx` may issue. `None` if that
    /// buffer holds an open row (a PRE must come first).
    pub fn earliest_activate(&self, idx: usize) -> Option<Tick> {
        match self.buf(idx).state {
            RowBufferState::Precharged => Some(self.buf(idx).act_ready.max(self.bank_act_ready)),
            RowBufferState::Open { .. } => None,
        }
    }

    /// Earliest tick a READ of buffer `idx`'s open row may issue.
    pub fn earliest_read(&self, idx: usize) -> Option<Tick> {
        self.open_row(idx)
            .map(|_| self.buf(idx).rd_ready.max(self.col_ready))
    }

    /// Earliest tick a WRITE to buffer `idx`'s open row may issue.
    pub fn earliest_write(&self, idx: usize) -> Option<Tick> {
        self.open_row(idx)
            .map(|_| self.buf(idx).wr_ready.max(self.col_ready))
    }

    /// Earliest tick a PRE of buffer `idx` may issue. `None` if precharged.
    pub fn earliest_precharge(&self, idx: usize) -> Option<Tick> {
        self.open_row(idx).map(|_| self.buf(idx).pre_ready)
    }

    /// Earliest tick the whole bank is precharged and ACT-ready (for
    /// refresh and migration): `None` if any buffer is open.
    pub fn earliest_all_precharged(&self) -> Option<Tick> {
        let mut t = self.bank_act_ready;
        for b in &self.buffers {
            if b.state != RowBufferState::Precharged {
                return None;
            }
            t = t.max(b.act_ready);
        }
        Some(t)
    }

    /// Earliest tick a row swap may start: the bank must be fully
    /// precharged.
    pub fn earliest_swap(&self) -> Option<Tick> {
        self.earliest_all_precharged()
    }

    /// Applies an ACT of `phys_row` (of subarray `kind`) into buffer `idx`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the buffer is open or `at` precedes readiness.
    pub fn activate(
        &mut self,
        idx: usize,
        phys_row: u32,
        kind: SubarrayKind,
        timing: &TimingSet,
        at: Tick,
    ) {
        let inter_act = if self.buffers.len() > 1 {
            // SALP: ACTs to different subarrays spaced like same-rank ACTs.
            timing.rank_params().trrd
        } else {
            Tick::ZERO
        };
        let p = *timing.params_for(kind);
        let b = self.buf_mut(idx);
        debug_assert_eq!(b.state, RowBufferState::Precharged, "ACT on open buffer");
        debug_assert!(
            at >= b.act_ready,
            "ACT at {at} before buffer ready {}",
            b.act_ready
        );
        debug_assert!(at >= self.bank_act_ready, "ACT at {at} before bank ready");
        let b = self.buf_mut(idx);
        b.state = RowBufferState::Open { phys_row, kind };
        b.rd_ready = at + p.trcd;
        b.wr_ready = at + p.trcd;
        b.pre_ready = at + p.tras;
        b.act_ready = at + p.trc();
        self.bank_act_ready = at + inter_act.max(Tick::ZERO);
        if self.buffers.len() == 1 {
            // Conventional: the bank-level ACT window is the row cycle.
            self.bank_act_ready = at + p.trc();
        }
        self.stats.activates += 1;
    }

    /// Applies a READ on buffer `idx` at `at`, returning the tick the data
    /// burst finishes (`at + CL + tBurst`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if no row is open or `at` precedes readiness.
    pub fn read(&mut self, idx: usize, timing: &TimingSet, at: Tick) -> Tick {
        let p = *self.open_params(idx, timing);
        let b = self.buf_mut(idx);
        debug_assert!(at >= b.rd_ready, "RD at {at} before ready {}", b.rd_ready);
        b.rd_ready = b.rd_ready.max(at + p.tccd);
        b.wr_ready = b.wr_ready.max(at + p.cl + p.tburst + p.tccd);
        b.pre_ready = b.pre_ready.max(at + p.trtp);
        self.col_ready = self.col_ready.max(at + p.tccd);
        self.stats.reads += 1;
        at + p.cl + p.tburst
    }

    /// Applies a WRITE on buffer `idx` at `at`, returning the tick the
    /// write data burst finishes (`at + CWL + tBurst`).
    ///
    /// # Panics
    ///
    /// Panics (debug) if no row is open or `at` precedes readiness.
    pub fn write(&mut self, idx: usize, timing: &TimingSet, at: Tick) -> Tick {
        let p = *self.open_params(idx, timing);
        let b = self.buf_mut(idx);
        debug_assert!(at >= b.wr_ready, "WR at {at} before ready {}", b.wr_ready);
        let data_end = at + p.cwl + p.tburst;
        b.wr_ready = b.wr_ready.max(at + p.tccd);
        // A read after a write in the same buffer must wait for the
        // turnaround; precharge must respect write recovery.
        b.rd_ready = b.rd_ready.max(data_end + p.twtr);
        b.pre_ready = b.pre_ready.max(data_end + p.twr);
        self.col_ready = self.col_ready.max(at + p.tccd);
        self.stats.writes += 1;
        data_end
    }

    /// Applies a PRE on buffer `idx` at `at`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the buffer is closed or `at` precedes readiness.
    pub fn precharge(&mut self, idx: usize, timing: &TimingSet, at: Tick) {
        let p = *self.open_params(idx, timing);
        let b = self.buf_mut(idx);
        debug_assert!(
            at >= b.pre_ready,
            "PRE at {at} before ready {}",
            b.pre_ready
        );
        b.state = RowBufferState::Precharged;
        b.act_ready = b.act_ready.max(at + p.trp);
        self.stats.precharges += 1;
    }

    /// Applies a row swap starting at `at` with the given total duration,
    /// blocking the whole bank until it completes (the migration rows and
    /// half row buffers are shared structures).
    ///
    /// # Panics
    ///
    /// Panics (debug) if any buffer is open or `at` precedes readiness.
    pub fn swap(&mut self, duration: Tick, at: Tick) -> Tick {
        debug_assert!(self.all_precharged(), "SWAP on open bank");
        let done = at + duration;
        for b in &mut self.buffers {
            b.act_ready = b.act_ready.max(done);
        }
        self.bank_act_ready = self.bank_act_ready.max(done);
        self.stats.swaps += 1;
        done
    }

    /// Blocks the bank until `until` (used for refresh).
    pub fn block_until(&mut self, until: Tick) {
        debug_assert!(self.all_precharged(), "refresh on open bank");
        for b in &mut self.buffers {
            b.act_ready = b.act_ready.max(until);
        }
        self.bank_act_ready = self.bank_act_ready.max(until);
    }

    fn open_params<'a>(&self, idx: usize, timing: &'a TimingSet) -> &'a TimingParams {
        match self.buf(idx).state {
            RowBufferState::Open { kind, .. } => timing.params_for(kind),
            RowBufferState::Precharged => panic!("column/precharge command on closed buffer"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: f64) -> Tick {
        Tick::from_ns(ns)
    }

    #[test]
    fn closed_bank_accepts_only_act() {
        let b = Bank::new();
        assert_eq!(b.earliest_activate(0), Some(Tick::ZERO));
        assert_eq!(b.earliest_read(0), None);
        assert_eq!(b.earliest_write(0), None);
        assert_eq!(b.earliest_precharge(0), None);
        assert_eq!(b.open_row(0), None);
        assert!(b.all_precharged());
    }

    #[test]
    fn act_rd_pre_act_sequence_respects_trc() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::new();
        b.activate(0, 42, SubarrayKind::Slow, &set, Tick::ZERO);
        assert_eq!(b.open_row(0), Some(42));
        assert_eq!(
            b.earliest_activate(0),
            None,
            "must precharge before next ACT"
        );
        assert_eq!(b.earliest_read(0), Some(t(13.75)));
        let data_end = b.read(0, &set, t(13.75));
        assert_eq!(data_end, t(13.75 + 13.75 + 5.0));
        assert_eq!(b.earliest_precharge(0), Some(t(35.0)));
        b.precharge(0, &set, t(35.0));
        assert_eq!(b.earliest_activate(0), Some(t(48.75)));
    }

    #[test]
    fn fast_row_uses_fast_timings() {
        let set = TimingSet::asymmetric();
        let mut b = Bank::new();
        b.activate(0, 0, SubarrayKind::Fast, &set, Tick::ZERO);
        assert_eq!(b.earliest_read(0), Some(t(8.75)));
        assert_eq!(b.earliest_precharge(0), Some(t(17.5)));
        b.read(0, &set, t(8.75));
        b.precharge(0, &set, t(17.5));
        assert_eq!(b.earliest_activate(0), Some(t(25.0)), "fast tRC = 25 ns");
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::new();
        b.activate(0, 1, SubarrayKind::Slow, &set, Tick::ZERO);
        let data_end = b.write(0, &set, t(13.75));
        assert_eq!(data_end, t(13.75 + 10.0 + 5.0));
        assert_eq!(b.earliest_precharge(0), Some(data_end + t(15.0)));
        assert_eq!(b.earliest_read(0), Some(data_end + t(7.5)));
    }

    #[test]
    fn back_to_back_reads_spaced_by_tccd() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::new();
        b.activate(0, 1, SubarrayKind::Slow, &set, Tick::ZERO);
        b.read(0, &set, t(13.75));
        assert_eq!(b.earliest_read(0), Some(t(13.75 + 5.0)));
    }

    #[test]
    fn swap_blocks_bank_for_duration() {
        let set = TimingSet::asymmetric();
        let mut b = Bank::new();
        assert_eq!(b.earliest_swap(), Some(Tick::ZERO));
        let done = b.swap(set.swap, Tick::ZERO);
        assert_eq!(done, t(146.25));
        assert_eq!(b.earliest_activate(0), Some(t(146.25)));
        assert_eq!(b.stats().swaps, 1);
    }

    #[test]
    fn swap_illegal_while_open() {
        let set = TimingSet::asymmetric();
        let mut b = Bank::new();
        b.activate(0, 0, SubarrayKind::Slow, &set, Tick::ZERO);
        assert_eq!(b.earliest_swap(), None);
    }

    #[test]
    fn stats_count_commands() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::new();
        b.activate(0, 1, SubarrayKind::Slow, &set, Tick::ZERO);
        b.read(0, &set, t(13.75));
        b.read(0, &set, t(20.0));
        b.precharge(0, &set, t(40.0));
        let s = b.stats();
        assert_eq!((s.activates, s.reads, s.writes, s.precharges), (1, 2, 0, 1));
    }

    // ---- SALP mode -------------------------------------------------------

    #[test]
    fn salp_allows_two_open_rows() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::with_subarrays(4);
        b.activate(0, 10, SubarrayKind::Slow, &set, Tick::ZERO);
        // A second ACT in another subarray waits only the inter-ACT gap.
        assert_eq!(b.earliest_activate(1), Some(t(6.25)));
        b.activate(1, 600, SubarrayKind::Slow, &set, t(6.25));
        assert_eq!(b.open_rows(), vec![10, 600]);
        assert!(!b.all_precharged());
        // Both rows readable.
        assert!(b.earliest_read(0).is_some());
        assert!(b.earliest_read(1).is_some());
    }

    #[test]
    fn salp_conventional_act_gap_is_trc_without_salp() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::new();
        b.activate(0, 10, SubarrayKind::Slow, &set, Tick::ZERO);
        b.precharge(0, &set, t(35.0));
        assert_eq!(
            b.earliest_activate(0),
            Some(t(48.75)),
            "conventional bank keeps tRC"
        );
    }

    #[test]
    fn salp_column_path_is_shared() {
        let set = TimingSet::homogeneous_slow();
        let mut b = Bank::with_subarrays(2);
        b.activate(0, 10, SubarrayKind::Slow, &set, Tick::ZERO);
        b.activate(1, 600, SubarrayKind::Slow, &set, t(6.25));
        let rd0 = b.earliest_read(0).unwrap();
        b.read(0, &set, rd0);
        // The other buffer's read is pushed behind the shared column path.
        assert!(b.earliest_read(1).unwrap() >= rd0 + t(5.0));
    }

    #[test]
    fn salp_swap_requires_all_buffers_closed() {
        let set = TimingSet::asymmetric();
        let mut b = Bank::with_subarrays(2);
        b.activate(0, 10, SubarrayKind::Slow, &set, Tick::ZERO);
        assert_eq!(b.earliest_swap(), None);
        b.precharge(0, &set, t(35.0));
        let ready = b.earliest_swap().expect("all closed now");
        assert!(ready >= t(35.0));
    }
}
