//! Silicon-area overhead models for the hybrid-bitline designs (§3.1, §4.3).
//!
//! The paper evaluates designs by the extra die area they cost relative to
//! a homogeneous DRAM of the same capacity:
//!
//! * **DAS/CHARM (asymmetric subarrays)** — fast subarrays add extra sense
//!   amplifiers (row buffers) and peripheral decode per unit capacity. With
//!   the row buffer ≈ 1/6 of a subarray and a 1:2 fast:slow subarray ratio,
//!   the paper reports **6.6 %** (§4.3), and 11.3 % at ratio 1/4 (§7.6).
//! * **TL-DRAM (segmented bitlines)** — isolation transistors (~11.5 row
//!   heights per subarray) plus the half-density near segments forced by
//!   the open-bitline architecture; ~**24 %** for 128 near rows (§3.1).

/// Parameters of the asymmetric-subarray area model.
#[derive(Debug, Clone, Copy)]
pub struct AsymmetricAreaModel {
    /// Rows per fast subarray (paper: 128).
    pub fast_rows: u32,
    /// Rows per slow subarray (paper: 512).
    pub slow_rows: u32,
    /// Slow subarrays per fast subarray in the repeating pattern
    /// (paper's reduced interleaving: 2).
    pub slow_per_fast: u32,
    /// Sense-amplifier stripe height in row-equivalents (paper follows
    /// TL-DRAM's 108; 1/6 of a 512-row subarray ≈ 85 is the CHARM figure —
    /// the default splits the difference the way the paper's 6.6 % implies).
    pub sense_height: f64,
    /// Additional peripheral (decoder/column-mux) overhead per fast
    /// subarray, in row-equivalents.
    pub peripheral_rows: f64,
}

impl Default for AsymmetricAreaModel {
    fn default() -> Self {
        AsymmetricAreaModel {
            fast_rows: 128,
            slow_rows: 512,
            slow_per_fast: 2,
            sense_height: 85.0,
            peripheral_rows: 12.0,
        }
    }
}

impl AsymmetricAreaModel {
    /// Fractional area overhead versus a homogeneous device of equal
    /// capacity.
    pub fn overhead(&self) -> f64 {
        let pattern_rows = (self.fast_rows + self.slow_per_fast * self.slow_rows) as f64;
        // Homogeneous: the same capacity built from slow subarrays only.
        let homogeneous_subarrays = pattern_rows / self.slow_rows as f64;
        let homogeneous_area = homogeneous_subarrays * (self.slow_rows as f64 + self.sense_height);
        // Asymmetric: one fast subarray (its own row buffer + peripherals)
        // plus the slow subarrays.
        let asymmetric_area = (self.fast_rows as f64 + self.sense_height + self.peripheral_rows)
            + self.slow_per_fast as f64 * (self.slow_rows as f64 + self.sense_height);
        asymmetric_area / homogeneous_area - 1.0
    }

    /// The model at a given fast:slow subarray pattern (for ratio sweeps:
    /// §7.6 quotes 6.6 % at capacity ratio 1/8 and 11.3 % at 1/4).
    pub fn with_slow_per_fast(mut self, slow_per_fast: u32) -> Self {
        self.slow_per_fast = slow_per_fast;
        self
    }
}

/// Parameters of the TL-DRAM segmented-bitline area model (§3.1).
#[derive(Debug, Clone, Copy)]
pub struct TlDramAreaModel {
    /// Rows in the near segment (paper discusses 128).
    pub near_rows: u32,
    /// Rows per subarray.
    pub subarray_rows: u32,
    /// Isolation-transistor stripe height in row-equivalents (paper: 11.5).
    pub isolation_rows: f64,
    /// Sense-amplifier stripe height in row-equivalents (paper: 108).
    pub sense_height: f64,
}

impl Default for TlDramAreaModel {
    fn default() -> Self {
        TlDramAreaModel {
            near_rows: 128,
            subarray_rows: 512,
            isolation_rows: 11.5,
            sense_height: 108.0,
        }
    }
}

impl TlDramAreaModel {
    /// Fractional area overhead versus a homogeneous device.
    ///
    /// The open-bitline architecture forces near segments onto both ends
    /// of the subarray, leaving half of each near region unusable (§3.1:
    /// "the cell density of the fast-segment is only one half of a normal
    /// cell array"), plus the isolation stripe itself.
    pub fn overhead(&self) -> f64 {
        let base = self.subarray_rows as f64 + self.sense_height;
        let extra = self.near_rows as f64 /* empty half of the near region */
            + self.isolation_rows;
        extra / base
    }
}

/// Parameters of the CLR-DRAM morphing-driver area model (ISCA 2020 §6).
///
/// CLR-DRAM re-wires the existing sense amplifiers and wordline drivers with
/// a handful of extra isolation transistors per local row; the paper puts
/// the total at **0.045 % die area** — orders of magnitude below the
/// subarray-granularity designs.
#[derive(Debug, Clone, Copy)]
pub struct ClrDramAreaModel {
    /// Extra isolation/coupling transistors per subarray, in row-equivalent
    /// heights (the paper's 0.045 % of die area ≈ a quarter row per
    /// 512-row subarray).
    pub driver_rows: f64,
    /// Rows per subarray.
    pub subarray_rows: u32,
    /// Sense-amplifier stripe height in row-equivalents.
    pub sense_height: f64,
}

impl Default for ClrDramAreaModel {
    fn default() -> Self {
        ClrDramAreaModel {
            driver_rows: 0.25,
            subarray_rows: 512,
            sense_height: 85.0,
        }
    }
}

impl ClrDramAreaModel {
    /// Fractional area overhead versus a homogeneous device.
    pub fn overhead(&self) -> f64 {
        self.driver_rows / (self.subarray_rows as f64 + self.sense_height)
    }
}

/// Parameters of the LISA inter-subarray link area model (HPCA 2016 §4).
///
/// LISA adds isolation transistors linking adjacent subarrays' bitlines;
/// the paper reports **0.8 % die area**.
#[derive(Debug, Clone, Copy)]
pub struct LisaAreaModel {
    /// Link-transistor stripe height per subarray boundary, in
    /// row-equivalents.
    pub link_rows: f64,
    /// Rows per subarray.
    pub subarray_rows: u32,
    /// Sense-amplifier stripe height in row-equivalents.
    pub sense_height: f64,
}

impl Default for LisaAreaModel {
    fn default() -> Self {
        LisaAreaModel {
            link_rows: 4.8,
            subarray_rows: 512,
            sense_height: 85.0,
        }
    }
}

impl LisaAreaModel {
    /// Fractional area overhead versus an unlinked device.
    pub fn overhead(&self) -> f64 {
        self.link_rows / (self.subarray_rows as f64 + self.sense_height)
    }
}

/// Parameters of the SALP-MASA area model (Kim et al., ISCA 2012 §5).
///
/// SALP's subarray-select latches and the designated-bit wiring cost
/// **~0.15 % die area** in the MASA variant.
#[derive(Debug, Clone, Copy)]
pub struct SalpAreaModel {
    /// Per-subarray latch/wiring overhead in row-equivalents.
    pub latch_rows: f64,
    /// Rows per subarray.
    pub subarray_rows: u32,
    /// Sense-amplifier stripe height in row-equivalents.
    pub sense_height: f64,
}

impl Default for SalpAreaModel {
    fn default() -> Self {
        SalpAreaModel {
            latch_rows: 0.9,
            subarray_rows: 512,
            sense_height: 85.0,
        }
    }
}

impl SalpAreaModel {
    /// Fractional area overhead versus a single-subarray-at-a-time device.
    pub fn overhead(&self) -> f64 {
        self.latch_rows / (self.subarray_rows as f64 + self.sense_height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_overhead_matches_paper_6_6_percent() {
        let o = AsymmetricAreaModel::default().overhead();
        assert!(
            (0.05..0.08).contains(&o),
            "DAS overhead should be ≈6.6%: got {:.1}%",
            o * 100.0
        );
    }

    #[test]
    fn das_overhead_grows_with_fast_share() {
        // §7.6: 6.6% at ratio 1/8 (1:2 pattern) vs 11.3% at 1/4.
        let eighth = AsymmetricAreaModel::default().overhead();
        let quarter = AsymmetricAreaModel::default()
            .with_slow_per_fast(1)
            .overhead();
        assert!(quarter > eighth * 1.5, "{quarter} vs {eighth}");
        assert!(
            (0.09..0.14).contains(&quarter),
            "1/4-ratio overhead should be ≈11.3%: got {:.1}%",
            quarter * 100.0
        );
    }

    #[test]
    fn tl_dram_overhead_matches_paper_24_percent() {
        let o = TlDramAreaModel::default().overhead();
        assert!(
            (0.20..0.26).contains(&o),
            "TL-DRAM overhead should be ≈24%: got {:.1}%",
            o * 100.0
        );
    }

    #[test]
    fn tl_dram_is_far_more_expensive_than_das() {
        assert!(
            TlDramAreaModel::default().overhead() > 3.0 * AsymmetricAreaModel::default().overhead()
        );
    }

    #[test]
    fn backend_overheads_match_papers_md_table() {
        // Quoted in PAPERS.md: CLR-DRAM ≈0.045 %, LISA ≈0.8 %, SALP ≈0.15 %.
        let table: [(&str, f64, f64, f64); 3] = [
            (
                "clr",
                ClrDramAreaModel::default().overhead(),
                0.0003,
                0.0006,
            ),
            ("lisa", LisaAreaModel::default().overhead(), 0.007, 0.009),
            ("salp", SalpAreaModel::default().overhead(), 0.0012, 0.0018),
        ];
        for (name, o, lo, hi) in table {
            assert!(
                (lo..hi).contains(&o),
                "{name} overhead {:.3}% outside [{:.3}%, {:.3}%]",
                o * 100.0,
                lo * 100.0,
                hi * 100.0
            );
        }
    }

    #[test]
    fn backend_overhead_ordering_is_tl_das_lisa_salp_clr() {
        let tl = TlDramAreaModel::default().overhead();
        let das = AsymmetricAreaModel::default().overhead();
        let lisa = LisaAreaModel::default().overhead();
        let salp = SalpAreaModel::default().overhead();
        let clr = ClrDramAreaModel::default().overhead();
        assert!(tl > das && das > lisa && lisa > salp && salp > clr);
        assert!(clr > 0.0);
    }
}
