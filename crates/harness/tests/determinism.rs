//! The harness's three load-bearing guarantees, end to end:
//!
//! 1. an N-thread run journals and renders **byte-identical** output to a
//!    serial run,
//! 2. a journal truncated mid-write (the crash case) resumes and converges
//!    to the byte-identical final journal, and
//! 3. the `harness` binary's emit → execute → validate → resume loop works
//!    from the command line.

use std::fs;
use std::path::PathBuf;

use das_harness::catalog::{by_id, BuildParams};
use das_harness::cli::{execute_jobs, ExecOptions};
use das_harness::journal::{self, Journal};
use das_harness::manifest::{ExperimentPlan, JobSpec, Manifest};
use das_harness::render::RenderCtx;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("das-harness-it").join(name);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fig. 8a over one benchmark: 5 jobs (Std baseline + four thresholds).
/// Deliberately small and fast; the SAS/CHARM profile-memo path is covered
/// by the unit tests and the CI fault-sweep smoke run.
fn small_manifest() -> Manifest {
    let mut p = BuildParams::new(100_000, 64);
    p.only = vec!["libquantum".to_string()];
    let jobs = (by_id("fig8a").unwrap().build)(&p);
    assert_eq!(jobs.len(), 5);
    Manifest {
        insts: 100_000,
        scale: 64,
        experiments: vec![ExperimentPlan {
            id: "fig8a".to_string(),
            jobs,
        }],
    }
}

fn run_to_journal(m: &Manifest, dir: &PathBuf, threads: usize) -> (Vec<u8>, String) {
    let flat: Vec<JobSpec> = m
        .experiments
        .iter()
        .flat_map(|e| e.jobs.iter().cloned())
        .collect();
    let path = dir.join("journal.jsonl");
    let _ = fs::remove_file(&path);
    let mut jr = Journal::create(&path, &m.fingerprint(), flat.len()).unwrap();
    let opts = ExecOptions {
        threads,
        out_dir: dir,
        progress: false,
        trace_store: None,
    };
    let reports = execute_jobs(&flat, &opts, Some(&mut jr)).unwrap();
    drop(jr);
    let ctx = RenderCtx {
        insts: m.insts,
        scale: m.scale,
        jobs: &m.experiments[0].jobs,
        reports: &reports,
        report_path: String::new(),
        trace_path: String::new(),
    };
    let text = (by_id(&m.experiments[0].id).unwrap().render)(&ctx);
    (fs::read(&path).unwrap(), text)
}

#[test]
fn parallel_run_is_bit_identical_to_serial() {
    let m = small_manifest();
    let (serial_journal, serial_text) = run_to_journal(&m, &tmp_dir("serial"), 1);
    let (parallel_journal, parallel_text) = run_to_journal(&m, &tmp_dir("parallel"), 8);
    assert_eq!(
        serial_journal, parallel_journal,
        "journal bytes must not depend on the thread count"
    );
    assert_eq!(serial_text, parallel_text);
    assert!(serial_text.starts_with("# Figure 8a"));
}

#[test]
fn truncated_journal_resumes_and_converges() {
    let m = small_manifest();
    let dir = tmp_dir("resume");
    let (full, _) = run_to_journal(&m, &dir, 2);
    let path = dir.join("journal.jsonl");

    // Crash simulation: keep the header + two complete runs, then a torn
    // half-line from a run that was being appended when the power died.
    let text = String::from_utf8(full.clone()).unwrap();
    let keep: Vec<&str> = text.lines().take(3).collect();
    let truncated = format!(
        "{}\n{{\"job\":\"fig8a/libquantum/t4\",\"repo",
        keep.join("\n")
    );
    fs::write(&path, truncated).unwrap();

    let flat: Vec<JobSpec> = m
        .experiments
        .iter()
        .flat_map(|e| e.jobs.iter().cloned())
        .collect();
    let ids: Vec<&str> = flat.iter().map(|j| j.id.as_str()).collect();
    let mut jr = Journal::resume(&path, &m.fingerprint(), &ids).unwrap();
    assert_eq!(jr.done(), 2, "torn tail dropped, two complete runs kept");
    let opts = ExecOptions {
        threads: 2,
        out_dir: &dir,
        progress: false,
        trace_store: None,
    };
    let reports = execute_jobs(&flat, &opts, Some(&mut jr)).unwrap();
    drop(jr);
    assert_eq!(reports.len(), flat.len());
    assert_eq!(
        fs::read(&path).unwrap(),
        full,
        "resumed journal converges to the uninterrupted bytes"
    );
    let doc = journal::load(&path).unwrap();
    assert_eq!(doc.runs.len() as u64, doc.jobs);
}

#[test]
fn cross_arch_manifest_round_trips_and_journal_validates() {
    let exe = env!("CARGO_BIN_EXE_harness");
    let dir = tmp_dir("cross-arch");
    let manifest_path = dir.join("cross.json");
    let out_dir = dir.join("out");
    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn harness");
        assert!(
            out.status.success(),
            "harness {args:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    // The `cross_arch_*` glob emits the whole six-experiment family; the
    // document round-trips through the current schema.
    run(&[
        "--exp",
        "cross_arch_*",
        "--insts",
        "60000",
        "--only",
        "mcf",
        "--emit-manifest",
        manifest_path.to_str().unwrap(),
    ]);
    let text = fs::read_to_string(&manifest_path).unwrap();
    assert!(
        text.contains(&format!(
            "\"das_manifest\":{}",
            das_harness::manifest::MANIFEST_VERSION
        )),
        "cross-arch manifests carry the current schema version"
    );
    let m = Manifest::parse(&text).unwrap();
    assert_eq!(m.experiments.len(), 6);
    assert!(m
        .experiments
        .iter()
        .all(|e| e.id.starts_with("cross_arch_")));
    for key in ["clr", "lisa", "salp"] {
        assert!(
            m.jobs().iter().any(|j| j.design == key),
            "family covers design {key}"
        );
    }
    // `--emit-manifest` writes a trailing newline around the rendered doc.
    assert_eq!(
        format!("{}\n", m.render()),
        text,
        "round trip is byte-stable"
    );

    // Execute the smallest family member and structurally validate its
    // journal through the same `--validate-journal` path CI uses.
    run(&[
        "--exp",
        "cross_arch_salp",
        "--insts",
        "60000",
        "--only",
        "mcf",
        "--threads",
        "2",
        "--json-dir",
        out_dir.to_str().unwrap(),
    ]);
    let txt = fs::read_to_string(out_dir.join("cross_arch_salp.txt")).unwrap();
    assert!(txt.starts_with("# Cross-architecture: SALP composition"));
    let journal_path = out_dir.join("journal.jsonl");
    let verdict = run(&["--validate-journal", journal_path.to_str().unwrap()]);
    assert!(verdict.contains("valid (6/6 runs"), "{verdict}");
}

#[test]
fn harness_binary_emit_execute_validate_resume() {
    let exe = env!("CARGO_BIN_EXE_harness");
    let dir = tmp_dir("cli");
    let manifest_path = dir.join("m.json");
    let out_dir = dir.join("out");
    let run = |args: &[&str]| {
        let out = std::process::Command::new(exe)
            .args(args)
            .output()
            .expect("spawn harness");
        assert!(
            out.status.success(),
            "harness {args:?} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8(out.stdout).unwrap()
    };

    run(&[
        "--exp",
        "fig8c",
        "--insts",
        "100000",
        "--only",
        "libquantum",
        "--emit-manifest",
        manifest_path.to_str().unwrap(),
    ]);
    let m = Manifest::parse(&fs::read_to_string(&manifest_path).unwrap()).unwrap();
    assert_eq!(m.jobs().len(), 4);

    run(&[
        "--manifest",
        manifest_path.to_str().unwrap(),
        "--threads",
        "2",
        "--json-dir",
        out_dir.to_str().unwrap(),
    ]);
    let txt = fs::read(out_dir.join("fig8c.txt")).unwrap();
    let journal_path = out_dir.join("journal.jsonl");
    let journal_bytes = fs::read(&journal_path).unwrap();
    let verdict = run(&["--validate-journal", journal_path.to_str().unwrap()]);
    assert!(verdict.contains("valid (4/4 runs"), "{verdict}");

    // Drop the final journal line (a crash between fsyncs) and resume: the
    // journal and the rendered table must converge to the same bytes.
    let text = String::from_utf8(journal_bytes.clone()).unwrap();
    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    fs::write(&journal_path, format!("{}\n", lines.join("\n"))).unwrap();
    run(&[
        "--manifest",
        manifest_path.to_str().unwrap(),
        "--threads",
        "2",
        "--json-dir",
        out_dir.to_str().unwrap(),
        "--resume",
    ]);
    assert_eq!(fs::read(&journal_path).unwrap(), journal_bytes);
    assert_eq!(fs::read(out_dir.join("fig8c.txt")).unwrap(), txt);
}
