//! Executes one [`JobSpec`] to its journalled run report.
//!
//! This is the only place where manifest data meets the simulator: the job
//! is materialised, the profiling pre-pass is fetched from the shared
//! memo (computed at most once per distinct key), the run executes —
//! instrumented when the job asks for telemetry — and the report
//! [`Value`] that will be journalled (and that every renderer consumes)
//! is assembled. A job with a `trace_path` override also exports its
//! Chrome trace-event document as an execution-time side effect, so a
//! resumed run that skips the job keeps the file from the first pass.
//!
//! With a [`TraceStore`], the main run's reference streams come from
//! content-addressed `.dtr` files instead of in-process generation: each
//! distinct `(workload spec, seed, scale, insts)` episode is materialized
//! once per grid and replayed from disk afterwards. The replayed prefix is
//! exactly what the cores consume (see `das_workloads::dtr`), so
//! store-served reports are bit-identical to generator-backed ones —
//! locked by the tests below. The SAS/CHARM profiling pre-pass stays
//! generator-based: it walks a different seed and horizon and is memoized
//! separately in [`ProfileCache`].

use std::path::Path;

use das_dram::geometry::GlobalRowId;
use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{
    run_one_coherent, run_one_coherent_instrumented, run_one_instrumented_with_profile,
    run_one_with_profile,
};
use das_sim::report::run_report;
use das_sim::stats::RunMetrics;
use das_sim::{SimError, System, TraceSource};
use das_telemetry::json::{self, Value};
use das_telemetry::TelemetryReport;
use das_trace::TraceStore;
use das_workloads::config::WorkloadConfig;
use das_workloads::dtr;

use crate::manifest::JobSpec;
use crate::profile::{profile_key, ProfileCache};

/// Runs the job's simulation with per-core streams served from `store`.
/// Traces absent from the store are materialized first (once per key);
/// after the run every stream's health is checked so a truncated or
/// corrupted trace fails the job loudly instead of silently cutting it
/// short.
fn run_stored(
    job: &JobSpec,
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
    profile: Option<&std::collections::HashMap<GlobalRowId, u64>>,
    store: &TraceStore,
    instrumented: bool,
) -> Result<(Result<RunMetrics, SimError>, Option<TelemetryReport>), String> {
    let scaled: Vec<WorkloadConfig> = workloads
        .iter()
        .map(|w| w.scaled(u64::from(cfg.scale)))
        .collect();
    let mut sources = Vec::with_capacity(scaled.len());
    let mut statuses = Vec::with_capacity(scaled.len());
    for w in &scaled {
        let fp = dtr::episode_fingerprint(w, cfg.seed, cfg.scale, cfg.inst_budget);
        store
            .get_or_materialize(&fp, |out| {
                dtr::record_episode(w, cfg.seed, cfg.inst_budget, out).map(|_| ())
            })
            .map_err(|e| format!("job {}: cannot materialize {} trace: {e}", job.id, w.name))?;
        let reader = store
            .open_stream(&fp)
            .map_err(|e| format!("job {}: cannot open {} trace: {e}", job.id, w.name))?;
        statuses.push((w.name.clone(), reader.status()));
        sources.push(TraceSource::streaming(reader));
    }
    let sys = System::with_sources(cfg.clone(), design, &scaled, sources, profile);
    let out = if instrumented {
        sys.run_instrumented()
    } else {
        (sys.run(), None)
    };
    for (name, status) in &statuses {
        if let Some(e) = status.error() {
            return Err(format!(
                "job {}: trace stream for {name} failed mid-run: {e}",
                job.id
            ));
        }
    }
    Ok(out)
}

/// Runs one job, returning the report to journal.
///
/// `out_dir` anchors relative side-effect exports (`trace_path`); `store`,
/// when given, serves the main run's reference streams from disk.
///
/// # Errors
///
/// Returns a readable message naming the job on simulation, trace-store,
/// or export failure.
pub fn execute(
    job: &JobSpec,
    profiles: &ProfileCache,
    out_dir: &Path,
    store: Option<&TraceStore>,
) -> Result<Value, String> {
    let (cfg, design, workloads) = job.materialize()?;
    let profile = design
        .needs_profile()
        .then(|| profiles.get_or_compute(&profile_key(job), &cfg, &workloads));
    let profile = profile.as_deref();
    let instrumented = job.ov.telemetry_epoch.is_some();
    let (res, tel) = if let Some((spec, protocol)) = job.coherent_spec()? {
        // Coherent runs synthesize their shared-footprint streams
        // in-process (deterministic by construction), so the trace store
        // is bypassed.
        if instrumented {
            run_one_coherent_instrumented(&cfg, design, &spec, protocol)
        } else {
            (run_one_coherent(&cfg, design, &spec, protocol), None)
        }
    } else {
        match store {
            Some(s) => run_stored(job, &cfg, design, &workloads, profile, s, instrumented)?,
            None if instrumented => {
                run_one_instrumented_with_profile(&cfg, design, &workloads, profile)
            }
            None => (
                run_one_with_profile(&cfg, design, &workloads, profile),
                None,
            ),
        }
    };
    let m = res.map_err(|e| {
        format!(
            "simulation failed: {} over {} (job {}): {e}",
            design.label(),
            job.workload,
            job.id
        )
    })?;
    if let Some(rel) = &job.ov.trace_path {
        let tel = tel
            .as_ref()
            .ok_or_else(|| format!("job {}: trace_path needs telemetry_epoch", job.id))?;
        let doc = tel.chrome_trace_json();
        json::validate(&doc).map_err(|e| format!("job {}: trace does not parse: {e}", job.id))?;
        let path = out_dir.join(rel);
        std::fs::write(&path, doc).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    Ok(run_report(&m, tel.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{JobSpec, Overrides};

    fn quick(id: &str, design: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            design: design.into(),
            workload: "libquantum".into(),
            insts: 200_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        }
    }

    fn store_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "das-harness-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn execute_produces_a_valid_report() {
        let profiles = ProfileCache::new();
        let report = execute(&quick("t/std", "std"), &profiles, Path::new("."), None).unwrap();
        assert_eq!(
            report.get("design").and_then(Value::as_str),
            Some("Std-DRAM")
        );
        assert!(report.get_path("metrics/ipc_sum").is_some());
        json::validate(&report.render()).unwrap();
        assert!(profiles.is_empty(), "standard DRAM needs no profile");
    }

    #[test]
    fn report_matches_direct_run_exactly() {
        let job = quick("t/das", "das");
        let profiles = ProfileCache::new();
        let via_harness = execute(&job, &profiles, Path::new("."), None).unwrap();
        let (cfg, design, wl) = job.materialize().unwrap();
        let direct = das_sim::experiments::run_one(&cfg, design, &wl).unwrap();
        assert_eq!(via_harness.render(), run_report(&direct, None).render());
    }

    #[test]
    fn store_served_run_is_bit_identical_to_generator_backed() {
        // The determinism contract of the whole subsystem: a cold run
        // (materializes the trace), a warm run (replays it), and a plain
        // generator-backed run must render byte-identical reports.
        let dir = store_dir("identical");
        let store = TraceStore::open(&dir).unwrap();
        let job = quick("t/das-store", "das");
        let profiles = ProfileCache::new();
        let cold = execute(&job, &profiles, Path::new("."), Some(&store)).unwrap();
        let warm = execute(&job, &profiles, Path::new("."), Some(&store)).unwrap();
        let direct = execute(&job, &profiles, Path::new("."), None).unwrap();
        assert_eq!(cold.render(), direct.render(), "cold store run differs");
        assert_eq!(warm.render(), direct.render(), "warm store run differs");
        let s = store.stats();
        assert_eq!((s.misses, s.hits), (1, 1));
        assert!(s.bytes_written > 0);
        assert_eq!(s.bytes_read, 2 * s.bytes_written, "two replays of one file");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_serves_static_designs_with_shared_profile() {
        // A profiled design exercises both caches at once: the profile
        // memo (generator-based pre-pass) and the trace store (main run).
        let dir = store_dir("sas");
        let store = TraceStore::open(&dir).unwrap();
        let job = quick("t/sas-store", "sas");
        let profiles = ProfileCache::new();
        let stored = execute(&job, &profiles, Path::new("."), Some(&store)).unwrap();
        let direct = execute(&job, &profiles, Path::new("."), None).unwrap();
        assert_eq!(stored.render(), direct.render());
        assert_eq!(profiles.len(), 1, "profile computed once, shared");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_store_entry_fails_the_job_loudly() {
        let dir = store_dir("corrupt");
        let store = TraceStore::open(&dir).unwrap();
        let job = quick("t/corrupt", "std");
        let profiles = ProfileCache::new();
        execute(&job, &profiles, Path::new("."), Some(&store)).unwrap();
        // Truncate the materialized trace: the replay must not silently
        // simulate a shorter episode.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path();
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        let err = execute(&job, &profiles, Path::new("."), Some(&store)).unwrap_err();
        assert!(err.contains("t/corrupt"), "error names the job: {err}");
        assert!(
            err.contains("mid-run") || err.contains("truncated"),
            "error names the cause: {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn coherent_job_runs_and_ignores_the_store() {
        let dir = store_dir("coherent");
        let store = TraceStore::open(&dir).unwrap();
        let mut job = quick("t/coh", "das");
        job.workload = "shared:lock".into();
        job.ov.cores = Some(2);
        let profiles = ProfileCache::new();
        let stored = execute(&job, &profiles, Path::new("."), Some(&store)).unwrap();
        let direct = execute(&job, &profiles, Path::new("."), None).unwrap();
        assert_eq!(stored.render(), direct.render());
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (0, 0), "coherent runs bypass the store");
        assert_eq!(
            stored
                .get_path("metrics/coherence/protocol")
                .and_then(Value::as_str),
            Some("MESI")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn event_budget_override_fails_loudly() {
        let mut job = quick("t/budget", "std");
        job.ov.event_budget = Some(1_000);
        let err = execute(&job, &ProfileCache::new(), Path::new("."), None).unwrap_err();
        assert!(err.contains("t/budget"), "error names the job: {err}");
    }
}
