//! Executes one [`JobSpec`] to its journalled run report.
//!
//! This is the only place where manifest data meets the simulator: the job
//! is materialised, the profiling pre-pass is fetched from the shared
//! memo (computed at most once per distinct key), the run executes —
//! instrumented when the job asks for telemetry — and the report
//! [`Value`] that will be journalled (and that every renderer consumes)
//! is assembled. A job with a `trace_path` override also exports its
//! Chrome trace-event document as an execution-time side effect, so a
//! resumed run that skips the job keeps the file from the first pass.

use std::path::Path;

use das_sim::experiments::{run_one_instrumented_with_profile, run_one_with_profile};
use das_sim::report::run_report;
use das_telemetry::json::{self, Value};

use crate::manifest::JobSpec;
use crate::profile::{profile_key, ProfileCache};

/// Runs one job, returning the report to journal.
///
/// `out_dir` anchors relative side-effect exports (`trace_path`).
///
/// # Errors
///
/// Returns a readable message naming the job on simulation or export
/// failure.
pub fn execute(job: &JobSpec, profiles: &ProfileCache, out_dir: &Path) -> Result<Value, String> {
    let (cfg, design, workloads) = job.materialize()?;
    let profile = design
        .needs_profile()
        .then(|| profiles.get_or_compute(&profile_key(job), &cfg, &workloads));
    let profile = profile.as_deref();
    let (res, tel) = if job.ov.telemetry_epoch.is_some() {
        run_one_instrumented_with_profile(&cfg, design, &workloads, profile)
    } else {
        (
            run_one_with_profile(&cfg, design, &workloads, profile),
            None,
        )
    };
    let m = res.map_err(|e| {
        format!(
            "simulation failed: {} over {} (job {}): {e}",
            design.label(),
            job.workload,
            job.id
        )
    })?;
    if let Some(rel) = &job.ov.trace_path {
        let tel = tel
            .as_ref()
            .ok_or_else(|| format!("job {}: trace_path needs telemetry_epoch", job.id))?;
        let doc = tel.chrome_trace_json();
        json::validate(&doc).map_err(|e| format!("job {}: trace does not parse: {e}", job.id))?;
        let path = out_dir.join(rel);
        std::fs::write(&path, doc).map_err(|e| format!("cannot write {path:?}: {e}"))?;
    }
    Ok(run_report(&m, tel.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{JobSpec, Overrides};

    fn quick(id: &str, design: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            design: design.into(),
            workload: "libquantum".into(),
            insts: 200_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        }
    }

    #[test]
    fn execute_produces_a_valid_report() {
        let profiles = ProfileCache::new();
        let report = execute(&quick("t/std", "std"), &profiles, Path::new(".")).unwrap();
        assert_eq!(
            report.get("design").and_then(Value::as_str),
            Some("Std-DRAM")
        );
        assert!(report.get_path("metrics/ipc_sum").is_some());
        json::validate(&report.render()).unwrap();
        assert!(profiles.is_empty(), "standard DRAM needs no profile");
    }

    #[test]
    fn report_matches_direct_run_exactly() {
        let job = quick("t/das", "das");
        let profiles = ProfileCache::new();
        let via_harness = execute(&job, &profiles, Path::new(".")).unwrap();
        let (cfg, design, wl) = job.materialize().unwrap();
        let direct = das_sim::experiments::run_one(&cfg, design, &wl).unwrap();
        assert_eq!(via_harness.render(), run_report(&direct, None).render());
    }

    #[test]
    fn event_budget_override_fails_loudly() {
        let mut job = quick("t/budget", "std");
        job.ov.event_budget = Some(1_000);
        let err = execute(&job, &ProfileCache::new(), Path::new(".")).unwrap_err();
        assert!(err.contains("t/budget"), "error names the job: {err}");
    }
}
