//! Rendering contexts and shared table helpers.
//!
//! Every experiment's text output is a **pure function of journalled
//! reports** (plus the manifest's grid parameters): the same
//! `render` runs over a live run, a resumed one, or a reloaded journal,
//! and produces the same bytes. Format strings here replicate the
//! original `das-bench` binaries character-for-character, so regenerated
//! `results/*.txt` stay diff-stable against `EXPERIMENTS.md`.

use das_sim::stats::gmean_improvement;
use das_telemetry::json::Value;

use crate::manifest::JobSpec;
use crate::report::ReportView;

/// Everything a renderer may consult.
pub struct RenderCtx<'a> {
    /// Grid-wide per-core instruction budget (single-programming).
    pub insts: u64,
    /// Grid-wide capacity scale factor.
    pub scale: u32,
    /// This experiment's jobs, in execution order.
    pub jobs: &'a [JobSpec],
    /// Reports aligned with `jobs`.
    pub reports: &'a [Value],
    /// Printable path of the bare-report export (telemetry experiment).
    pub report_path: String,
    /// Printable path of the Chrome trace export (telemetry experiment).
    pub trace_path: String,
}

impl<'a> RenderCtx<'a> {
    /// The report of the job with this exact id.
    ///
    /// # Panics
    ///
    /// Panics if the id is absent — manifests are validated before
    /// execution, so this is an internal error.
    pub fn by_id(&self, id: &str) -> ReportView<'a> {
        let idx = self
            .jobs
            .iter()
            .position(|j| j.id == id)
            .unwrap_or_else(|| panic!("no job {id:?} in this experiment"));
        ReportView(&self.reports[idx])
    }

    /// The job spec with this exact id.
    ///
    /// # Panics
    ///
    /// Panics if the id is absent.
    pub fn job(&self, id: &str) -> &'a JobSpec {
        self.jobs
            .iter()
            .find(|j| j.id == id)
            .unwrap_or_else(|| panic!("no job {id:?} in this experiment"))
    }

    /// Distinct group names (the second `/`-separated id segment), in
    /// order of first appearance — the workload rows of a table, derived
    /// from the manifest itself so `--only`-filtered grids render
    /// correctly.
    pub fn group_names(&self) -> Vec<&'a str> {
        let mut names: Vec<&str> = Vec::new();
        for j in self.jobs {
            let name = j.id.split('/').nth(1).unwrap_or("");
            if !names.contains(&name) {
                names.push(name);
            }
        }
        names
    }
}

/// Formats a fraction as a signed percentage (the shared figure format).
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Renders one improvement table: rows = workloads, columns = design or
/// sweep labels at `width`, plus a gmean row (Figs. 7a/7d/8a/9a/9b and
/// the ratio sweeps).
pub fn improvement_table(
    out: &mut String,
    title: &str,
    names: &[&str],
    columns: &[String],
    width: usize,
    rows: &[Vec<f64>],
) {
    use std::fmt::Write;
    let _ = writeln!(out, "# {title}");
    let _ = write!(out, "{:<12}", "workload");
    for c in columns {
        let _ = write!(out, " {c:>width$}");
    }
    let _ = writeln!(out);
    for (name, row) in names.iter().zip(rows) {
        let _ = write!(out, "{name:<12}");
        for v in row {
            let _ = write!(out, " {:>width$}", pct(*v));
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:<12}", "gmean");
    for c in 0..columns.len() {
        let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
        let _ = write!(out, " {:>width$}", pct(gmean_improvement(&col)));
    }
    let _ = writeln!(out);
}

/// Renders one Fig. 7c/7f-style access-location line from a journalled
/// run.
pub fn access_mix_line(out: &mut String, label: &str, run: &ReportView) {
    use std::fmt::Write;
    let (rb, f, s) = run.access_fractions();
    let _ = writeln!(
        out,
        "{label:<14} slow={:5.1}%  fast={:5.1}%  row-buffer={:5.1}%",
        s * 100.0,
        f * 100.0,
        rb * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_matches_the_bench_format() {
        assert_eq!(pct(0.0725), "+7.25%");
        assert_eq!(pct(-0.01), "-1.00%");
        assert_eq!(pct(0.0), "+0.00%");
    }

    #[test]
    fn improvement_table_layout_is_stable() {
        let mut out = String::new();
        improvement_table(
            &mut out,
            "T",
            &["mcf"],
            &["A".to_string(), "B".to_string()],
            14,
            &[vec![0.05, -0.01]],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "# T");
        assert_eq!(
            lines[1],
            format!("{:<12} {:>14} {:>14}", "workload", "A", "B")
        );
        assert_eq!(
            lines[2],
            format!("{:<12} {:>14} {:>14}", "mcf", "+5.00%", "-1.00%")
        );
        assert!(lines[3].starts_with("gmean"));
    }
}
