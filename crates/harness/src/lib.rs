//! # das-harness — parallel, resumable experiment orchestration
//!
//! Every figure, table and ablation of the paper is described by a
//! declarative [`manifest::Manifest`] — design, workload, seed,
//! instruction budget and parameter overrides per run — built by the
//! [`catalog`] and executed by a deterministic work-stealing [`pool`]:
//! results are consumed in job order, so an N-thread run is bit-identical
//! to a serial one. Completed runs land in an fsync'd JSON-lines
//! [`journal`] that a rerun resumes (a crash loses at most the run in
//! flight), the SAS/CHARM profiling pre-pass is memoized across jobs
//! ([`profile`]), and the text outputs are re-[`render`]ed from
//! journalled reports alone — live, resumed and reloaded runs print the
//! same bytes as the original `das-bench` binaries.
//!
//! Entry points: [`cli::bin_main`] (what each figure binary calls) and
//! [`cli::harness_main`] (the standalone `harness` orchestrator).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod catalog;
pub mod cli;
pub mod journal;
pub mod manifest;
pub mod pool;
pub mod profile;
pub mod render;
pub mod report;
pub mod runner;
