//! `harness --bench`: the pinned perf-benchmark mode.
//!
//! Runs a small, fixed set of representative jobs (baseline vs. the
//! paper's proposal vs. the TL-DRAM variant, across two workloads) with
//! the stage profiler on, times each run on the host's monotonic clock,
//! and writes a schema-versioned `BENCH_<git-sha>.json` so the repo
//! accumulates a per-commit perf trajectory (`scripts/bench_compare`
//! diffs two of them).
//!
//! The bench document intentionally lives *outside* the run-report
//! contract: run reports stay byte-identical whether or not a bench is
//! being recorded, because the wall-clock numbers here are host facts,
//! not simulated ones. Simulated results from bench runs are used only
//! to derive rates (instructions and simulated cycles per wall second).

use std::path::{Path, PathBuf};
use std::time::Instant;

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{run_one_coherent_profiled, run_one_profiled};
use das_telemetry::json::Value;
use das_telemetry::{Stage, StageProfilerConfig};
use das_workloads::{shared, spec};

use crate::manifest::design_key;

/// Version of the `BENCH_*.json` document layout. Bump on any breaking
/// shape change; `scripts/bench_compare` refuses mismatched versions.
pub const BENCH_SCHEMA: u64 = 1;

/// Profiler sampling stride used by bench runs (every Nth stage
/// occurrence is timed).
pub const BENCH_SAMPLE_EVERY: u32 = 64;

/// The pinned job subset: small enough for CI, varied enough that a
/// regression in the baseline path, the DAS management path, the
/// inclusive/TL path, the coherent front end, or the adaptive-policy
/// path is visible in isolation. A `shared:<kind>` workload token runs
/// under the two-core MESI coherent front end at mid sharing intensity;
/// a `policy:<key>:<bench>` token installs that migration policy.
pub const BENCH_JOBS: [(Design, &str); 6] = [
    (Design::Standard, "mcf"),
    (Design::DasDram, "mcf"),
    (Design::DasDram, "libquantum"),
    (Design::TlDram, "mcf"),
    (Design::DasDram, "shared:lock"),
    (Design::DasDram, "policy:feedback:mcf"),
];

/// Knobs of a bench session (`--insts` / `--scale` pass through from the
/// harness command line; the job list and sampling stride stay pinned).
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Per-core instruction budget for every bench job.
    pub insts: u64,
    /// Capacity scale factor for every bench job.
    pub scale: u32,
    /// Directory the `BENCH_<sha>.json` file is written into.
    pub out_dir: PathBuf,
}

/// Stable id of a bench job (`bench/<design>/<workload>`).
pub fn bench_job_id(design: Design, workload: &str) -> String {
    format!("bench/{}/{workload}", design_key(design))
}

/// The short git revision of the working tree, or `"nogit"` when the
/// repository state cannot be determined (detached environments, tarball
/// builds). Used to name the bench artifact.
pub fn git_short_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "nogit".to_string())
}

/// Runs one pinned bench job and returns its report object.
fn run_bench_job(design: Design, workload: &str, opts: &BenchOptions) -> Result<Value, String> {
    let id = bench_job_id(design, workload);
    let cfg = SystemConfig::scaled_by(opts.scale, opts.insts)
        .with_stage_profile(StageProfilerConfig::on(BENCH_SAMPLE_EVERY));
    let start;
    let (res, stages) = if let Some(kind) = workload.strip_prefix("shared:") {
        let kind = shared::SharedKind::parse(kind)
            .ok_or_else(|| format!("{id}: unknown shared workload kind"))?;
        let spec = shared::SharedSpec::new(kind, 2, shared::Sharing::Mid);
        start = Instant::now();
        let (res, _tel, stages) =
            run_one_coherent_profiled(&cfg, design, &spec, das_coherence::ProtocolKind::Mesi);
        (res, stages)
    } else if let Some(rest) = workload.strip_prefix("policy:") {
        let (key, bench) = rest
            .split_once(':')
            .ok_or_else(|| format!("{id}: policy token needs policy:<key>:<bench>"))?;
        let kind = das_policy::PolicyKind::parse(key)
            .ok_or_else(|| format!("{id}: unknown migration policy {key:?}"))?;
        let cfg = cfg.with_policy(kind);
        let workloads = vec![spec::by_name(bench)];
        start = Instant::now();
        let (res, _tel, stages) = run_one_profiled(&cfg, design, &workloads);
        (res, stages)
    } else {
        let workloads = vec![spec::by_name(workload)];
        start = Instant::now();
        let (res, _tel, stages) = run_one_profiled(&cfg, design, &workloads);
        (res, stages)
    };
    let wall = start.elapsed();
    let m = res.map_err(|e| format!("{id}: {e}"))?;
    let stages = stages.ok_or_else(|| format!("{id}: bench run produced no stage report"))?;

    let insts: u64 = m.cores.iter().map(|c| c.insts).sum();
    let sim_cycles = m.window_cycles;
    let wall_s = wall.as_secs_f64().max(1e-9);
    let shares = stages.shares();
    let mut share_obj = Value::obj();
    for stage in Stage::ALL {
        share_obj = share_obj.set(stage.label(), shares[stage as usize]);
    }
    eprintln!(
        "bench {id}: {:.0} ms wall, {:.0} insts/s, {:.0} sim cycles/s",
        wall_s * 1e3,
        insts as f64 / wall_s,
        sim_cycles as f64 / wall_s,
    );
    Ok(Value::obj()
        .set("id", id)
        .set("design", design_key(design))
        .set("workload", workload)
        .set("wall_ms", wall_s * 1e3)
        .set("insts_retired", insts)
        .set("sim_cycles", sim_cycles)
        .set("insts_per_sec", insts as f64 / wall_s)
        .set("sim_cycles_per_sec", sim_cycles as f64 / wall_s)
        .set("stage_shares", share_obj)
        .set("stages", stages.to_value()))
}

/// Runs the pinned bench suite and builds the schema-versioned document.
///
/// # Errors
///
/// Returns the first failing job's error (a bench is only meaningful when
/// every pinned job completes).
pub fn run_bench(opts: &BenchOptions) -> Result<Value, String> {
    let mut jobs = Vec::new();
    let mut wall_ms = 0.0;
    let mut insts = 0u64;
    let mut cycles = 0u64;
    for (design, workload) in BENCH_JOBS {
        let job = run_bench_job(design, workload, opts)?;
        wall_ms += job.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
        insts += job
            .get("insts_retired")
            .and_then(Value::as_u64)
            .unwrap_or(0);
        cycles += job.get("sim_cycles").and_then(Value::as_u64).unwrap_or(0);
        jobs.push(job);
    }
    let wall_s = (wall_ms / 1e3).max(1e-9);
    Ok(Value::obj()
        .set("bench_schema", BENCH_SCHEMA)
        .set("git_sha", git_short_sha())
        .set("insts", opts.insts)
        .set("scale", u64::from(opts.scale))
        .set("sample_every", u64::from(BENCH_SAMPLE_EVERY))
        .set("jobs", Value::Arr(jobs))
        .set(
            "totals",
            Value::obj()
                .set("wall_ms", wall_ms)
                .set("insts_retired", insts)
                .set("sim_cycles", cycles)
                .set("insts_per_sec", insts as f64 / wall_s)
                .set("sim_cycles_per_sec", cycles as f64 / wall_s),
        ))
}

/// Runs the bench suite and writes `BENCH_<git-sha>.json` into
/// `opts.out_dir`. Returns the path written.
///
/// # Errors
///
/// Returns the first job failure or the write failure.
pub fn run_bench_to_file(opts: &BenchOptions) -> Result<PathBuf, String> {
    let doc = run_bench(opts)?;
    let sha = doc
        .get("git_sha")
        .and_then(Value::as_str)
        .unwrap_or("nogit")
        .to_string();
    let path = opts.out_dir.join(format!("BENCH_{sha}.json"));
    std::fs::write(&path, doc.render() + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(path)
}

/// Structural check of a bench document: schema version, required summary
/// fields, and per-job rate/share fields. `scripts/bench_compare` and the
/// CI perf-smoke job apply the same rules from the outside; this is the
/// in-tree source of truth.
///
/// # Errors
///
/// Returns a message naming the first missing or malformed field.
pub fn validate_bench_doc(doc: &Value) -> Result<(), String> {
    match doc.get("bench_schema").and_then(Value::as_u64) {
        Some(BENCH_SCHEMA) => {}
        Some(v) => return Err(format!("bench_schema {v} != supported {BENCH_SCHEMA}")),
        None => return Err("missing bench_schema".into()),
    }
    if doc.get("git_sha").and_then(Value::as_str).is_none() {
        return Err("missing git_sha".into());
    }
    let jobs = doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("missing jobs array")?;
    if jobs.is_empty() {
        return Err("empty jobs array".into());
    }
    for job in jobs {
        let id = job
            .get("id")
            .and_then(Value::as_str)
            .ok_or("job missing id")?;
        for field in ["wall_ms", "insts_per_sec", "sim_cycles_per_sec"] {
            if job.get(field).and_then(Value::as_f64).is_none() {
                return Err(format!("{id}: missing {field}"));
            }
        }
        let shares = job
            .get("stage_shares")
            .ok_or_else(|| format!("{id}: missing stage_shares"))?;
        for stage in Stage::ALL {
            if shares.get(stage.label()).and_then(Value::as_f64).is_none() {
                return Err(format!("{id}: stage_shares missing {}", stage.label()));
            }
        }
    }
    for field in ["wall_ms", "insts_per_sec", "sim_cycles_per_sec"] {
        if doc
            .get("totals")
            .and_then(|t| t.get(field))
            .and_then(Value::as_f64)
            .is_none()
        {
            return Err(format!("totals missing {field}"));
        }
    }
    Ok(())
}

/// Convenience for tests and the CI smoke job: validate a bench file on
/// disk.
///
/// # Errors
///
/// Returns read, parse, or validation failures with the path named.
pub fn validate_bench_file(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let doc = das_telemetry::json::parse(&text)
        .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    validate_bench_doc(&doc).map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> BenchOptions {
        BenchOptions {
            insts: 40_000,
            scale: 64,
            out_dir: std::env::temp_dir(),
        }
    }

    #[test]
    fn bench_doc_is_schema_valid_and_covers_the_pinned_jobs() {
        let doc = run_bench(&tiny_opts()).unwrap();
        validate_bench_doc(&doc).expect("fresh bench doc must validate");
        let jobs = doc.get("jobs").and_then(Value::as_arr).unwrap();
        assert_eq!(jobs.len(), BENCH_JOBS.len());
        for (job, (design, workload)) in jobs.iter().zip(BENCH_JOBS) {
            assert_eq!(
                job.get("id").and_then(Value::as_str).unwrap(),
                bench_job_id(design, workload)
            );
            let rate = job.get("insts_per_sec").and_then(Value::as_f64).unwrap();
            assert!(rate > 0.0, "rates must be positive, got {rate}");
        }
        assert!(
            jobs.iter()
                .any(|j| { j.get("id").and_then(Value::as_str) == Some("bench/das/shared:lock") }),
            "the coherent front end is covered by the pinned suite"
        );
        assert!(
            jobs.iter().any(|j| {
                j.get("id").and_then(Value::as_str) == Some("bench/das/policy:feedback:mcf")
            }),
            "the adaptive-policy path is covered by the pinned suite"
        );
        das_telemetry::json::validate(&doc.render()).expect("bench doc must render as valid JSON");
    }

    #[test]
    fn bench_file_round_trips_through_disk_validation() {
        let dir = std::env::temp_dir().join("das-bench-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let opts = BenchOptions {
            out_dir: dir,
            ..tiny_opts()
        };
        let path = run_bench_to_file(&opts).unwrap();
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(
            name.starts_with("BENCH_") && name.ends_with(".json"),
            "unexpected bench artifact name {name}"
        );
        validate_bench_file(&path).unwrap();
    }

    #[test]
    fn validation_rejects_broken_documents() {
        for (doc, needle) in [
            (Value::obj(), "bench_schema"),
            (Value::obj().set("bench_schema", 999u64), "999"),
            (
                Value::obj()
                    .set("bench_schema", BENCH_SCHEMA)
                    .set("git_sha", "x"),
                "jobs",
            ),
        ] {
            let err = validate_bench_doc(&doc).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }
}
