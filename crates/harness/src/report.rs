//! Typed accessors over journalled run reports.
//!
//! Renderers never touch [`das_sim::stats::RunMetrics`] — they consume
//! the report [`Value`]s from the journal, whether those were produced
//! seconds ago in this process or loaded from a resumed file. That single
//! code path is what makes an N-thread, resumed, or re-rendered run
//! byte-identical to a fresh serial one. JSON floats render in shortest-
//! round-trip form and parse back exactly, so arithmetic replicated here
//! (the improvement metric, gmean inputs) produces bit-equal results
//! from a reloaded journal.

use das_telemetry::json::Value;

/// A borrowed view of one run report.
#[derive(Clone, Copy)]
pub struct ReportView<'a>(pub &'a Value);

impl<'a> ReportView<'a> {
    fn at(&self, path: &str) -> &'a Value {
        self.0
            .get_path(path)
            .unwrap_or_else(|| panic!("run report missing {path:?}"))
    }

    /// Float field (integers widen), panicking on schema mismatch — a
    /// malformed journal is rejected at load, so this is an internal bug.
    pub fn f64(&self, path: &str) -> f64 {
        self.at(path)
            .as_f64()
            .unwrap_or_else(|| panic!("report field {path:?} is not a number"))
    }

    /// Exact unsigned field.
    pub fn u64(&self, path: &str) -> u64 {
        self.at(path)
            .as_u64()
            .unwrap_or_else(|| panic!("report field {path:?} is not a u64"))
    }

    /// String field.
    pub fn str(&self, path: &str) -> &'a str {
        self.at(path)
            .as_str()
            .unwrap_or_else(|| panic!("report field {path:?} is not a string"))
    }

    /// Array field.
    pub fn arr(&self, path: &str) -> &'a [Value] {
        self.at(path)
            .as_arr()
            .unwrap_or_else(|| panic!("report field {path:?} is not an array"))
    }

    /// Whether the field exists (and is non-null).
    pub fn has(&self, path: &str) -> bool {
        !matches!(self.0.get_path(path), None | Some(Value::Null))
    }

    /// Per-core IPCs, in core order.
    pub fn core_ipcs(&self) -> Vec<f64> {
        self.arr("metrics/cores")
            .iter()
            .map(|c| ReportView(c).f64("ipc"))
            .collect()
    }

    /// The paper's improvement metric against a baseline run — the exact
    /// arithmetic of [`das_sim::experiments::improvement`], replayed from
    /// journalled per-core IPCs (bit-equal by the shortest-round-trip
    /// float guarantee).
    ///
    /// # Panics
    ///
    /// Panics if the two runs have different core counts.
    pub fn improvement_over(&self, base: &ReportView) -> f64 {
        let run = self.core_ipcs();
        let bases = base.core_ipcs();
        assert_eq!(run.len(), bases.len(), "mismatched systems");
        let speedups: Vec<f64> = run
            .iter()
            .zip(&bases)
            .map(|(&r, &b)| if b == 0.0 { 1.0 } else { r / b })
            .collect();
        speedups.iter().sum::<f64>() / speedups.len() as f64 - 1.0
    }

    /// Access-location fractions `(row_buffer, fast, slow)` as serialised
    /// by the run (Fig. 7c/7f).
    pub fn access_fractions(&self) -> (f64, f64, f64) {
        (
            self.f64("metrics/access_mix/row_buffer_frac"),
            self.f64("metrics/access_mix/fast_frac"),
            self.f64("metrics/access_mix/slow_frac"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_sim::config::{Design, SystemConfig};
    use das_sim::experiments::{improvement, run_one};
    use das_sim::report::run_report;
    use das_telemetry::json;
    use das_workloads::spec;

    #[test]
    fn journal_round_trip_preserves_improvement_bits() {
        let cfg = SystemConfig::scaled_by(64, 200_000);
        let wl = vec![spec::by_name("libquantum")];
        let base = run_one(&cfg, Design::Standard, &wl).unwrap();
        let das = run_one(&cfg, Design::DasDram, &wl).unwrap();
        let expected = improvement(&das, &base);
        // Render and reparse, as a resumed journal would.
        let base_v = json::parse(&run_report(&base, None).render()).unwrap();
        let das_v = json::parse(&run_report(&das, None).render()).unwrap();
        let got = ReportView(&das_v).improvement_over(&ReportView(&base_v));
        assert!(
            got.to_bits() == expected.to_bits(),
            "bit-exact improvement: {got} vs {expected}"
        );
        let (rb, f, s) = ReportView(&base_v).access_fractions();
        let (erb, ef, es) = base.access_mix.fractions();
        assert_eq!(
            (rb.to_bits(), f.to_bits(), s.to_bits()),
            (erb.to_bits(), ef.to_bits(), es.to_bits())
        );
    }

    #[test]
    fn accessors_read_scalar_fields() {
        let v = json::parse(
            r#"{"design":"X","metrics":{"ipc_sum":1.5,"promotions":7},"telemetry":null}"#,
        )
        .unwrap();
        let r = ReportView(&v);
        assert_eq!(r.str("design"), "X");
        assert_eq!(r.u64("metrics/promotions"), 7);
        assert!((r.f64("metrics/ipc_sum") - 1.5).abs() < 1e-12);
        assert!(!r.has("telemetry"));
        assert!(r.has("metrics/ipc_sum"));
    }
}
