//! The resumable run journal: one fsync'd JSON line per completed run.
//!
//! Line 1 is a header binding the journal to a manifest fingerprint and
//! job count; every following line is `{"job":"<id>","report":{...}}`,
//! appended in job order and fsync'd, so a crash loses at most the run in
//! flight. On resume the file is re-read, the longest valid prefix whose
//! job ids match the manifest's expected sequence is kept (a torn final
//! line from a crash is truncated away), and execution continues from the
//! first missing job. A journal written against a *different* manifest is
//! rejected by fingerprint instead of silently misattributing results.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use das_telemetry::json::{self, Value};

/// Journal format version (line-1 schema).
pub const JOURNAL_VERSION: u64 = 1;

/// An open, append-mode journal plus the entries it already holds.
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// Completed run reports, in job order (`entries[i]` is job `i`).
    pub entries: Vec<Value>,
}

fn header_line(fingerprint: &str, jobs: usize) -> String {
    Value::obj()
        .set("das_harness_journal", JOURNAL_VERSION)
        .set("fp", fingerprint)
        .set("jobs", jobs)
        .render()
}

fn run_line(job_id: &str, report: &Value) -> String {
    Value::obj()
        .set("job", job_id)
        .set("report", report.clone())
        .render()
}

impl Journal {
    /// Creates (truncating) a fresh journal for a manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, fingerprint: &str, jobs: usize) -> Result<Journal, String> {
        let mut file = File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
        file.write_all(header_line(fingerprint, jobs).as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("write {path:?}: {e}"))?;
        Ok(Journal {
            file,
            entries: Vec::new(),
        })
    }

    /// Re-opens an existing journal for resumption: validates the header
    /// against the manifest, keeps the longest valid prefix of run lines
    /// matching `expected_ids` in order, truncates anything after it
    /// (torn tail, stray lines), and returns the journal positioned to
    /// append. A missing file is the same as a fresh [`Journal::create`].
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a header/fingerprint mismatch.
    pub fn resume(
        path: &Path,
        fingerprint: &str,
        expected_ids: &[&str],
    ) -> Result<Journal, String> {
        if !path.exists() {
            return Journal::create(path, fingerprint, expected_ids.len());
        }
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("read {path:?}: {e}"))?;
        let mut lines = text.split_inclusive('\n');
        let header_text = lines.next().unwrap_or("");
        if !header_text.ends_with('\n') {
            return Err(format!(
                "{path:?}: truncated header; delete it to start over"
            ));
        }
        let header =
            json::parse(header_text.trim_end()).map_err(|e| format!("{path:?} header: {e}"))?;
        let version = header.get("das_harness_journal").and_then(Value::as_u64);
        if version != Some(JOURNAL_VERSION) {
            return Err(format!(
                "{path:?}: not a das_harness_journal v{JOURNAL_VERSION}"
            ));
        }
        if header.get("fp").and_then(Value::as_str) != Some(fingerprint) {
            return Err(format!(
                "{path:?} was written for a different manifest (fingerprint mismatch); \
                 delete it or pass the matching manifest"
            ));
        }
        if header.get("jobs").and_then(Value::as_u64) != Some(expected_ids.len() as u64) {
            return Err(format!("{path:?}: job count disagrees with the manifest"));
        }
        // Keep the longest valid prefix in expected-id order.
        let mut entries = Vec::new();
        let mut good_bytes = header_text.len() as u64;
        for line in lines {
            if !line.ends_with('\n') {
                break; // torn tail from a crash mid-append
            }
            if entries.len() >= expected_ids.len() {
                break; // stray lines beyond the manifest
            }
            let Ok(v) = json::parse(line.trim_end()) else {
                break;
            };
            if v.get("job").and_then(Value::as_str) != Some(expected_ids[entries.len()]) {
                break;
            }
            let Some(report) = v.get("report") else {
                break;
            };
            entries.push(report.clone());
            good_bytes += line.len() as u64;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("open {path:?}: {e}"))?;
        file.set_len(good_bytes)
            .map_err(|e| format!("truncate {path:?}: {e}"))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seek {path:?}: {e}"))?;
        Ok(Journal { file, entries })
    }

    /// Number of runs already journalled.
    pub fn done(&self) -> usize {
        self.entries.len()
    }

    /// Appends one completed run (fsync'd) and records it in `entries`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, job_id: &str, report: Value) -> Result<(), String> {
        self.file
            .write_all(run_line(job_id, &report).as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("append journal: {e}"))?;
        self.entries.push(report);
        Ok(())
    }
}

/// A fully parsed journal (used by `--validate-journal` and the tests).
pub struct JournalDoc {
    /// Manifest fingerprint recorded in the header.
    pub fingerprint: String,
    /// Expected job count recorded in the header.
    pub jobs: u64,
    /// `(job id, report)` per run line.
    pub runs: Vec<(String, Value)>,
}

/// Reads and structurally validates a journal: header shape, every line
/// strict JSON with `job` + `report`, unique job ids. Does **not** check
/// completeness — a valid partial journal is exactly what resume eats.
///
/// # Errors
///
/// Returns the first violation with its line number.
pub fn load(path: &Path) -> Result<JournalDoc, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {path:?}: {e}"))?;
    let mut lines = text.lines();
    let header =
        json::parse(lines.next().ok_or("empty journal")?).map_err(|e| format!("line 1: {e}"))?;
    if header.get("das_harness_journal").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
        return Err(format!(
            "line 1: not a das_harness_journal v{JOURNAL_VERSION}"
        ));
    }
    let fingerprint = header
        .get("fp")
        .and_then(Value::as_str)
        .ok_or("line 1: missing fp")?
        .to_string();
    let jobs = header
        .get("jobs")
        .and_then(Value::as_u64)
        .ok_or("line 1: missing jobs")?;
    let mut runs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let id = v
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing job id"))?
            .to_string();
        if !seen.insert(id.clone()) {
            return Err(format!("line {lineno}: duplicate job {id:?}"));
        }
        let report = v
            .get("report")
            .ok_or_else(|| format!("line {lineno}: missing report"))?;
        runs.push((id, report.clone()));
    }
    if runs.len() as u64 > jobs {
        return Err(format!(
            "{} run lines but header promises {jobs}",
            runs.len()
        ));
    }
    Ok(JournalDoc {
        fingerprint,
        jobs,
        runs,
    })
}

/// Converts journalled reports into the legacy `{"runs":[...]}` document
/// the bench `--json` flag always produced — the compatibility shim that
/// lets downstream consumers of `results/*.json` keep working unchanged.
pub fn runs_doc(reports: &[Value]) -> Value {
    Value::obj().set("runs", Value::Arr(reports.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(n: u64) -> Value {
        Value::obj().set("design", "DAS-DRAM").set("n", n)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("das-harness-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_append_load_round_trip() {
        let path = tmp("round_trip.jsonl");
        let mut j = Journal::create(&path, "00ff", 2).unwrap();
        j.append("a", report(1)).unwrap();
        j.append("b", report(2)).unwrap();
        let doc = load(&path).unwrap();
        assert_eq!(doc.fingerprint, "00ff");
        assert_eq!(doc.jobs, 2);
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[1].0, "b");
        assert_eq!(doc.runs[1].1.render(), report(2).render());
    }

    #[test]
    fn resume_keeps_valid_prefix_and_truncates_torn_tail() {
        let path = tmp("torn_tail.jsonl");
        {
            let mut j = Journal::create(&path, "abcd", 3).unwrap();
            j.append("a", report(1)).unwrap();
            j.append("b", report(2)).unwrap();
        }
        // Simulate a crash mid-append: torn, newline-less final line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"c\",\"repo").unwrap();
        drop(f);
        let j = Journal::resume(&path, "abcd", &["a", "b", "c"]).unwrap();
        assert_eq!(j.done(), 2);
        let doc = load(&path).unwrap();
        assert_eq!(doc.runs.len(), 2, "torn line truncated away");
    }

    #[test]
    fn resume_rejects_wrong_fingerprint_and_wrong_order() {
        let path = tmp("wrong_fp.jsonl");
        {
            let mut j = Journal::create(&path, "1111", 2).unwrap();
            j.append("a", report(1)).unwrap();
        }
        assert!(Journal::resume(&path, "2222", &["a", "b"])
            .unwrap_err()
            .contains("fingerprint"));
        // Lines whose job id disagrees with the expected sequence are
        // dropped (with everything after them).
        let j = Journal::resume(&path, "1111", &["x", "a"]).unwrap();
        assert_eq!(j.done(), 0);
    }

    #[test]
    fn missing_file_resumes_as_fresh() {
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::resume(&path, "feed", &["a"]).unwrap();
        assert_eq!(j.done(), 0);
        assert_eq!(load(&path).unwrap().fingerprint, "feed");
    }

    #[test]
    fn runs_doc_matches_legacy_shape() {
        let doc = runs_doc(&[report(1), report(2)]);
        let text = doc.render();
        assert!(text.starts_with("{\"runs\":["));
        assert_eq!(doc.get("runs").and_then(Value::as_arr).unwrap().len(), 2);
    }
}
