//! The resumable run journal: one fsync'd JSON line per completed run.
//!
//! Line 1 is a header binding the journal to a manifest fingerprint and
//! job count; every following line is `{"job":"<id>","report":{...}}`,
//! appended in job order and fsync'd, so a crash loses at most the run in
//! flight. On resume the file is re-read, the longest valid prefix whose
//! job ids match the manifest's expected sequence is kept (a torn final
//! line from a crash is truncated away), and execution continues from the
//! first missing job. A journal written against a *different* manifest is
//! rejected by fingerprint instead of silently misattributing results.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use das_telemetry::json::{self, Value};

/// Journal format version (line-1 schema).
pub const JOURNAL_VERSION: u64 = 1;

/// An open, append-mode journal plus the entries it already holds.
#[derive(Debug)]
pub struct Journal {
    file: File,
    /// Completed run reports, in job order (`entries[i]` is job `i`).
    pub entries: Vec<Value>,
}

fn header_line(fingerprint: &str, jobs: usize) -> String {
    Value::obj()
        .set("das_harness_journal", JOURNAL_VERSION)
        .set("fp", fingerprint)
        .set("jobs", jobs)
        .render()
}

fn run_line(job_id: &str, report: &Value) -> String {
    Value::obj()
        .set("job", job_id)
        .set("report", report.clone())
        .render()
}

impl Journal {
    /// Creates (truncating) a fresh journal for a manifest.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path, fingerprint: &str, jobs: usize) -> Result<Journal, String> {
        let mut file = File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
        file.write_all(header_line(fingerprint, jobs).as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("write {path:?}: {e}"))?;
        Ok(Journal {
            file,
            entries: Vec::new(),
        })
    }

    /// Re-opens an existing journal for resumption: validates the header
    /// against the manifest, keeps the longest valid prefix of run lines
    /// matching `expected_ids` in order, truncates anything after it
    /// (torn tail, stray lines), and returns the journal positioned to
    /// append. A missing file is the same as a fresh [`Journal::create`].
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or a header/fingerprint mismatch.
    pub fn resume(
        path: &Path,
        fingerprint: &str,
        expected_ids: &[&str],
    ) -> Result<Journal, String> {
        if !path.exists() {
            return Journal::create(path, fingerprint, expected_ids.len());
        }
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("read {path:?}: {e}"))?;
        let mut lines = text.split_inclusive('\n');
        let header_text = lines.next().unwrap_or("");
        if !header_text.ends_with('\n') {
            return Err(format!(
                "{path:?}: truncated header; delete it to start over"
            ));
        }
        let header =
            json::parse(header_text.trim_end()).map_err(|e| format!("{path:?} header: {e}"))?;
        let version = header.get("das_harness_journal").and_then(Value::as_u64);
        if version != Some(JOURNAL_VERSION) {
            return Err(format!(
                "{path:?}: not a das_harness_journal v{JOURNAL_VERSION}"
            ));
        }
        if header.get("fp").and_then(Value::as_str) != Some(fingerprint) {
            return Err(format!(
                "{path:?} was written for a different manifest (fingerprint mismatch); \
                 delete it or pass the matching manifest"
            ));
        }
        if header.get("jobs").and_then(Value::as_u64) != Some(expected_ids.len() as u64) {
            return Err(format!("{path:?}: job count disagrees with the manifest"));
        }
        // Keep the longest valid prefix in expected-id order.
        let mut entries = Vec::new();
        let mut good_bytes = header_text.len() as u64;
        for line in lines {
            if !line.ends_with('\n') {
                break; // torn tail from a crash mid-append
            }
            if entries.len() >= expected_ids.len() {
                break; // stray lines beyond the manifest
            }
            let Ok(v) = json::parse(line.trim_end()) else {
                break;
            };
            if v.get("job").and_then(Value::as_str) != Some(expected_ids[entries.len()]) {
                break;
            }
            let Some(report) = v.get("report") else {
                break;
            };
            entries.push(report.clone());
            good_bytes += line.len() as u64;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("open {path:?}: {e}"))?;
        file.set_len(good_bytes)
            .map_err(|e| format!("truncate {path:?}: {e}"))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seek {path:?}: {e}"))?;
        Ok(Journal { file, entries })
    }

    /// Number of runs already journalled.
    pub fn done(&self) -> usize {
        self.entries.len()
    }

    /// Appends one completed run (fsync'd) and records it in `entries`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&mut self, job_id: &str, report: Value) -> Result<(), String> {
        self.file
            .write_all(run_line(job_id, &report).as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("append journal: {e}"))?;
        self.entries.push(report);
        Ok(())
    }
}

/// A fully parsed journal (used by `--validate-journal` and the tests).
pub struct JournalDoc {
    /// Manifest fingerprint recorded in the header.
    pub fingerprint: String,
    /// Expected job count recorded in the header.
    pub jobs: u64,
    /// `(job id, report)` per run line.
    pub runs: Vec<(String, Value)>,
}

/// Reads and structurally validates a journal: header shape, every line
/// strict JSON with `job` + `report`, unique job ids. Does **not** check
/// completeness — a valid partial journal is exactly what resume eats.
///
/// # Errors
///
/// Returns the first violation with its line number.
pub fn load(path: &Path) -> Result<JournalDoc, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {path:?}: {e}"))?;
    let mut lines = text.lines();
    let header =
        json::parse(lines.next().ok_or("empty journal")?).map_err(|e| format!("line 1: {e}"))?;
    if header.get("das_harness_journal").and_then(Value::as_u64) != Some(JOURNAL_VERSION) {
        return Err(format!(
            "line 1: not a das_harness_journal v{JOURNAL_VERSION}"
        ));
    }
    let fingerprint = header
        .get("fp")
        .and_then(Value::as_str)
        .ok_or("line 1: missing fp")?
        .to_string();
    let jobs = header
        .get("jobs")
        .and_then(Value::as_u64)
        .ok_or("line 1: missing jobs")?;
    let mut runs = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let id = v
            .get("job")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing job id"))?
            .to_string();
        if !seen.insert(id.clone()) {
            return Err(format!("line {lineno}: duplicate job {id:?}"));
        }
        let report = v
            .get("report")
            .ok_or_else(|| format!("line {lineno}: missing report"))?;
        runs.push((id, report.clone()));
    }
    if runs.len() as u64 > jobs {
        return Err(format!(
            "{} run lines but header promises {jobs}",
            runs.len()
        ));
    }
    Ok(JournalDoc {
        fingerprint,
        jobs,
        runs,
    })
}

// ---------------------------------------------------------------------------
// Service journal (das-serve)
// ---------------------------------------------------------------------------

/// Service-journal format version (line-1 schema).
pub const SERVE_JOURNAL_VERSION: u64 = 1;

/// The `das-serve` session journal: one fsync'd JSON line per lifecycle
/// event (`admit`, `done`, `failed`, `cancelled`, plus
/// `drain`/`drained`/`restart` markers). Unlike the run [`Journal`] it
/// stores no reports — it is the audit trail that lets a drained server
/// prove no job was orphaned: every admitted job must reach a terminal
/// event before exit. Admissions may carry the job's spec, which is what
/// lets a restarted worker *re-drive* jobs that were in flight when it
/// crashed instead of merely reporting them lost.
#[derive(Debug)]
pub struct ServiceJournal {
    file: File,
}

impl ServiceJournal {
    /// Creates (truncating) a fresh service journal.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> Result<ServiceJournal, String> {
        let mut file = File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
        let header = Value::obj()
            .set("das_serve_journal", SERVE_JOURNAL_VERSION)
            .render();
        file.write_all(header.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data())
            .map_err(|e| format!("write {path:?}: {e}"))?;
        Ok(ServiceJournal { file })
    }

    /// Re-opens a crashed worker's journal for crash recovery: validates
    /// the header, keeps the longest prefix of complete, parseable lines
    /// (a worker killed mid-append leaves a torn, newline-less tail — the
    /// same discipline as [`Journal::resume`]), truncates the file to that
    /// prefix, and returns the journal positioned to append together with
    /// the summary of the kept prefix. The summary's orphans (admitted,
    /// never terminal) are exactly the jobs the restarted worker must
    /// re-drive; their admissions stay journalled, so recovery appends
    /// only their terminal events. A missing file is the same as a fresh
    /// [`ServiceJournal::create`].
    ///
    /// # Errors
    ///
    /// Filesystem errors, a bad header, or a kept prefix that fails
    /// structural validation (which truncation cannot cause — it means
    /// the journal was corrupted in place, not torn).
    pub fn resume(path: &Path) -> Result<(ServiceJournal, ServiceSummary), String> {
        if !path.exists() {
            return Ok((ServiceJournal::create(path)?, ServiceSummary::default()));
        }
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("read {path:?}: {e}"))?;
        let mut lines = text.split_inclusive('\n');
        let header_text = lines.next().unwrap_or("");
        if !header_text.ends_with('\n') {
            return Err(format!(
                "{path:?}: truncated header; delete it to start over"
            ));
        }
        let header =
            json::parse(header_text.trim_end()).map_err(|e| format!("{path:?} header: {e}"))?;
        if header.get("das_serve_journal").and_then(Value::as_u64) != Some(SERVE_JOURNAL_VERSION) {
            return Err(format!(
                "{path:?}: not a das_serve_journal v{SERVE_JOURNAL_VERSION}"
            ));
        }
        let mut good_bytes = header_text.len() as u64;
        for line in lines {
            if !line.ends_with('\n') {
                break; // torn tail from a crash mid-append
            }
            if json::parse(line.trim_end()).is_err() {
                break;
            }
            good_bytes += line.len() as u64;
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| format!("open {path:?}: {e}"))?;
        file.set_len(good_bytes)
            .map_err(|e| format!("truncate {path:?}: {e}"))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| format!("seek {path:?}: {e}"))?;
        file.sync_data()
            .map_err(|e| format!("sync {path:?}: {e}"))?;
        let summary = load_service(path)?;
        Ok((ServiceJournal { file }, summary))
    }

    fn append(&mut self, line: Value) -> Result<(), String> {
        self.file
            .write_all(line.render().as_bytes())
            .and_then(|()| self.file.write_all(b"\n"))
            .and_then(|()| self.file.sync_data())
            .map_err(|e| format!("append service journal: {e}"))
    }

    /// Records a job admission.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn admit(&mut self, job: &str) -> Result<(), String> {
        self.append(Value::obj().set("event", "admit").set("job", job))
    }

    /// Records a job admission carrying the job's spec, making the job
    /// re-drivable after a crash ([`ServiceJournal::resume`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn admit_with_spec(&mut self, job: &str, spec: &Value) -> Result<(), String> {
        self.append(
            Value::obj()
                .set("event", "admit")
                .set("job", job)
                .set("spec", spec.clone()),
        )
    }

    /// Records a job's terminal event (`done`, `failed`, `cancelled`),
    /// with an optional error message.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn terminal(&mut self, event: &str, job: &str, error: Option<&str>) -> Result<(), String> {
        let mut v = Value::obj().set("event", event).set("job", job);
        if let Some(e) = error {
            v = v.set("error", e);
        }
        self.append(v)
    }

    /// Records a bare lifecycle marker (`drain`, `drained`).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn marker(&mut self, event: &str) -> Result<(), String> {
        self.append(Value::obj().set("event", event))
    }
}

/// Aggregate view of a parsed service journal.
#[derive(Debug, Default, PartialEq)]
pub struct ServiceSummary {
    /// Jobs admitted.
    pub admitted: u64,
    /// Jobs that completed successfully.
    pub done: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Worker restarts recorded (`restart` markers).
    pub restarts: u64,
    /// Admitted jobs with no terminal event — empty after a clean drain.
    pub orphans: Vec<String>,
    /// Per-orphan job spec, when the admission carried one
    /// ([`ServiceJournal::admit_with_spec`]); parallel to `orphans`.
    /// `Some` means the job can be re-driven after a crash.
    pub orphan_specs: Vec<(String, Option<Value>)>,
}

/// Reads and validates a `das-serve` session journal: header shape, every
/// line strict JSON with a known event, terminal events only for admitted
/// jobs, no duplicate terminals. The returned summary's `orphans` lists
/// admitted jobs that never reached a terminal event (non-empty means the
/// server exited without draining).
///
/// # Errors
///
/// Returns the first structural violation with its line number.
pub fn load_service(path: &Path) -> Result<ServiceSummary, String> {
    let mut text = String::new();
    File::open(path)
        .and_then(|mut f| f.read_to_string(&mut text))
        .map_err(|e| format!("read {path:?}: {e}"))?;
    let mut lines = text.lines();
    let header =
        json::parse(lines.next().ok_or("empty journal")?).map_err(|e| format!("line 1: {e}"))?;
    if header.get("das_serve_journal").and_then(Value::as_u64) != Some(SERVE_JOURNAL_VERSION) {
        return Err(format!(
            "line 1: not a das_serve_journal v{SERVE_JOURNAL_VERSION}"
        ));
    }
    let mut summary = ServiceSummary::default();
    let mut open: Vec<(String, Option<Value>)> = Vec::new();
    for (i, line) in lines.enumerate() {
        let lineno = i + 2;
        let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let event = v
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {lineno}: missing event"))?;
        let job = v.get("job").and_then(Value::as_str);
        match event {
            "admit" => {
                let id = job.ok_or_else(|| format!("line {lineno}: admit without job"))?;
                if open.iter().any(|(j, _)| j == id) {
                    return Err(format!("line {lineno}: job {id:?} admitted twice"));
                }
                open.push((id.to_string(), v.get("spec").cloned()));
                summary.admitted += 1;
            }
            "done" | "failed" | "cancelled" => {
                let id = job.ok_or_else(|| format!("line {lineno}: {event} without job"))?;
                let Some(pos) = open.iter().position(|(j, _)| j == id) else {
                    return Err(format!(
                        "line {lineno}: {event} for {id:?} which is not admitted/open"
                    ));
                };
                open.remove(pos);
                match event {
                    "done" => summary.done += 1,
                    "failed" => summary.failed += 1,
                    _ => summary.cancelled += 1,
                }
            }
            "restart" => summary.restarts += 1,
            "drain" | "drained" => {}
            other => return Err(format!("line {lineno}: unknown event {other:?}")),
        }
    }
    summary.orphans = open.iter().map(|(j, _)| j.clone()).collect();
    summary.orphan_specs = open;
    Ok(summary)
}

/// Converts journalled reports into the legacy `{"runs":[...]}` document
/// the bench `--json` flag always produced — the compatibility shim that
/// lets downstream consumers of `results/*.json` keep working unchanged.
pub fn runs_doc(reports: &[Value]) -> Value {
    Value::obj().set("runs", Value::Arr(reports.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(n: u64) -> Value {
        Value::obj().set("design", "DAS-DRAM").set("n", n)
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("das-harness-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn create_append_load_round_trip() {
        let path = tmp("round_trip.jsonl");
        let mut j = Journal::create(&path, "00ff", 2).unwrap();
        j.append("a", report(1)).unwrap();
        j.append("b", report(2)).unwrap();
        let doc = load(&path).unwrap();
        assert_eq!(doc.fingerprint, "00ff");
        assert_eq!(doc.jobs, 2);
        assert_eq!(doc.runs.len(), 2);
        assert_eq!(doc.runs[1].0, "b");
        assert_eq!(doc.runs[1].1.render(), report(2).render());
    }

    #[test]
    fn resume_keeps_valid_prefix_and_truncates_torn_tail() {
        let path = tmp("torn_tail.jsonl");
        {
            let mut j = Journal::create(&path, "abcd", 3).unwrap();
            j.append("a", report(1)).unwrap();
            j.append("b", report(2)).unwrap();
        }
        // Simulate a crash mid-append: torn, newline-less final line.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"c\",\"repo").unwrap();
        drop(f);
        let j = Journal::resume(&path, "abcd", &["a", "b", "c"]).unwrap();
        assert_eq!(j.done(), 2);
        let doc = load(&path).unwrap();
        assert_eq!(doc.runs.len(), 2, "torn line truncated away");
    }

    #[test]
    fn resume_rejects_wrong_fingerprint_and_wrong_order() {
        let path = tmp("wrong_fp.jsonl");
        {
            let mut j = Journal::create(&path, "1111", 2).unwrap();
            j.append("a", report(1)).unwrap();
        }
        assert!(Journal::resume(&path, "2222", &["a", "b"])
            .unwrap_err()
            .contains("fingerprint"));
        // Lines whose job id disagrees with the expected sequence are
        // dropped (with everything after them).
        let j = Journal::resume(&path, "1111", &["x", "a"]).unwrap();
        assert_eq!(j.done(), 0);
    }

    #[test]
    fn missing_file_resumes_as_fresh() {
        let path = tmp("fresh.jsonl");
        let _ = std::fs::remove_file(&path);
        let j = Journal::resume(&path, "feed", &["a"]).unwrap();
        assert_eq!(j.done(), 0);
        assert_eq!(load(&path).unwrap().fingerprint, "feed");
    }

    #[test]
    fn service_journal_round_trips_and_flags_orphans() {
        let path = tmp("service.jsonl");
        {
            let mut j = ServiceJournal::create(&path).unwrap();
            j.admit("t1/a").unwrap();
            j.admit("t1/b").unwrap();
            j.admit("t2/c").unwrap();
            j.terminal("done", "t1/a", None).unwrap();
            j.terminal("failed", "t1/b", Some("boom")).unwrap();
            j.marker("drain").unwrap();
        }
        let s = load_service(&path).unwrap();
        assert_eq!(s.admitted, 3);
        assert_eq!((s.done, s.failed, s.cancelled), (1, 1, 0));
        assert_eq!(s.orphans, vec!["t2/c".to_string()], "c never finished");
        // Close the orphan: the journal validates clean.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"event\":\"cancelled\",\"job\":\"t2/c\"}\n")
                .unwrap();
        }
        let s = load_service(&path).unwrap();
        assert!(s.orphans.is_empty());
        assert_eq!(s.cancelled, 1);
    }

    #[test]
    fn service_journal_rejects_structural_violations() {
        let path = tmp("service_bad.jsonl");
        let write = |lines: &str| {
            std::fs::write(&path, format!("{{\"das_serve_journal\":1}}\n{lines}")).unwrap()
        };
        write("{\"event\":\"done\",\"job\":\"x\"}\n");
        assert!(load_service(&path).unwrap_err().contains("not admitted"));
        write("{\"event\":\"admit\",\"job\":\"x\"}\n{\"event\":\"admit\",\"job\":\"x\"}\n");
        assert!(load_service(&path).unwrap_err().contains("twice"));
        write("{\"event\":\"warp\"}\n");
        assert!(load_service(&path).unwrap_err().contains("unknown event"));
        write("not json\n");
        assert!(load_service(&path).is_err());
        std::fs::write(&path, "{\"wrong\":1}\n").unwrap();
        assert!(load_service(&path)
            .unwrap_err()
            .contains("das_serve_journal"));
    }

    #[test]
    fn service_resume_recovers_orphans_with_specs() {
        let path = tmp("service_resume.jsonl");
        let spec = Value::obj().set("id", "a").set("design", "DAS-DRAM");
        {
            let mut j = ServiceJournal::create(&path).unwrap();
            j.admit_with_spec("t1/a", &spec).unwrap();
            j.admit("t1/b").unwrap();
            j.terminal("done", "t1/b", None).unwrap();
        }
        let (mut j, s) = ServiceJournal::resume(&path).unwrap();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.orphans, vec!["t1/a".to_string()]);
        assert_eq!(s.orphan_specs.len(), 1);
        assert_eq!(
            s.orphan_specs[0].1.as_ref().map(Value::render),
            Some(spec.render()),
            "spec survives the crash so the job can be re-driven"
        );
        // The resumed journal appends cleanly after the kept prefix.
        j.marker("restart").unwrap();
        j.terminal("done", "t1/a", None).unwrap();
        let s = load_service(&path).unwrap();
        assert!(s.orphans.is_empty());
        assert_eq!(s.restarts, 1);
        // A missing file resumes as fresh.
        let fresh = tmp("service_resume_fresh.jsonl");
        let _ = std::fs::remove_file(&fresh);
        let (_, s) = ServiceJournal::resume(&fresh).unwrap();
        assert_eq!(s, ServiceSummary::default());
    }

    #[test]
    fn service_resume_survives_truncation_at_every_byte_of_final_record() {
        // A worker killed mid-append can leave the journal cut at ANY byte
        // of the record being written. Resume must recover at every such
        // offset, losing at most that final record.
        let path = tmp("service_every_byte.jsonl");
        let spec = Value::obj().set("id", "c").set("insts", 1000u64);
        {
            let mut j = ServiceJournal::create(&path).unwrap();
            j.admit("t1/a").unwrap();
            j.terminal("done", "t1/a", None).unwrap();
            j.admit_with_spec("t1/c", &spec).unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let final_record = format!(
            "{}\n",
            Value::obj()
                .set("event", "admit")
                .set("job", "t1/c")
                .set("spec", spec.clone())
                .render()
        );
        assert!(full.ends_with(final_record.as_bytes()));
        let keep_base = full.len() - final_record.len();
        for cut in 0..=final_record.len() {
            let torn = tmp(&format!("service_cut_{cut}.jsonl"));
            std::fs::write(&torn, &full[..keep_base + cut]).unwrap();
            let (_, s) =
                ServiceJournal::resume(&torn).unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            assert_eq!(s.admitted - s.done, u64::from(cut == final_record.len()));
            if cut == final_record.len() {
                assert_eq!(s.orphans, vec!["t1/c".to_string()], "complete record kept");
            } else {
                assert!(s.orphans.is_empty(), "torn record at byte {cut} dropped");
            }
            // After truncation the journal validates clean and appends work.
            let (mut j, _) = ServiceJournal::resume(&torn).unwrap();
            j.marker("drained").unwrap();
            load_service(&torn).unwrap();
            std::fs::remove_file(&torn).unwrap();
        }
    }

    #[test]
    fn service_resume_rejects_bad_headers() {
        let path = tmp("service_resume_bad.jsonl");
        std::fs::write(&path, "{\"das_serve_journal\":1}").unwrap(); // no newline
        assert!(ServiceJournal::resume(&path)
            .unwrap_err()
            .contains("truncated header"));
        std::fs::write(&path, "{\"wrong\":1}\n").unwrap();
        assert!(ServiceJournal::resume(&path)
            .unwrap_err()
            .contains("das_serve_journal"));
    }

    #[test]
    fn runs_doc_matches_legacy_shape() {
        let doc = runs_doc(&[report(1), report(2)]);
        let text = doc.render();
        assert!(text.starts_with("{\"runs\":["));
        assert_eq!(doc.get("runs").and_then(Value::as_arr).unwrap().len(), 2);
    }
}
