//! The experiment orchestrator: executes any manifest (or the whole
//! catalog) in parallel with a resumable, fsync'd run journal, and renders
//! every experiment's text/JSON outputs from the journalled reports.
//!
//! Usage: `harness (--manifest PATH | --all | --exp a,b) [--insts N]
//! [--scale N] [--only a,b] [--threads N] [--resume] [--json-dir DIR]
//! [--emit-manifest PATH] [--validate-journal PATH]`.

fn main() {
    das_harness::cli::harness_main();
}
