//! The experiment catalog: every figure, table and ablation of the paper
//! as a pair of pure functions — `build` (parameters → [`JobSpec`] list)
//! and `render` (journalled reports → the exact text the original
//! `das-bench` binary printed).
//!
//! `build` encodes the run matrix; `render` never simulates. Job order
//! within each experiment mirrors the original binary's execution order,
//! so the `{"runs":[...]}` compatibility export keeps its historical
//! content order (the only deliberate difference: runs the old binaries
//! executed twice — `power`'s breakdown loop, `ablation_salp`'s baseline —
//! are journalled once and re-used, which deterministic simulation makes
//! an identical-output transformation).

use std::fmt::Write as _;

use das_dram::geometry::Arrangement;
use das_dram::tick::Tick;
use das_dram::timing::TimingSet;
use das_sim::config::SystemConfig;
use das_sim::stats::gmean_improvement;
use das_workloads::{mixes, spec};

use crate::manifest::{parse_design, JobSpec, Overrides};
use crate::render::{access_mix_line, improvement_table, pct, RenderCtx};
use crate::report::ReportView;

/// Parameters the run matrix is built from.
#[derive(Debug, Clone)]
pub struct BuildParams {
    /// Per-core instruction budget (single-programming experiments).
    pub insts: u64,
    /// Capacity scale factor.
    pub scale: u32,
    /// Restrict to a subset of benchmarks/mixes (empty = all).
    pub only: Vec<String>,
    /// File name (relative to the output directory) for the telemetry
    /// experiment's Chrome trace export.
    pub trace_name: String,
}

impl BuildParams {
    /// The historical defaults of every `das-bench` binary.
    pub fn new(insts: u64, scale: u32) -> BuildParams {
        BuildParams {
            insts,
            scale,
            only: Vec::new(),
            trace_name: "telemetry_trace.json".to_string(),
        }
    }
}

/// One catalog entry.
pub struct Experiment {
    /// Stable identifier (also the legacy binary name).
    pub id: &'static str,
    /// Builds the experiment's jobs in execution order.
    pub build: fn(&BuildParams) -> Vec<JobSpec>,
    /// Renders the experiment's text output from journalled reports.
    pub render: fn(&RenderCtx) -> String,
}

/// Every experiment, in `regenerate.sh` presentation order.
pub const ALL: &[Experiment] = &[
    Experiment {
        id: "table1",
        build: build_none,
        render: render_table1,
    },
    Experiment {
        id: "table2",
        build: build_none,
        render: render_table2,
    },
    Experiment {
        id: "fig7a",
        build: build_fig7a,
        render: render_fig7a,
    },
    Experiment {
        id: "fig7b",
        build: build_fig7b,
        render: render_fig7b,
    },
    Experiment {
        id: "fig7c",
        build: build_fig7c,
        render: render_fig7c,
    },
    Experiment {
        id: "fig7d",
        build: build_fig7d,
        render: render_fig7d,
    },
    Experiment {
        id: "fig7e",
        build: build_fig7e,
        render: render_fig7e,
    },
    Experiment {
        id: "fig7f",
        build: build_fig7f,
        render: render_fig7f,
    },
    Experiment {
        id: "fig8a",
        build: build_fig8a,
        render: render_fig8a,
    },
    Experiment {
        id: "fig8b",
        build: build_fig8b,
        render: render_fig8b,
    },
    Experiment {
        id: "fig8c",
        build: build_fig8c,
        render: render_fig8c,
    },
    Experiment {
        id: "fig9a",
        build: build_fig9a,
        render: render_fig9a,
    },
    Experiment {
        id: "fig9b",
        build: build_fig9b,
        render: render_fig9b,
    },
    Experiment {
        id: "fig9c",
        build: build_fig9c,
        render: render_fig9c,
    },
    Experiment {
        id: "fig9d",
        build: build_fig9d,
        render: render_fig9d,
    },
    Experiment {
        id: "power",
        build: build_power,
        render: render_power,
    },
    Experiment {
        id: "powerdown",
        build: build_powerdown,
        render: render_powerdown,
    },
    Experiment {
        id: "ablation_migration",
        build: build_ablation_migration,
        render: render_ablation_migration,
    },
    Experiment {
        id: "ablation_scheduler",
        build: build_ablation_scheduler,
        render: render_ablation_scheduler,
    },
    Experiment {
        id: "ablation_arrangement",
        build: build_ablation_arrangement,
        render: render_ablation_arrangement,
    },
    Experiment {
        id: "ablation_inclusive",
        build: build_ablation_inclusive,
        render: render_ablation_inclusive,
    },
    Experiment {
        id: "ablation_tldram",
        build: build_ablation_tldram,
        render: render_ablation_tldram,
    },
    Experiment {
        id: "ablation_salp",
        build: build_ablation_salp,
        render: render_ablation_salp,
    },
    Experiment {
        id: "ablation_pagepolicy",
        build: build_ablation_pagepolicy,
        render: render_ablation_pagepolicy,
    },
    Experiment {
        id: "fault_sweep",
        build: build_fault_sweep,
        render: render_fault_sweep,
    },
    Experiment {
        id: "telemetry",
        build: build_telemetry,
        render: render_telemetry,
    },
    Experiment {
        id: "cross_arch_rank",
        build: build_cross_arch_rank,
        render: render_cross_arch_rank,
    },
    Experiment {
        id: "cross_arch_mix",
        build: build_cross_arch_mix,
        render: render_cross_arch_mix,
    },
    Experiment {
        id: "cross_arch_sweep",
        build: build_cross_arch_sweep,
        render: render_cross_arch_sweep,
    },
    Experiment {
        id: "cross_arch_copy",
        build: build_cross_arch_copy,
        render: render_cross_arch_copy,
    },
    Experiment {
        id: "cross_arch_salp",
        build: build_cross_arch_salp,
        render: render_cross_arch_salp,
    },
    Experiment {
        id: "cross_arch_area",
        build: build_cross_arch_area,
        render: render_cross_arch_area,
    },
    Experiment {
        id: "coherent_rank",
        build: build_coherent_rank,
        render: render_coherent_rank,
    },
    Experiment {
        id: "coherent_protocol",
        build: build_coherent_protocol,
        render: render_coherent_protocol,
    },
    Experiment {
        id: "coherent_sharing",
        build: build_coherent_sharing,
        render: render_coherent_sharing,
    },
    Experiment {
        id: "policy_search_rank",
        build: build_policy_search_rank,
        render: render_policy_search_rank,
    },
    Experiment {
        id: "policy_search_size",
        build: build_policy_search_size,
        render: render_policy_search_size,
    },
    Experiment {
        id: "policy_search_adapt",
        build: build_policy_search_adapt,
        render: render_policy_search_adapt,
    },
];

/// Looks an experiment up by id.
pub fn by_id(id: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.id == id)
}

/// Every experiment id, in presentation order (what `harness --all` runs
/// and the `das-serve` catalog listing reports).
pub fn ids() -> Vec<&'static str> {
    ALL.iter().map(|e| e.id).collect()
}

/// Experiment-family prefixes, for grouped listings (`dasctl list`) and
/// the `--exp` unknown-id diagnostics. `power` deliberately covers
/// `powerdown` too.
pub const FAMILIES: [&str; 9] = [
    "table",
    "fig7",
    "fig8",
    "fig9",
    "power",
    "ablation",
    "cross_arch",
    "coherent",
    "policy_search",
];

/// The family an experiment id belongs to: the longest matching prefix
/// from [`FAMILIES`], or the id itself for one-off experiments
/// (`fault_sweep`, `telemetry`).
pub fn family_of(id: &str) -> &str {
    FAMILIES
        .iter()
        .find(|f| id.starts_with(*f))
        .copied()
        .unwrap_or(id)
}

// ---------------------------------------------------------------------------
// Shared building blocks
// ---------------------------------------------------------------------------

/// The Fig. 7 non-baseline design keys, paper order.
const FIG7_KEYS: [&str; 5] = ["sas", "charm", "das", "das_fm", "fs"];
/// Promotion-filter thresholds of Fig. 8.
const THRESHOLDS: [u32; 4] = [8, 4, 2, 1];
/// Fault-sweep rates and their id segments.
const FAULT_RATES: [(f64, &str); 4] = [
    (0.0, "r0"),
    (0.001, "r0.001"),
    (0.01, "r0.01"),
    (0.05, "r0.05"),
];
/// Telemetry epoch length in CPU cycles (the legacy binary's constant).
const EPOCH_CYCLES: u64 = 100_000;

fn filter(only: &[String], names: Vec<&'static str>) -> Vec<&'static str> {
    if only.is_empty() {
        names
    } else {
        names
            .into_iter()
            .filter(|n| only.iter().any(|o| o == n))
            .collect()
    }
}

fn singles(p: &BuildParams) -> Vec<&'static str> {
    filter(&p.only, spec::names())
}

fn mix_list(p: &BuildParams) -> Vec<&'static str> {
    filter(&p.only, mixes::names())
}

fn multi_insts(p: &BuildParams) -> u64 {
    (p.insts / 2).max(1)
}

fn job(p: &BuildParams, id: String, design: &str, workload: &str, ov: Overrides) -> JobSpec {
    JobSpec {
        id,
        design: design.to_string(),
        workload: workload.to_string(),
        insts: p.insts,
        scale: p.scale,
        seed: 42,
        ov,
    }
}

fn build_none(_p: &BuildParams) -> Vec<JobSpec> {
    Vec::new()
}

fn design_label(key: &str) -> &'static str {
    parse_design(key).expect("catalog design key").label()
}

/// Fig. 7a/7d layout: per workload, a Std-DRAM baseline plus the five
/// designs.
fn fig7_jobs(
    exp: &str,
    names: &[&str],
    workload_of: impl Fn(&str) -> String,
    insts: u64,
    p: &BuildParams,
) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in names {
        let wl = workload_of(name);
        for key in std::iter::once("std").chain(FIG7_KEYS) {
            jobs.push(JobSpec {
                id: format!("{exp}/{name}/{key}"),
                design: key.to_string(),
                workload: wl.clone(),
                insts,
                scale: p.scale,
                seed: 42,
                ov: Overrides::default(),
            });
        }
    }
    jobs
}

fn render_fig7_table(ctx: &RenderCtx, exp: &str, title: &str) -> String {
    let names = ctx.group_names();
    let columns: Vec<String> = FIG7_KEYS
        .iter()
        .map(|k| design_label(k).to_string())
        .collect();
    let rows: Vec<Vec<f64>> = names
        .iter()
        .map(|name| {
            let base = ctx.by_id(&format!("{exp}/{name}/std"));
            FIG7_KEYS
                .iter()
                .map(|key| {
                    ctx.by_id(&format!("{exp}/{name}/{key}"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    improvement_table(&mut out, title, &names, &columns, 14, &rows);
    out
}

/// Fig. 8a/9a/9b-style sweep: per workload a baseline plus one DAS run
/// per sweep point, rendered as an improvement table with a gmean row.
fn sweep_jobs(exp: &str, p: &BuildParams, points: &[(String, Overrides)]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("{exp}/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for (seg, ov) in points {
            jobs.push(job(
                p,
                format!("{exp}/{name}/{seg}"),
                "das",
                name,
                ov.clone(),
            ));
        }
    }
    jobs
}

fn render_sweep_table(
    ctx: &RenderCtx,
    exp: &str,
    title: &str,
    segs: &[&str],
    columns: &[String],
    width: usize,
) -> String {
    let names = ctx.group_names();
    let rows: Vec<Vec<f64>> = names
        .iter()
        .map(|name| {
            let base = ctx.by_id(&format!("{exp}/{name}/std"));
            segs.iter()
                .map(|seg| {
                    ctx.by_id(&format!("{exp}/{name}/{seg}"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    let mut out = String::new();
    improvement_table(&mut out, title, &names, columns, width, &rows);
    out
}

// ---------------------------------------------------------------------------
// Tables 1 and 2 (no simulation: pure configuration prints)
// ---------------------------------------------------------------------------

fn render_table1(ctx: &RenderCtx) -> String {
    let full = SystemConfig::paper_full();
    let cfg = SystemConfig::scaled_by(ctx.scale, ctx.insts);
    let t = TimingSet::asymmetric();
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Table 1: System Configuration (paper value -> simulated at scale {})",
        cfg.scale
    );
    let _ = writeln!(
        o,
        "Processor        3GHz, {}-wide issue, {}-entry ROB",
        full.core.width, full.core.rob_entries
    );
    let _ = writeln!(
        o,
        "Cache            {}KB 8-way private L1 ({} cyc), {}KB 8-way private L2 ({} cyc), {}MB 8-way shared LLC ({} cyc) -> LLC {}KB",
        full.hierarchy.l1_bytes >> 10,
        full.hierarchy.l1_latency,
        full.hierarchy.l2_bytes >> 10,
        full.hierarchy.l2_latency,
        full.hierarchy.llc_bytes >> 20,
        full.hierarchy.llc_latency,
        cfg.hierarchy.llc_bytes >> 10,
    );
    let _ = writeln!(
        o,
        "Mem Controller   {}-entry request queue, open-page policy, FR-FCFS",
        full.controller.read_queue
    );
    let _ = writeln!(
        o,
        "DRAM             {} GB DDR3-1600, {} channels, {} ranks/channel -> {} MB simulated",
        full.geometry.total_bytes() >> 30,
        full.geometry.channels,
        full.geometry.ranks_per_channel,
        cfg.geometry.total_bytes() >> 20,
    );
    let _ = writeln!(
        o,
        "                 tRCD: {:.2}ns, tRC: {:.2}ns",
        t.slow.trcd.as_ns(),
        t.slow.trc().as_ns()
    );
    let _ = writeln!(
        o,
        "Asym. DRAM       Fast-level capacity ratio: {}",
        cfg.management.fast_ratio
    );
    let _ = writeln!(
        o,
        "                 Migration group size: {} rows",
        cfg.management.group_size
    );
    let _ = writeln!(
        o,
        "                 Migration latency: {:.2}ns",
        t.swap.as_ns()
    );
    let _ = writeln!(
        o,
        "                 tRCD (fast/slow): {:.2}/{:.2}ns, tRC (fast/slow): {:.2}/{:.2}ns",
        t.fast.trcd.as_ns(),
        t.slow.trcd.as_ns(),
        t.fast.trc().as_ns(),
        t.slow.trc().as_ns()
    );
    let _ = writeln!(
        o,
        "                 Translation cache: {}KB full scale -> {}B simulated",
        cfg.management.tcache_bytes >> 10,
        cfg.scaled_tcache_bytes()
    );
    o
}

fn render_table2(_ctx: &RenderCtx) -> String {
    use das_workloads::config::Pattern;
    let mut o = String::new();
    let _ = writeln!(o, "# Table 2: Target Workloads");
    let _ = writeln!(o, "## Single-programming workloads");
    let _ = writeln!(
        o,
        "{:<12} {:>6} {:>10} {:>7} {:>6} {:>6}  pattern",
        "benchmark", "MPKI", "footprint", "write%", "dep%", "run"
    );
    for cfg in spec::spec2006() {
        let pattern = match &cfg.pattern {
            Pattern::Stream { streams } => format!("stream x{streams}"),
            Pattern::Layered { layers } => {
                let desc: Vec<String> = layers
                    .iter()
                    .map(|l| format!("{:.0}%@p{:.2}", l.frac * 100.0, l.prob))
                    .collect();
                format!("layered [{}]", desc.join(", "))
            }
        };
        let _ = writeln!(
            o,
            "{:<12} {:>6.1} {:>7}MB {:>6.0}% {:>5.0}% {:>6}  {}",
            cfg.name,
            cfg.mpki,
            cfg.footprint_bytes >> 20,
            cfg.write_frac * 100.0,
            cfg.dep_frac * 100.0,
            cfg.run_lines,
            pattern
        );
    }
    let _ = writeln!(o, "\n## Multi-programming workloads");
    for (name, benches) in mixes::MIXES {
        let _ = writeln!(o, "{name}  {}", benches.join(", "));
    }
    o
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

fn build_fig7a(p: &BuildParams) -> Vec<JobSpec> {
    fig7_jobs("fig7a", &singles(p), |n| n.to_string(), p.insts, p)
}

fn render_fig7a(ctx: &RenderCtx) -> String {
    render_fig7_table(
        ctx,
        "fig7a",
        "Figure 7a: Single-Programming Performance Improvements",
    )
}

fn build_fig7b(p: &BuildParams) -> Vec<JobSpec> {
    singles(p)
        .iter()
        .map(|name| {
            job(
                p,
                format!("fig7b/{name}/das"),
                "das",
                name,
                Overrides::default(),
            )
        })
        .collect()
}

fn render_fig7b(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Figure 7b: MPKI; PPKM; Footprints (single-programming, DAS-DRAM)"
    );
    let _ = writeln!(
        o,
        "{:<12} {:>8} {:>8} {:>14} {:>16}",
        "workload", "MPKI", "PPKM", "footprint(MB)", "paper-equiv(MB)"
    );
    for name in ctx.group_names() {
        let r = ctx.by_id(&format!("fig7b/{name}/das"));
        let fp = r.u64("metrics/footprint_bytes");
        let _ = writeln!(
            o,
            "{:<12} {:>8.1} {:>8.1} {:>14.1} {:>16.1}",
            name,
            r.f64("metrics/mpki"),
            r.f64("metrics/ppkm"),
            fp as f64 / (1 << 20) as f64,
            fp as f64 * ctx.scale as f64 / (1 << 20) as f64,
        );
    }
    o
}

fn access_mix_panels(
    exp: &'static str,
    names: Vec<&'static str>,
    workload_of: impl Fn(&str) -> String,
    insts: u64,
    p: &BuildParams,
) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for key in ["sas", "das"] {
        for name in &names {
            jobs.push(JobSpec {
                id: format!("{exp}/{name}/{key}"),
                design: key.to_string(),
                workload: workload_of(name),
                insts,
                scale: p.scale,
                seed: 42,
                ov: Overrides::default(),
            });
        }
    }
    jobs
}

fn render_access_mix_panels(ctx: &RenderCtx, exp: &str, title: &str) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "# {title}");
    for (panel, key) in [("Static (SAS-DRAM)", "sas"), ("Dynamic (DAS-DRAM)", "das")] {
        let _ = writeln!(o, "## {panel}");
        for name in ctx.group_names() {
            access_mix_line(&mut o, name, &ctx.by_id(&format!("{exp}/{name}/{key}")));
        }
    }
    o
}

fn build_fig7c(p: &BuildParams) -> Vec<JobSpec> {
    access_mix_panels("fig7c", singles(p), |n| n.to_string(), p.insts, p)
}

fn render_fig7c(ctx: &RenderCtx) -> String {
    render_access_mix_panels(
        ctx,
        "fig7c",
        "Figure 7c: Access Locations (single-programming)",
    )
}

fn build_fig7d(p: &BuildParams) -> Vec<JobSpec> {
    fig7_jobs(
        "fig7d",
        &mix_list(p),
        |n| format!("mix:{n}"),
        multi_insts(p),
        p,
    )
}

fn render_fig7d(ctx: &RenderCtx) -> String {
    render_fig7_table(
        ctx,
        "fig7d",
        "Figure 7d: Multi-Programming Performance Improvements",
    )
}

fn build_fig7e(p: &BuildParams) -> Vec<JobSpec> {
    mix_list(p)
        .iter()
        .map(|name| JobSpec {
            id: format!("fig7e/{name}/das"),
            design: "das".to_string(),
            workload: format!("mix:{name}"),
            insts: multi_insts(p),
            scale: p.scale,
            seed: 42,
            ov: Overrides::default(),
        })
        .collect()
}

fn render_fig7e(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Figure 7e: MPKI; PPKM; Footprints (multi-programming, DAS-DRAM)"
    );
    let _ = writeln!(
        o,
        "{:<4} {:>8} {:>8} {:>14}",
        "mix", "MPKI", "PPKM", "footprint(MB)"
    );
    for name in ctx.group_names() {
        let r = ctx.by_id(&format!("fig7e/{name}/das"));
        let _ = writeln!(
            o,
            "{:<4} {:>8.1} {:>8.1} {:>14.1}",
            name,
            r.f64("metrics/mpki"),
            r.f64("metrics/ppkm"),
            r.u64("metrics/footprint_bytes") as f64 / (1 << 20) as f64
        );
    }
    o
}

fn build_fig7f(p: &BuildParams) -> Vec<JobSpec> {
    access_mix_panels(
        "fig7f",
        mix_list(p),
        |n| format!("mix:{n}"),
        multi_insts(p),
        p,
    )
}

fn render_fig7f(ctx: &RenderCtx) -> String {
    render_access_mix_panels(
        ctx,
        "fig7f",
        "Figure 7f: Access Locations (multi-programming)",
    )
}

// ---------------------------------------------------------------------------
// Figure 8 (promotion-filter thresholds)
// ---------------------------------------------------------------------------

fn threshold_ov(t: u32) -> Overrides {
    Overrides {
        threshold: Some(t),
        ..Overrides::default()
    }
}

fn build_fig8a(p: &BuildParams) -> Vec<JobSpec> {
    let points: Vec<(String, Overrides)> = THRESHOLDS
        .iter()
        .map(|&t| (format!("t{t}"), threshold_ov(t)))
        .collect();
    sweep_jobs("fig8a", p, &points)
}

fn render_fig8a(ctx: &RenderCtx) -> String {
    let segs: Vec<String> = THRESHOLDS.iter().map(|t| format!("t{t}")).collect();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let columns: Vec<String> = THRESHOLDS
        .iter()
        .map(|t| format!("threshold {t}"))
        .collect();
    render_sweep_table(
        ctx,
        "fig8a",
        "Figure 8a: Filtering Policies - Performance Improvement",
        &seg_refs,
        &columns,
        12,
    )
}

fn build_fig8b(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for t in THRESHOLDS {
            jobs.push(job(
                p,
                format!("fig8b/{name}/t{t}"),
                "das",
                name,
                threshold_ov(t),
            ));
        }
    }
    jobs
}

fn render_fig8b(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "# Figure 8b: Access Locations vs Promotion Threshold");
    for name in ctx.group_names() {
        let _ = writeln!(o, "## {name}");
        for t in THRESHOLDS {
            access_mix_line(
                &mut o,
                &format!("threshold {t}"),
                &ctx.by_id(&format!("fig8b/{name}/t{t}")),
            );
        }
    }
    o
}

fn build_fig8c(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for t in THRESHOLDS {
            jobs.push(job(
                p,
                format!("fig8c/{name}/t{t}"),
                "das",
                name,
                threshold_ov(t),
            ));
        }
    }
    jobs
}

fn render_fig8c(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "# Figure 8c: Promotion/Access Ratio vs Threshold");
    let _ = write!(o, "{:<12}", "workload");
    for t in THRESHOLDS {
        let _ = write!(o, " {:>12}", format!("threshold {t}"));
    }
    let _ = writeln!(o);
    for name in ctx.group_names() {
        let _ = write!(o, "{name:<12}");
        for t in THRESHOLDS {
            let r = ctx.by_id(&format!("fig8c/{name}/t{t}"));
            let (promos, accesses) = (
                r.u64("metrics/promotions"),
                r.u64("metrics/memory_accesses"),
            );
            let ppa = if accesses == 0 {
                0.0
            } else {
                promos as f64 / accesses as f64
            };
            let _ = write!(o, " {:>11.2}%", ppa * 100.0);
        }
        let _ = writeln!(o);
    }
    o
}

// ---------------------------------------------------------------------------
// Figure 9 (translation cache, group size, fast-level ratio)
// ---------------------------------------------------------------------------

const CAPS_KB: [u64; 4] = [32, 64, 128, 256];
const GROUPS: [u32; 4] = [8, 16, 32, 64];
const RATIO_DENS: [u32; 4] = [32, 16, 8, 4];

fn build_fig9a(p: &BuildParams) -> Vec<JobSpec> {
    let points: Vec<(String, Overrides)> = CAPS_KB
        .iter()
        .map(|&kb| {
            (
                format!("kb{kb}"),
                Overrides {
                    tcache_bytes: Some(kb << 10),
                    ..Overrides::default()
                },
            )
        })
        .collect();
    sweep_jobs("fig9a", p, &points)
}

fn render_fig9a(ctx: &RenderCtx) -> String {
    let segs: Vec<String> = CAPS_KB.iter().map(|kb| format!("kb{kb}")).collect();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let columns: Vec<String> = CAPS_KB.iter().map(|kb| format!("{kb} KB")).collect();
    render_sweep_table(
        ctx,
        "fig9a",
        "Figure 9a: Translation Cache Capacities (full-scale labels)",
        &seg_refs,
        &columns,
        10,
    )
}

fn build_fig9b(p: &BuildParams) -> Vec<JobSpec> {
    let points: Vec<(String, Overrides)> = GROUPS
        .iter()
        .map(|&g| {
            (
                format!("g{g}"),
                Overrides {
                    group_size: Some(g),
                    ..Overrides::default()
                },
            )
        })
        .collect();
    sweep_jobs("fig9b", p, &points)
}

fn render_fig9b(ctx: &RenderCtx) -> String {
    let segs: Vec<String> = GROUPS.iter().map(|g| format!("g{g}")).collect();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let columns: Vec<String> = GROUPS.iter().map(|g| format!("{g}-row")).collect();
    render_sweep_table(
        ctx,
        "fig9b",
        "Figure 9b: Sizes of Migration Group",
        &seg_refs,
        &columns,
        12,
    )
}

fn ratio_points(replacement: &str) -> Vec<(String, Overrides)> {
    RATIO_DENS
        .iter()
        .map(|&den| {
            (
                format!("d{den}"),
                Overrides {
                    fast_ratio_den: Some(den),
                    replacement: Some(replacement.to_string()),
                    ..Overrides::default()
                },
            )
        })
        .collect()
}

fn render_ratio_sweep(ctx: &RenderCtx, exp: &str, title: &str) -> String {
    let segs: Vec<String> = RATIO_DENS.iter().map(|d| format!("d{d}")).collect();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let columns: Vec<String> = RATIO_DENS.iter().map(|d| format!("1/{d}")).collect();
    render_sweep_table(ctx, exp, title, &seg_refs, &columns, 10)
}

fn build_fig9c(p: &BuildParams) -> Vec<JobSpec> {
    sweep_jobs("fig9c", p, &ratio_points("random"))
}

fn render_fig9c(ctx: &RenderCtx) -> String {
    render_ratio_sweep(
        ctx,
        "fig9c",
        "Figure 9c: Ratios of Fast Level with Random Replacement",
    )
}

fn build_fig9d(p: &BuildParams) -> Vec<JobSpec> {
    sweep_jobs("fig9d", p, &ratio_points("lru"))
}

fn render_fig9d(ctx: &RenderCtx) -> String {
    render_ratio_sweep(
        ctx,
        "fig9d",
        "Figure 9d: Ratios of Fast Level with LRU Replacement",
    )
}

// ---------------------------------------------------------------------------
// §7.7 power and the partial power-down extension
// ---------------------------------------------------------------------------

fn build_power(p: &BuildParams) -> Vec<JobSpec> {
    fig7_jobs("power", &singles(p), |n| n.to_string(), p.insts, p)
}

fn render_power(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# §7.7 Power Implications: DRAM energy relative to Std-DRAM"
    );
    let _ = writeln!(
        o,
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "SAS", "CHARM", "DAS", "DAS(FM)", "FS"
    );
    let names = ctx.group_names();
    for name in &names {
        let base_e = ctx
            .by_id(&format!("power/{name}/std"))
            .f64("metrics/energy_nj/total");
        let _ = write!(o, "{name:<12}");
        for key in FIG7_KEYS {
            let e = ctx
                .by_id(&format!("power/{name}/{key}"))
                .f64("metrics/energy_nj/total");
            let _ = write!(o, " {:>9.3}x", e / base_e);
        }
        let _ = writeln!(o);
    }
    let _ = writeln!(o, "\n(breakdown for DAS-DRAM)");
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "act/pre nJ", "burst nJ", "migration nJ", "background nJ"
    );
    for name in &names {
        let r = ctx.by_id(&format!("power/{name}/das"));
        let _ = writeln!(
            o,
            "{name:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            r.f64("metrics/energy_nj/act_pre"),
            r.f64("metrics/energy_nj/burst"),
            r.f64("metrics/energy_nj/migration"),
            r.f64("metrics/energy_nj/background")
        );
    }
    o
}

/// Power-down entry + exit + hysteresis charged per slow-subarray access
/// burst, in nanoseconds (the legacy binary's constant).
const PD_OVERHEAD_NS: f64 = 50.0;
/// Fraction of die area in slow subarrays at the paper's 1/8 ratio.
const SLOW_AREA_FRACTION: f64 = 8.0 / 9.0;

fn build_powerdown(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for key in ["std", "sas", "das"] {
            jobs.push(job(
                p,
                format!("powerdown/{name}/{key}"),
                key,
                name,
                Overrides::default(),
            ));
        }
    }
    jobs
}

fn render_powerdown(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "# Extension: Partial Power-Down Opportunity (§1)");
    let _ = writeln!(
        o,
        "{:<12} {:>10} {:>14} {:>14} {:>16}",
        "workload", "design", "slow act %", "pd residency", "bg power saved"
    );
    for name in ctx.group_names() {
        for key in ["std", "sas", "das"] {
            let r = ctx.by_id(&format!("powerdown/{name}/{key}"));
            let window_ns = r.u64("metrics/window_cycles") as f64 / 3.0;
            let slow_acts = r.u64("metrics/access_mix/slow") as f64;
            let slow_subarrays =
                (r.u64("metrics/total_subarrays") as f64 * SLOW_AREA_FRACTION).max(1.0);
            let rate_per_sub = slow_acts / slow_subarrays / window_ns;
            let residency = (1.0 - rate_per_sub * PD_OVERHEAD_NS).max(0.0);
            let saved = SLOW_AREA_FRACTION * residency;
            let _ = writeln!(
                o,
                "{:<12} {:>10} {:>13.1}% {:>13.1}% {:>15.1}%",
                name,
                r.str("design"),
                r.access_fractions().2 * 100.0,
                residency * 100.0,
                saved * 100.0
            );
        }
        let _ = writeln!(o);
    }
    let _ = writeln!(
        o,
        "Std-DRAM spreads activations over every subarray; DAS-DRAM's\n\
         migration concentrates them into the fast 11% of the die, letting\n\
         the slow majority nap — the §1 partial power-down claim quantified."
    );
    o
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

/// Migration-mechanism variants: `(render label, id segment, swap ticks)`.
fn migration_variants() -> [(String, String, u64); 4] {
    let trc = TimingSet::asymmetric().slow.trc();
    [
        ("free".to_string(), "free".to_string(), 0),
        (
            "paper 3tRC".to_string(),
            "paper".to_string(),
            (3 * trc).raw(),
        ),
        (
            "naive 4.5tRC".to_string(),
            "naive".to_string(),
            trc.raw() * 9 / 2,
        ),
        (
            "untight 6tRC".to_string(),
            "untight".to_string(),
            (6 * trc).raw(),
        ),
    ]
}

fn build_ablation_migration(p: &BuildParams) -> Vec<JobSpec> {
    let points: Vec<(String, Overrides)> = migration_variants()
        .into_iter()
        .map(|(_, seg, swap)| {
            (
                seg,
                Overrides {
                    swap_ticks: Some(swap),
                    ..Overrides::default()
                },
            )
        })
        .collect();
    sweep_jobs("ablation_migration", p, &points)
}

fn render_ablation_migration(ctx: &RenderCtx) -> String {
    let variants = migration_variants();
    let segs: Vec<&str> = variants.iter().map(|(_, seg, _)| seg.as_str()).collect();
    let columns: Vec<String> = variants.iter().map(|(label, _, _)| label.clone()).collect();
    render_sweep_table(
        ctx,
        "ablation_migration",
        "Ablation: Migration Mechanism (DAS-DRAM improvement over Std-DRAM)",
        &segs,
        &columns,
        14,
    )
}

fn build_ablation_scheduler(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for (design, sched) in [
            ("std", "frfcfs"),
            ("std", "fcfs"),
            ("das", "frfcfs"),
            ("das", "fcfs"),
        ] {
            jobs.push(job(
                p,
                format!("ablation_scheduler/{name}/{design}_{sched}"),
                design,
                name,
                Overrides {
                    scheduler: Some(sched.to_string()),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_ablation_scheduler(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "# Ablation: Scheduler (IPC under FR-FCFS vs FCFS)");
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std frfcfs", "Std fcfs", "DAS frfcfs", "DAS fcfs"
    );
    for name in ctx.group_names() {
        let ipc = |seg: &str| {
            ctx.by_id(&format!("ablation_scheduler/{name}/{seg}"))
                .core_ipcs()[0]
        };
        let _ = writeln!(
            o,
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            name,
            ipc("std_frfcfs"),
            ipc("std_fcfs"),
            ipc("das_frfcfs"),
            ipc("das_fcfs")
        );
    }
    o
}

/// The §Fig. 5 arrangement variants: `(label, id segment, arrangement key,
/// mean hop count on the full-scale bank, swap ticks at that hop count)`.
fn arrangement_variants() -> [(&'static str, &'static str, &'static str, u32, u64); 2] {
    use das_core::groups::BankGroups;
    use das_core::migration::MigrationModel;
    use das_dram::geometry::BankLayout;
    let mgmt = SystemConfig::paper_full().management;
    let base_t = TimingSet::asymmetric();
    let model = MigrationModel::with_hop_cost(base_t, Tick::new(base_t.slow.trc().raw() / 2));
    let mut out = [("reduced-interleaving", "reduced", "reduced", 0, 0); 2];
    for (slot, (label, seg, key, arr)) in out.iter_mut().zip([
        (
            "reduced-interleaving",
            "reduced",
            "reduced",
            Arrangement::ReducedInterleaving,
        ),
        (
            "partitioning",
            "partitioning",
            "partitioning",
            Arrangement::Partitioning,
        ),
    ]) {
        // Hop distance is a property of the full-scale physical design, so
        // compute it on the paper's 32768-row bank regardless of scale.
        let full = BankLayout::build(32768, mgmt.fast_ratio, arr, 128, 512);
        let groups = BankGroups::new(32768, mgmt.group_size, mgmt.fast_ratio);
        let hops = groups.mean_intra_group_hops(&full).round().max(1.0) as u32;
        *slot = (label, seg, key, hops, model.swap(hops.max(1)).raw());
    }
    out
}

fn build_ablation_arrangement(p: &BuildParams) -> Vec<JobSpec> {
    let variants = arrangement_variants();
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("ablation_arrangement/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for (_, seg, key, _, swap) in variants {
            jobs.push(job(
                p,
                format!("ablation_arrangement/{name}/{seg}"),
                "das",
                name,
                Overrides {
                    arrangement: Some(key.to_string()),
                    swap_ticks: Some(swap),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_ablation_arrangement(ctx: &RenderCtx) -> String {
    let variants = arrangement_variants();
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Ablation: Subarray Arrangement (DAS-DRAM improvement over Std-DRAM)"
    );
    let _ = write!(o, "{:<12}", "workload");
    for (label, ..) in variants {
        let _ = write!(o, " {label:>22}");
    }
    let _ = writeln!(o);
    let names = ctx.group_names();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for name in &names {
        let base = ctx.by_id(&format!("ablation_arrangement/{name}/std"));
        let _ = write!(o, "{name:<12}");
        for (i, (_, seg, _, hops, _)) in variants.iter().enumerate() {
            let imp = ctx
                .by_id(&format!("ablation_arrangement/{name}/{seg}"))
                .improvement_over(&base);
            cols[i].push(imp);
            let _ = write!(o, " {:>22}", format!("{} (hops {})", pct(imp), hops));
        }
        let _ = writeln!(o);
    }
    let _ = write!(o, "{:<12}", "gmean");
    for col in &cols {
        let _ = write!(o, " {:>22}", pct(gmean_improvement(col)));
    }
    let _ = writeln!(o);
    o
}

fn build_ablation_inclusive(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for key in ["std", "das", "das_incl"] {
            jobs.push(job(
                p,
                format!("ablation_inclusive/{name}/{key}"),
                key,
                name,
                Overrides::default(),
            ));
        }
    }
    jobs
}

fn render_ablation_inclusive(ctx: &RenderCtx) -> String {
    let cfg = SystemConfig::scaled_by(ctx.scale, ctx.insts);
    let layout = cfg.bank_layout();
    let usable_excl = cfg.geometry.total_bytes() - cfg.geometry.total_rows();
    let dup = layout.fast_rows() as u64
        * cfg.geometry.total_banks() as u64
        * cfg.geometry.row_bytes as u64;
    let mut o = String::new();
    let _ = writeln!(o, "# Ablation: Exclusive vs Inclusive Management (§5)");
    let _ = writeln!(
        o,
        "usable capacity: exclusive {} MB, inclusive {} MB ({:.1}% lost to duplication)\n",
        usable_excl >> 20,
        (usable_excl - dup) >> 20,
        dup as f64 / usable_excl as f64 * 100.0
    );
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "workload", "exclusive", "inclusive", "excl promos", "incl promos"
    );
    let names = ctx.group_names();
    let mut excl_col = Vec::new();
    let mut incl_col = Vec::new();
    for name in &names {
        let base = ctx.by_id(&format!("ablation_inclusive/{name}/std"));
        let e = ctx.by_id(&format!("ablation_inclusive/{name}/das"));
        let i = ctx.by_id(&format!("ablation_inclusive/{name}/das_incl"));
        let (ei, ii) = (e.improvement_over(&base), i.improvement_over(&base));
        excl_col.push(ei);
        incl_col.push(ii);
        let _ = writeln!(
            o,
            "{:<12} {:>12} {:>12} {:>14} {:>14}",
            name,
            pct(ei),
            pct(ii),
            e.u64("metrics/promotions"),
            i.u64("metrics/promotions")
        );
    }
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12}",
        "gmean",
        pct(gmean_improvement(&excl_col)),
        pct(gmean_improvement(&incl_col))
    );
    let _ = writeln!(
        o,
        "\nPerformance is comparable; the exclusive design is adopted for the\n\
         ~12.5% capacity it refuses to forfeit (§5: \"we adopt the\n\
         exclusive-cache approach mainly because of the total capacity concern\")."
    );
    o
}

fn build_ablation_tldram(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for key in ["std", "tl", "das"] {
            jobs.push(job(
                p,
                format!("ablation_tldram/{name}/{key}"),
                key,
                name,
                Overrides::default(),
            ));
        }
    }
    jobs
}

fn render_ablation_tldram(ctx: &RenderCtx) -> String {
    use das_dram::area::{AsymmetricAreaModel, TlDramAreaModel};
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Ablation: TL-DRAM vs DAS-DRAM (improvement over Std-DRAM)"
    );
    let _ = writeln!(
        o,
        "area overhead: TL-DRAM {:.1}%  |  DAS-DRAM {:.1}%\n",
        TlDramAreaModel::default().overhead() * 100.0,
        AsymmetricAreaModel::default().overhead() * 100.0
    );
    let _ = writeln!(o, "{:<12} {:>12} {:>12}", "workload", "TL-DRAM", "DAS-DRAM");
    let names = ctx.group_names();
    let mut tl_col = Vec::new();
    let mut das_col = Vec::new();
    for name in &names {
        let base = ctx.by_id(&format!("ablation_tldram/{name}/std"));
        let tl = ctx
            .by_id(&format!("ablation_tldram/{name}/tl"))
            .improvement_over(&base);
        let das = ctx
            .by_id(&format!("ablation_tldram/{name}/das"))
            .improvement_over(&base);
        tl_col.push(tl);
        das_col.push(das);
        let _ = writeln!(o, "{:<12} {:>12} {:>12}", name, pct(tl), pct(das));
    }
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12}",
        "gmean",
        pct(gmean_improvement(&tl_col)),
        pct(gmean_improvement(&das_col))
    );
    let _ = writeln!(
        o,
        "\nTL-DRAM's larger near level helps, but every far-segment access\n\
         pays the isolation penalty and the design costs ~4x the silicon;\n\
         DAS reaches comparable speed at commodity-compatible overhead."
    );
    o
}

/// SALP combos: `(id segment, column label, design key, salp on)`.
const SALP_COMBOS: [(&str, &str, &str, bool); 4] = [
    ("std", "Std", "std", false),
    ("std_salp", "Std+SALP", "std", true),
    ("das", "DAS", "das", false),
    ("das_salp", "DAS+SALP", "das", true),
];

fn build_ablation_salp(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        for (seg, _, key, salp) in SALP_COMBOS {
            jobs.push(job(
                p,
                format!("ablation_salp/{name}/{seg}"),
                key,
                name,
                Overrides {
                    salp: Some(salp),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_ablation_salp(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Ablation: SALP Composition (improvement over Std-DRAM without SALP)"
    );
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std", "Std+SALP", "DAS", "DAS+SALP"
    );
    let names = ctx.group_names();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); SALP_COMBOS.len()];
    for name in &names {
        let base = ctx.by_id(&format!("ablation_salp/{name}/std"));
        let _ = write!(o, "{name:<12}");
        for (i, (seg, ..)) in SALP_COMBOS.iter().enumerate() {
            let v = ctx
                .by_id(&format!("ablation_salp/{name}/{seg}"))
                .improvement_over(&base);
            cols[i].push(v);
            let _ = write!(o, " {:>12}", pct(v));
        }
        let _ = writeln!(o);
    }
    let _ = write!(o, "{:<12}", "gmean");
    for col in &cols {
        let _ = write!(o, " {:>12}", pct(gmean_improvement(col)));
    }
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "\nSALP removes row-buffer conflicts; DAS removes activation latency —\n\
         the two compose, as §8 argues for parallelism-oriented proposals."
    );
    o
}

/// Page-policy combos: `(id segment, design key, policy key)`.
const PAGE_COMBOS: [(&str, &str, &str); 4] = [
    ("std_closed", "std", "closed"),
    ("das_open", "das", "open"),
    ("das_closed", "das", "closed"),
    ("fs_open", "fs", "open"),
];

fn build_ablation_pagepolicy(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("ablation_pagepolicy/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for (seg, key, policy) in PAGE_COMBOS {
            jobs.push(job(
                p,
                format!("ablation_pagepolicy/{name}/{seg}"),
                key,
                name,
                Overrides {
                    page_policy: Some(policy.to_string()),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_ablation_pagepolicy(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Ablation: Page Policy (improvement over open-page Std-DRAM)"
    );
    let _ = writeln!(
        o,
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std closed", "DAS open", "DAS closed", "FS open"
    );
    let names = ctx.group_names();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); PAGE_COMBOS.len()];
    for name in &names {
        let base = ctx.by_id(&format!("ablation_pagepolicy/{name}/std"));
        let _ = write!(o, "{name:<12}");
        for (i, (seg, ..)) in PAGE_COMBOS.iter().enumerate() {
            let v = ctx
                .by_id(&format!("ablation_pagepolicy/{name}/{seg}"))
                .improvement_over(&base);
            cols[i].push(v);
            let _ = write!(o, " {:>12}", pct(v));
        }
        let _ = writeln!(o);
    }
    let _ = write!(o, "{:<12}", "gmean");
    for col in &cols {
        let _ = write!(o, " {:>12}", pct(gmean_improvement(col)));
    }
    let _ = writeln!(o);
    o
}

// ---------------------------------------------------------------------------
// Fault sweep and telemetry
// ---------------------------------------------------------------------------

fn build_fault_sweep(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for key in FIG7_KEYS {
        jobs.push(job(
            p,
            format!("fault_sweep/{key}/clean"),
            key,
            "mcf",
            Overrides::default(),
        ));
        for (rate, seg) in FAULT_RATES {
            jobs.push(job(
                p,
                format!("fault_sweep/{key}/{seg}"),
                key,
                "mcf",
                Overrides {
                    fault_rate: Some(rate),
                    invariant_check_events: (rate > 0.0).then_some(10_000),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

/// Deterministic fields of a run, for the rate-0 bit-identity proof.
fn fault_fingerprint(r: &ReportView) -> (u64, u64, u64, u64, u64) {
    (
        r.u64("metrics/promotions"),
        r.u64("metrics/memory_accesses"),
        r.u64("metrics/llc_misses"),
        r.u64("metrics/window_cycles"),
        r.u64("metrics/access_mix/row_buffer"),
    )
}

fn render_fault_sweep(ctx: &RenderCtx) -> String {
    let bench = &ctx.jobs[0].workload;
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# fault sweep over {bench}: five designs x uniform rates"
    );
    let _ = writeln!(
        o,
        "{:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8}",
        "design", "rate", "injected", "retried", "recovered", "fatal", "audits", "rebuilds", "ipc"
    );
    for key in FIG7_KEYS {
        let clean = ctx.by_id(&format!("fault_sweep/{key}/clean"));
        for (rate, seg) in FAULT_RATES {
            let r = ctx.by_id(&format!("fault_sweep/{key}/{seg}"));
            if rate == 0.0 {
                assert_eq!(
                    fault_fingerprint(&r),
                    fault_fingerprint(&clean),
                    "{}: rate-0 plan must be bit-identical to no injection",
                    design_label(key)
                );
                assert_eq!(r.u64("metrics/faults/injected"), 0);
            }
            let _ = writeln!(
                o,
                "{:<14} {:>8.3} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8.3}",
                design_label(key),
                rate,
                r.u64("metrics/faults/injected"),
                r.u64("metrics/faults/retried"),
                r.u64("metrics/faults/recovered"),
                r.u64("metrics/faults/fatal"),
                r.u64("metrics/faults/invariant_checks_passed"),
                r.u64("metrics/faults/tcache_rebuilds"),
                r.core_ipcs()[0],
            );
        }
    }
    let _ = writeln!(
        o,
        "\nrate-0 runs verified bit-identical to uninjected runs for all designs"
    );
    o
}

fn build_telemetry(p: &BuildParams) -> Vec<JobSpec> {
    vec![JobSpec {
        id: "telemetry/mcf/das".to_string(),
        design: "das".to_string(),
        workload: "mcf".to_string(),
        insts: p.insts,
        scale: p.scale,
        seed: 42,
        ov: Overrides {
            telemetry_epoch: Some(EPOCH_CYCLES),
            trace_path: Some(p.trace_name.clone()),
            ..Overrides::default()
        },
    }]
}

fn render_telemetry(ctx: &RenderCtx) -> String {
    let job = &ctx.jobs[0];
    let bench = &job.workload;
    let epoch_cycles = job.ov.telemetry_epoch.expect("telemetry job has an epoch");
    let r = ctx.by_id(&job.id);
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# telemetry: DAS-DRAM over {bench} ({epoch_cycles}-cycle epochs)"
    );
    let _ = writeln!(o, "\n## per-class latency (ticks, merged over channels)");
    let _ = writeln!(
        o,
        "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "class", "count", "p50", "p95", "p99", "max"
    );
    for class in ["row_buffer", "fast", "slow"] {
        let h = |field: &str| r.u64(&format!("telemetry/latency_ticks/{class}/{field}"));
        let _ = writeln!(
            o,
            "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8}",
            class,
            h("count"),
            h("p50"),
            h("p95"),
            h("p99"),
            h("max")
        );
    }
    let _ = writeln!(o, "\n## epoch series (first 20 epochs)");
    let _ = writeln!(
        o,
        "{:<6} {:>8} {:>11} {:>8} {:>8} {:>10} {:>7} {:>7}",
        "epoch", "ipc", "fast-ratio", "reads", "writes", "promotions", "rdq", "wrq"
    );
    let samples = r.arr("telemetry/epochs");
    for s in samples.iter().take(20) {
        let s = ReportView(s);
        let _ = writeln!(
            o,
            "{:<6} {:>8.3} {:>11.3} {:>8} {:>8} {:>10} {:>7} {:>7}",
            s.u64("epoch"),
            s.f64("ipc"),
            s.f64("fast_ratio"),
            s.u64("reads"),
            s.u64("writes"),
            s.u64("promotions"),
            s.u64("read_queue"),
            s.u64("write_queue")
        );
    }
    let promotions = r.u64("metrics/promotions");
    if samples.len() >= 4 && promotions > 0 {
        let first = ReportView(&samples[0]).f64("fast_ratio");
        let later: Vec<f64> = samples[samples.len() / 2..]
            .iter()
            .map(|s| ReportView(s).f64("fast_ratio"))
            .collect();
        let later_avg = later.iter().sum::<f64>() / later.len() as f64;
        assert!(
            later_avg > first,
            "fast-activation ratio must rise during warm-up \
             (first {first:.3}, later avg {later_avg:.3})"
        );
        let _ = writeln!(
            o,
            "\nfast-activation ratio rose {:.3} -> {:.3} as promotions filled the fast level",
            first, later_avg
        );
    }
    let _ = writeln!(
        o,
        "\n{} trace events, {} epochs sampled",
        r.u64("telemetry/trace_events"),
        samples.len()
    );
    let _ = writeln!(o, "run report: {}", ctx.report_path);
    let _ = writeln!(
        o,
        "chrome trace: {} (open in https://ui.perfetto.dev)",
        ctx.trace_path
    );
    o
}

// ---------------------------------------------------------------------------
// Cross-architecture backend family (ROADMAP "Multi-backend DRAM")
// ---------------------------------------------------------------------------

/// Non-baseline backend design keys, catalog order
/// (`das_sim::config::Design::backends()` minus `std`).
const CROSS_KEYS: [&str; 5] = ["das", "tl", "clr", "lisa", "salp"];

/// Backends that sweep the fast-capacity ratio freely. TL-DRAM is absent
/// deliberately: its backend placement pins ratio 1/4 (the 128-near /
/// 384-far tiling), overriding any sweep point; SALP and the baseline
/// have no fast level.
const CROSS_SWEEP_KEYS: [&str; 3] = ["das", "clr", "lisa"];

/// Workloads whose traffic is dominated by streaming/sequential sweeps.
/// The complement of `spec::names()` is the irregular/pointer class.
const STREAMING_CLASS: [&str; 6] = [
    "cactusADM",
    "GemsFDTD",
    "lbm",
    "leslie3d",
    "libquantum",
    "milc",
];

/// Pointer-chasing workloads for the copy-cost comparison.
const POINTER_WORKLOADS: [&str; 4] = ["astar", "mcf", "omnetpp", "soplex"];

fn workload_class(name: &str) -> &'static str {
    if STREAMING_CLASS.contains(&name) {
        "streaming"
    } else {
        "irregular"
    }
}

/// Per-workload jobs: a DDR3 baseline plus every non-baseline backend.
fn cross_arch_jobs(exp: &str, names: &[&str], insts: u64, p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in names {
        for key in std::iter::once("std").chain(CROSS_KEYS) {
            jobs.push(JobSpec {
                id: format!("{exp}/{name}/{key}"),
                design: key.to_string(),
                workload: name.to_string(),
                insts,
                scale: p.scale,
                seed: 42,
                ov: Overrides::default(),
            });
        }
    }
    jobs
}

/// Improvement matrix over the per-group DDR3 baseline:
/// `(group names, rows[group][backend])` in `keys` column order.
fn cross_arch_matrix<'a>(
    ctx: &RenderCtx<'a>,
    exp: &str,
    keys: &[&str],
) -> (Vec<&'a str>, Vec<Vec<f64>>) {
    let names = ctx.group_names();
    let rows = names
        .iter()
        .map(|name| {
            let base = ctx.by_id(&format!("{exp}/{name}/std"));
            keys.iter()
                .map(|key| {
                    ctx.by_id(&format!("{exp}/{name}/{key}"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    (names, rows)
}

/// Appends a gmean-ranking block: backends ordered by gmean IPC
/// improvement over the DDR3 baseline, one ranking per workload class.
fn write_class_ranking(o: &mut String, names: &[&str], rows: &[Vec<f64>], keys: &[&str]) {
    let _ = writeln!(
        o,
        "\n## ranking by gmean IPC improvement over {} (per workload class)",
        design_label("std")
    );
    let mut classes: Vec<&str> = names.iter().map(|n| workload_class(n)).collect();
    classes.sort_unstable();
    classes.dedup();
    for class in classes {
        let member_rows: Vec<&Vec<f64>> = names
            .iter()
            .zip(rows)
            .filter(|(n, _)| workload_class(n) == class)
            .map(|(_, r)| r)
            .collect();
        let mut ranked: Vec<(&str, f64)> = keys
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let col: Vec<f64> = member_rows.iter().map(|r| r[i]).collect();
                (design_label(key), gmean_improvement(&col))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let _ = write!(o, "{:<12}", format!("{class}:"));
        for (i, (label, g)) in ranked.iter().enumerate() {
            if i > 0 {
                let _ = write!(o, "  >");
            }
            let _ = write!(o, " {label} {}", pct(*g));
        }
        let _ = writeln!(o);
    }
}

fn build_cross_arch_rank(p: &BuildParams) -> Vec<JobSpec> {
    cross_arch_jobs("cross_arch_rank", &singles(p), p.insts, p)
}

fn render_cross_arch_rank(ctx: &RenderCtx) -> String {
    let (names, rows) = cross_arch_matrix(ctx, "cross_arch_rank", &CROSS_KEYS);
    let columns: Vec<String> = CROSS_KEYS
        .iter()
        .map(|k| design_label(k).to_string())
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Cross-architecture: IPC improvement over DDR3 baseline",
        &names,
        &columns,
        14,
        &rows,
    );
    write_class_ranking(&mut o, &names, &rows, &CROSS_KEYS);
    o
}

fn build_cross_arch_mix(p: &BuildParams) -> Vec<JobSpec> {
    let mixes: Vec<String> = mix_list(p).iter().map(|m| format!("mix:{m}")).collect();
    let mut jobs = Vec::new();
    for (name, wl) in mix_list(p).iter().zip(&mixes) {
        for key in std::iter::once("std").chain(CROSS_KEYS) {
            jobs.push(JobSpec {
                id: format!("cross_arch_mix/{name}/{key}"),
                design: key.to_string(),
                workload: wl.clone(),
                insts: multi_insts(p),
                scale: p.scale,
                seed: 42,
                ov: Overrides::default(),
            });
        }
    }
    jobs
}

fn render_cross_arch_mix(ctx: &RenderCtx) -> String {
    let (names, rows) = cross_arch_matrix(ctx, "cross_arch_mix", &CROSS_KEYS);
    let columns: Vec<String> = CROSS_KEYS
        .iter()
        .map(|k| design_label(k).to_string())
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Cross-architecture: four-program mixes (weighted IPC improvement over DDR3)",
        &names,
        &columns,
        14,
        &rows,
    );
    o
}

fn cross_sweep_segs() -> Vec<String> {
    CROSS_SWEEP_KEYS
        .iter()
        .flat_map(|key| RATIO_DENS.iter().map(move |den| format!("{key}_d{den}")))
        .collect()
}

fn build_cross_arch_sweep(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("cross_arch_sweep/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for key in CROSS_SWEEP_KEYS {
            for den in RATIO_DENS {
                jobs.push(job(
                    p,
                    format!("cross_arch_sweep/{name}/{key}_d{den}"),
                    key,
                    name,
                    Overrides {
                        fast_ratio_den: Some(den),
                        ..Overrides::default()
                    },
                ));
            }
        }
    }
    jobs
}

fn render_cross_arch_sweep(ctx: &RenderCtx) -> String {
    let segs = cross_sweep_segs();
    let seg_refs: Vec<&str> = segs.iter().map(String::as_str).collect();
    let columns: Vec<String> = CROSS_SWEEP_KEYS
        .iter()
        .flat_map(|key| RATIO_DENS.iter().map(move |den| format!("{key} 1/{den}")))
        .collect();
    render_sweep_table(
        ctx,
        "cross_arch_sweep",
        "Cross-architecture: fast-capacity sweep (TL-DRAM pinned to 1/4, omitted)",
        &seg_refs,
        &columns,
        10,
    )
}

/// Copy-cost combos: designs distinguished purely by inter-row copy cost.
const COPY_KEYS: [&str; 4] = ["das", "das_fm", "lisa", "clr"];

fn build_cross_arch_copy(p: &BuildParams) -> Vec<JobSpec> {
    let names = filter(&p.only, POINTER_WORKLOADS.to_vec());
    let mut jobs = Vec::new();
    for name in names {
        for key in std::iter::once("std").chain(COPY_KEYS) {
            jobs.push(job(
                p,
                format!("cross_arch_copy/{name}/{key}"),
                key,
                name,
                Overrides::default(),
            ));
        }
    }
    jobs
}

fn render_cross_arch_copy(ctx: &RenderCtx) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Cross-architecture: inter-row copy cost (pointer-chasing workloads)"
    );
    let _ = writeln!(o, "swap latency per design:");
    for key in COPY_KEYS {
        let t = parse_design(key).expect("catalog design key").timing();
        let _ = writeln!(o, "  {:<14} {:>8.3} ns", design_label(key), t.swap.as_ns());
    }
    let _ = writeln!(o);
    let (names, rows) = cross_arch_matrix(ctx, "cross_arch_copy", &COPY_KEYS);
    let columns: Vec<String> = COPY_KEYS
        .iter()
        .map(|k| design_label(k).to_string())
        .collect();
    improvement_table(
        &mut o,
        "IPC improvement over DDR3 baseline",
        &names,
        &columns,
        14,
        &rows,
    );
    o
}

/// SALP composition combos: `(id segment, design key, salp override)`.
const CROSS_SALP_COMBOS: [(&str, &str, Option<bool>); 5] = [
    ("salp", "salp", None),
    ("das", "das", None),
    ("das_salp", "das", Some(true)),
    ("lisa", "lisa", None),
    ("lisa_salp", "lisa", Some(true)),
];

/// The SALP composition runs on three representative workloads (one
/// streaming, two irregular) to keep the grid bounded.
const CROSS_SALP_WORKLOADS: [&str; 3] = ["libquantum", "mcf", "omnetpp"];

fn build_cross_arch_salp(p: &BuildParams) -> Vec<JobSpec> {
    let names = filter(&p.only, CROSS_SALP_WORKLOADS.to_vec());
    let mut jobs = Vec::new();
    for name in names {
        jobs.push(job(
            p,
            format!("cross_arch_salp/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for (seg, key, salp) in CROSS_SALP_COMBOS {
            jobs.push(job(
                p,
                format!("cross_arch_salp/{name}/{seg}"),
                key,
                name,
                Overrides {
                    salp,
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_cross_arch_salp(ctx: &RenderCtx) -> String {
    let segs: Vec<&str> = CROSS_SALP_COMBOS.iter().map(|(seg, ..)| *seg).collect();
    let columns: Vec<String> = vec![
        "SALP".into(),
        "DAS".into(),
        "DAS+SALP".into(),
        "LISA".into(),
        "LISA+SALP".into(),
    ];
    let mut o = render_sweep_table(
        ctx,
        "cross_arch_salp",
        "Cross-architecture: SALP composition (improvement over DDR3)",
        &segs,
        &columns,
        11,
    );
    let _ = writeln!(
        o,
        "\nSALP attacks bank-conflict serialisation, the asymmetric designs\n\
         attack activation latency; the composed variants stack both."
    );
    o
}

fn build_cross_arch_area(p: &BuildParams) -> Vec<JobSpec> {
    cross_arch_jobs("cross_arch_area", &["mcf"], p.insts, p)
}

fn render_cross_arch_area(ctx: &RenderCtx) -> String {
    let (names, rows) = cross_arch_matrix(ctx, "cross_arch_area", &CROSS_KEYS);
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Cross-architecture: performance per silicon area ({})",
        names.join("+")
    );
    let _ = writeln!(
        o,
        "{:<14} {:>12} {:>10} {:>14}",
        "design", "improvement", "area", "improv/area%"
    );
    for (i, key) in CROSS_KEYS.iter().enumerate() {
        let improv = gmean_improvement(&rows.iter().map(|r| r[i]).collect::<Vec<_>>());
        let area = parse_design(key)
            .expect("catalog design key")
            .backend()
            .expect("cross-arch designs are backends")
            .area_overhead();
        let per_area = if area > 0.0 {
            format!("{:>14.2}", improv * 100.0 / (area * 100.0))
        } else {
            format!("{:>14}", "inf")
        };
        let _ = writeln!(
            o,
            "{:<14} {:>12} {:>9.2}% {per_area}",
            design_label(key),
            pct(improv),
            area * 100.0,
        );
    }
    let _ = writeln!(
        o,
        "\narea figures from dram::area models (PAPERS.md quoted overheads);\n\
         CLR-DRAM additionally surrenders the morphed rows' capacity."
    );
    o
}

// ---------------------------------------------------------------------------
// Coherent multi-core front end (ROADMAP "das-coherence")
// ---------------------------------------------------------------------------

/// Shared-footprint workload kinds (`das_workloads::shared::SharedKind`
/// keys), catalog order.
const SHARED_KINDS: [&str; 3] = ["ring", "lock", "frontier"];
/// Coherence-protocol keys (`das_coherence::ProtocolKind` keys).
const COH_PROTOCOLS: [&str; 2] = ["mesi", "dragon"];
/// Sharing-intensity keys (`das_workloads::shared::Sharing` keys), in
/// increasing shared-fraction order.
const SHARING_LEVELS: [&str; 3] = ["low", "mid", "high"];

fn protocol_label(key: &str) -> &'static str {
    das_coherence::ProtocolKind::parse(key)
        .expect("catalog protocol key")
        .label()
}

/// One coherent job at the multi-programming budget (four trace-fed
/// cores share the memory system, like the Fig. 7e mixes).
fn coherent_job(p: &BuildParams, id: String, design: &str, kind: &str, ov: Overrides) -> JobSpec {
    JobSpec {
        id,
        design: design.to_string(),
        workload: format!("shared:{kind}"),
        insts: multi_insts(p),
        scale: p.scale,
        seed: 42,
        ov,
    }
}

/// Appends one coherence-traffic line per group, read from the named
/// job's `metrics/coherence` block.
fn write_coherence_lines(o: &mut String, ctx: &RenderCtx, ids: &[(String, String)]) {
    for (label, id) in ids {
        let r = ctx.by_id(id);
        let _ = writeln!(
            o,
            "{label:<12} bus_tx={:>8}  inval={:>7}  interv={:>7}  upd={:>7}  \
             l1_hit={:>5.1}%  bus_wait={}",
            r.u64("metrics/coherence/bus_transactions"),
            r.u64("metrics/coherence/invalidations"),
            r.u64("metrics/coherence/interventions"),
            r.u64("metrics/coherence/bus_upd"),
            r.f64("metrics/coherence/l1_hit_rate") * 100.0,
            r.u64("metrics/coherence/bus_wait_cycles"),
        );
    }
}

fn build_coherent_rank(p: &BuildParams) -> Vec<JobSpec> {
    let kinds = filter(&p.only, SHARED_KINDS.to_vec());
    let mut jobs = Vec::new();
    for kind in kinds {
        for key in std::iter::once("std").chain(CROSS_KEYS) {
            jobs.push(coherent_job(
                p,
                format!("coherent_rank/{kind}/{key}"),
                key,
                kind,
                Overrides::default(),
            ));
        }
    }
    jobs
}

fn render_coherent_rank(ctx: &RenderCtx) -> String {
    let (names, rows) = cross_arch_matrix(ctx, "coherent_rank", &CROSS_KEYS);
    let columns: Vec<String> = CROSS_KEYS
        .iter()
        .map(|k| design_label(k).to_string())
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Coherent front end: IPC improvement over DDR3 baseline (MESI, 4 cores)",
        &names,
        &columns,
        14,
        &rows,
    );
    let mut ranked: Vec<(&str, f64)> = CROSS_KEYS
        .iter()
        .enumerate()
        .map(|(i, key)| {
            let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
            (design_label(key), gmean_improvement(&col))
        })
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
    let _ = write!(o, "\nranking:");
    for (i, (label, g)) in ranked.iter().enumerate() {
        if i > 0 {
            let _ = write!(o, "  >");
        }
        let _ = write!(o, " {label} {}", pct(*g));
    }
    let _ = writeln!(o);
    let _ = writeln!(o, "\n## MESI coherence traffic (Std-DRAM backend)");
    let ids: Vec<(String, String)> = names
        .iter()
        .map(|n| ((*n).to_string(), format!("coherent_rank/{n}/std")))
        .collect();
    write_coherence_lines(&mut o, ctx, &ids);
    o
}

fn build_coherent_protocol(p: &BuildParams) -> Vec<JobSpec> {
    let kinds = filter(&p.only, SHARED_KINDS.to_vec());
    let mut jobs = Vec::new();
    for kind in kinds {
        for proto in COH_PROTOCOLS {
            for key in ["std", "das"] {
                jobs.push(coherent_job(
                    p,
                    format!("coherent_protocol/{kind}/{proto}_{key}"),
                    key,
                    kind,
                    Overrides {
                        protocol: Some(proto.to_string()),
                        ..Overrides::default()
                    },
                ));
            }
        }
    }
    jobs
}

fn render_coherent_protocol(ctx: &RenderCtx) -> String {
    let names = ctx.group_names();
    let columns: Vec<String> = COH_PROTOCOLS
        .iter()
        .map(|p| format!("DAS {}", protocol_label(p)))
        .collect();
    let rows: Vec<Vec<f64>> = names
        .iter()
        .map(|kind| {
            COH_PROTOCOLS
                .iter()
                .map(|proto| {
                    let base = ctx.by_id(&format!("coherent_protocol/{kind}/{proto}_std"));
                    ctx.by_id(&format!("coherent_protocol/{kind}/{proto}_das"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Coherent front end: protocol comparison (DAS-DRAM improvement over DDR3)",
        &names,
        &columns,
        14,
        &rows,
    );
    for proto in COH_PROTOCOLS {
        let _ = writeln!(
            o,
            "\n## {} coherence traffic (DAS-DRAM backend)",
            protocol_label(proto)
        );
        let ids: Vec<(String, String)> = names
            .iter()
            .map(|n| {
                (
                    (*n).to_string(),
                    format!("coherent_protocol/{n}/{proto}_das"),
                )
            })
            .collect();
        write_coherence_lines(&mut o, ctx, &ids);
    }
    o
}

fn build_coherent_sharing(p: &BuildParams) -> Vec<JobSpec> {
    let kinds = filter(&p.only, SHARED_KINDS.to_vec());
    let mut jobs = Vec::new();
    for kind in kinds {
        for level in SHARING_LEVELS {
            for key in ["std", "das"] {
                jobs.push(coherent_job(
                    p,
                    format!("coherent_sharing/{kind}/{level}_{key}"),
                    key,
                    kind,
                    Overrides {
                        sharing: Some(level.to_string()),
                        ..Overrides::default()
                    },
                ));
            }
        }
    }
    jobs
}

fn render_coherent_sharing(ctx: &RenderCtx) -> String {
    let names = ctx.group_names();
    let columns: Vec<String> = SHARING_LEVELS.iter().map(|l| (*l).to_string()).collect();
    let rows: Vec<Vec<f64>> = names
        .iter()
        .map(|kind| {
            SHARING_LEVELS
                .iter()
                .map(|level| {
                    let base = ctx.by_id(&format!("coherent_sharing/{kind}/{level}_std"));
                    ctx.by_id(&format!("coherent_sharing/{kind}/{level}_das"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Coherent front end: sharing-intensity sweep (DAS-DRAM improvement over DDR3)",
        &names,
        &columns,
        14,
        &rows,
    );
    let _ = writeln!(o, "\n## bus pressure vs sharing (DAS-DRAM backend, MESI)");
    for kind in &names {
        let _ = write!(o, "{kind:<12}");
        for level in SHARING_LEVELS {
            let r = ctx.by_id(&format!("coherent_sharing/{kind}/{level}_das"));
            let _ = write!(
                o,
                "  {level}: inval={} wait={}",
                r.u64("metrics/coherence/invalidations"),
                r.u64("metrics/coherence/bus_wait_cycles"),
            );
        }
        let _ = writeln!(o);
    }
    o
}

// ---------------------------------------------------------------------------
// Adaptive migration policies (ROADMAP "das-policy")
// ---------------------------------------------------------------------------

/// Migration-policy keys (`das_policy::PolicyKind` keys), catalog order.
const POLICY_KEYS: [&str; 5] = [
    "paper_fixed",
    "hysteresis",
    "cost_aware",
    "phase_adaptive",
    "feedback",
];
/// Backends the policy ranking compares on (dynamic exclusive only —
/// each prices the same swap machinery differently, which is what the
/// cost-aware policy keys on).
const POLICY_BACKENDS: [&str; 3] = ["das", "lisa", "clr"];
/// Policies whose controller state the trajectory experiment reads.
const POLICY_ADAPTIVE: [&str; 3] = ["paper_fixed", "phase_adaptive", "feedback"];
/// The trajectory experiment's pinned workloads: one streaming, one
/// pointer-chasing.
const POLICY_ADAPT_WORKLOADS: [&str; 2] = ["libquantum", "mcf"];

fn policy_label(key: &str) -> &'static str {
    das_policy::PolicyKind::parse(key)
        .expect("catalog policy key")
        .label()
}

/// The override for a policy column. `paper_fixed` deliberately omits the
/// token: absence *is* the paper's fixed-threshold behaviour (locked by
/// `das-sim/tests/policy_identity.rs`), and it keeps those journal lines
/// strip-comparable to the policy-free goldens in CI.
fn policy_ov(key: &str) -> Overrides {
    if key == "paper_fixed" {
        Overrides::default()
    } else {
        Overrides {
            policy: Some(key.to_string()),
            ..Overrides::default()
        }
    }
}

fn build_policy_search_rank(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("policy_search_rank/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for backend in POLICY_BACKENDS {
            for key in POLICY_KEYS {
                jobs.push(job(
                    p,
                    format!("policy_search_rank/{name}/{backend}_{key}"),
                    backend,
                    name,
                    policy_ov(key),
                ));
            }
        }
    }
    jobs
}

fn render_policy_search_rank(ctx: &RenderCtx) -> String {
    let names = ctx.group_names();
    let columns: Vec<String> = POLICY_KEYS
        .iter()
        .map(|k| policy_label(k).to_string())
        .collect();
    let mut o = String::new();
    for backend in POLICY_BACKENDS {
        let rows: Vec<Vec<f64>> = names
            .iter()
            .map(|name| {
                let base = ctx.by_id(&format!("policy_search_rank/{name}/std"));
                POLICY_KEYS
                    .iter()
                    .map(|key| {
                        ctx.by_id(&format!("policy_search_rank/{name}/{backend}_{key}"))
                            .improvement_over(&base)
                    })
                    .collect()
            })
            .collect();
        if !o.is_empty() {
            let _ = writeln!(o);
        }
        improvement_table(
            &mut o,
            &format!(
                "Policy search: IPC improvement over DDR3 baseline ({})",
                design_label(backend)
            ),
            &names,
            &columns,
            16,
            &rows,
        );
        let mut ranked: Vec<(&str, f64)> = POLICY_KEYS
            .iter()
            .enumerate()
            .map(|(i, key)| {
                let col: Vec<f64> = rows.iter().map(|r| r[i]).collect();
                (policy_label(key), gmean_improvement(&col))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let _ = write!(o, "ranking ({}):", design_label(backend));
        for (i, (label, g)) in ranked.iter().enumerate() {
            if i > 0 {
                let _ = write!(o, "  >");
            }
            let _ = write!(o, " {label} {}", pct(*g));
        }
        let _ = writeln!(o);
    }
    o
}

fn build_policy_search_size(p: &BuildParams) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for name in singles(p) {
        jobs.push(job(
            p,
            format!("policy_search_size/{name}/std"),
            "std",
            name,
            Overrides::default(),
        ));
        for key in POLICY_KEYS {
            for den in RATIO_DENS {
                let mut ov = policy_ov(key);
                ov.fast_ratio_den = Some(den);
                jobs.push(job(
                    p,
                    format!("policy_search_size/{name}/{key}_d{den}"),
                    "das",
                    name,
                    ov,
                ));
            }
        }
    }
    jobs
}

fn render_policy_search_size(ctx: &RenderCtx) -> String {
    let names = ctx.group_names();
    let columns: Vec<String> = POLICY_KEYS
        .iter()
        .flat_map(|key| RATIO_DENS.iter().map(move |den| format!("{key} 1/{den}")))
        .collect();
    let segs: Vec<String> = POLICY_KEYS
        .iter()
        .flat_map(|key| RATIO_DENS.iter().map(move |den| format!("{key}_d{den}")))
        .collect();
    let rows: Vec<Vec<f64>> = names
        .iter()
        .map(|name| {
            let base = ctx.by_id(&format!("policy_search_size/{name}/std"));
            segs.iter()
                .map(|seg| {
                    ctx.by_id(&format!("policy_search_size/{name}/{seg}"))
                        .improvement_over(&base)
                })
                .collect()
        })
        .collect();
    let mut o = String::new();
    improvement_table(
        &mut o,
        "Policy search: fast-level size sweep (DAS-DRAM, improvement over DDR3)",
        &names,
        &columns,
        20,
        &rows,
    );
    // Best policy per fast-level size, by gmean across workloads.
    let _ = writeln!(o, "\n## best policy per fast-level size (gmean)");
    for (di, den) in RATIO_DENS.iter().enumerate() {
        let mut ranked: Vec<(&str, f64)> = POLICY_KEYS
            .iter()
            .enumerate()
            .map(|(pi, key)| {
                let col: Vec<f64> = rows.iter().map(|r| r[pi * RATIO_DENS.len() + di]).collect();
                (policy_label(key), gmean_improvement(&col))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        let (best, g) = ranked[0];
        let _ = writeln!(o, "1/{den:<4} {best} {}", pct(g));
    }
    o
}

fn build_policy_search_adapt(p: &BuildParams) -> Vec<JobSpec> {
    let names = filter(&p.only, POLICY_ADAPT_WORKLOADS.to_vec());
    let mut jobs = Vec::new();
    for name in names {
        for key in POLICY_ADAPTIVE {
            // Explicit tokens throughout (including paper_fixed): this
            // experiment reads the report's `policy` accounting block,
            // which only materialises when a policy is installed.
            jobs.push(job(
                p,
                format!("policy_search_adapt/{name}/{key}"),
                "das",
                name,
                Overrides {
                    policy: Some(key.to_string()),
                    ..Overrides::default()
                },
            ));
        }
    }
    jobs
}

fn render_policy_search_adapt(ctx: &RenderCtx) -> String {
    let names = ctx.group_names();
    let mut o = String::new();
    let _ = writeln!(
        o,
        "Policy search: adaptive-controller trajectories (DAS-DRAM)"
    );
    for name in &names {
        let _ = writeln!(o, "\n## {name}");
        for key in POLICY_ADAPTIVE {
            let r = ctx.by_id(&format!("policy_search_adapt/{name}/{key}"));
            let _ = writeln!(
                o,
                "{:<16} promotes={:>6}  demotes={:>5}  holds={:>8}  \
                 adjusts={:>4}  epochs={:>3}  final_threshold={}",
                policy_label(key),
                r.u64("metrics/policy/promotes"),
                r.u64("metrics/policy/demotes"),
                r.u64("metrics/policy/holds"),
                r.u64("metrics/policy/threshold_adjusts"),
                r.u64("metrics/policy/epochs"),
                r.u64("metrics/policy/final_threshold"),
            );
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;

    fn tiny_params() -> BuildParams {
        BuildParams::new(100_000, 64)
    }

    #[test]
    fn every_experiment_builds_a_valid_manifest() {
        let p = tiny_params();
        let experiments = ALL
            .iter()
            .map(|e| crate::manifest::ExperimentPlan {
                id: e.id.to_string(),
                jobs: (e.build)(&p),
            })
            .collect();
        let m = Manifest {
            insts: p.insts,
            scale: p.scale,
            experiments,
        };
        m.validate().expect("full grid validates");
        let total: usize = m.experiments.iter().map(|e| e.jobs.len()).sum();
        assert!(total > 800, "the full grid is substantial: {total}");
        // Round-trips through text.
        let back = Manifest::parse(&m.render()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn only_filter_prunes_the_grid() {
        let mut p = tiny_params();
        p.only = vec!["mcf".to_string()];
        let jobs = (by_id("fig7a").unwrap().build)(&p);
        assert_eq!(jobs.len(), 6, "one workload: baseline + five designs");
        assert!(jobs.iter().all(|j| j.id.contains("/mcf/")));
    }

    #[test]
    fn job_order_matches_the_legacy_binaries() {
        let p = tiny_params();
        let fig7c = (by_id("fig7c").unwrap().build)(&p);
        // Panel-major: every SAS job precedes every DAS job.
        let first_das = fig7c.iter().position(|j| j.design == "das").unwrap();
        assert!(fig7c[..first_das].iter().all(|j| j.design == "sas"));
        let sweep = (by_id("fault_sweep").unwrap().build)(&p);
        assert_eq!(sweep.len(), 25);
        assert!(sweep[0].id.ends_with("/clean"));
        let tele = (by_id("telemetry").unwrap().build)(&p);
        assert_eq!(tele[0].ov.telemetry_epoch, Some(EPOCH_CYCLES));
        assert!(tele[0].ov.trace_path.is_some());
    }

    #[test]
    fn cross_arch_family_covers_all_backends() {
        use das_sim::config::Design;
        let p = tiny_params();
        // rank: per workload, a DDR3 baseline plus every backend.
        let rank = (by_id("cross_arch_rank").unwrap().build)(&p);
        assert_eq!(rank.len(), spec::names().len() * 6);
        let mcf_designs: Vec<&str> = rank
            .iter()
            .filter(|j| j.id.contains("/mcf/"))
            .map(|j| j.design.as_str())
            .collect();
        let backend_keys: Vec<&str> = Design::backends()
            .iter()
            .map(|d| crate::manifest::design_key(*d))
            .collect();
        assert_eq!(mcf_designs, backend_keys);
        // sweep: TL-DRAM excluded (its placement pins ratio 1/4).
        let sweep = (by_id("cross_arch_sweep").unwrap().build)(&p);
        assert!(sweep.iter().all(|j| j.design != "tl" && j.design != "salp"));
        assert_eq!(
            sweep.len(),
            spec::names().len() * (1 + CROSS_SWEEP_KEYS.len() * RATIO_DENS.len())
        );
        // copy: pointer workloads only, FM bound included.
        let copy = (by_id("cross_arch_copy").unwrap().build)(&p);
        assert_eq!(copy.len(), POINTER_WORKLOADS.len() * 5);
        assert!(copy.iter().any(|j| j.design == "das_fm"));
        // salp: composition overrides arm SALP on asymmetric designs.
        let salp = (by_id("cross_arch_salp").unwrap().build)(&p);
        assert!(salp
            .iter()
            .any(|j| j.design == "lisa" && j.ov.salp == Some(true)));
        // area: single pinned workload.
        let area = (by_id("cross_arch_area").unwrap().build)(&p);
        assert_eq!(area.len(), 6);
        assert!(area.iter().all(|j| j.workload == "mcf"));
        // mixes at the multi-programming budget.
        let mix = (by_id("cross_arch_mix").unwrap().build)(&p);
        assert_eq!(mix.len(), mixes::names().len() * 6);
        assert!(mix
            .iter()
            .all(|j| j.insts == multi_insts(&p) && j.workload.starts_with("mix:")));
    }

    #[test]
    fn workload_classes_partition_the_benchmarks() {
        let streaming = spec::names()
            .into_iter()
            .filter(|n| workload_class(n) == "streaming")
            .count();
        assert_eq!(streaming, STREAMING_CLASS.len());
        assert_eq!(
            spec::names().len() - streaming,
            POINTER_WORKLOADS.len(),
            "every benchmark is classified"
        );
    }

    #[test]
    fn families_group_the_catalog() {
        assert_eq!(family_of("cross_arch_rank"), "cross_arch");
        assert_eq!(family_of("fig7a"), "fig7");
        assert_eq!(family_of("ablation_salp"), "ablation");
        assert_eq!(family_of("powerdown"), "power");
        assert_eq!(family_of("fault_sweep"), "fault_sweep");
        assert_eq!(family_of("telemetry"), "telemetry");
        assert_eq!(family_of("coherent_rank"), "coherent");
        assert_eq!(family_of("policy_search_rank"), "policy_search");
        let cross: Vec<&str> = ids()
            .into_iter()
            .filter(|id| family_of(id) == "cross_arch")
            .collect();
        assert_eq!(cross.len(), 6);
        let coherent: Vec<&str> = ids()
            .into_iter()
            .filter(|id| family_of(id) == "coherent")
            .collect();
        assert_eq!(coherent.len(), 3);
        let policy: Vec<&str> = ids()
            .into_iter()
            .filter(|id| family_of(id) == "policy_search")
            .collect();
        assert_eq!(
            policy,
            [
                "policy_search_rank",
                "policy_search_size",
                "policy_search_adapt"
            ]
        );
    }

    #[test]
    fn policy_family_spans_policy_backend_and_size() {
        let p = tiny_params();
        // rank: per workload, a DDR3 baseline plus every policy on every
        // dynamic exclusive backend.
        let rank = (by_id("policy_search_rank").unwrap().build)(&p);
        assert_eq!(
            rank.len(),
            spec::names().len() * (1 + POLICY_BACKENDS.len() * POLICY_KEYS.len())
        );
        // paper_fixed columns omit the override (absence == the paper's
        // fixed-threshold path, so CI can strip-compare their journal
        // lines against the policy-free goldens); all others carry it.
        for j in &rank {
            if j.id.ends_with("_paper_fixed") || j.id.ends_with("/std") {
                assert_eq!(j.ov.policy, None, "{}", j.id);
            } else {
                assert!(j.ov.policy.is_some(), "{}", j.id);
            }
        }
        // size: policy x fast-ratio grid on DAS, plus the baseline.
        let size = (by_id("policy_search_size").unwrap().build)(&p);
        assert_eq!(
            size.len(),
            spec::names().len() * (1 + POLICY_KEYS.len() * RATIO_DENS.len())
        );
        assert!(
            size.iter()
                .any(|j| j.ov.policy.as_deref() == Some("feedback")
                    && j.ov.fast_ratio_den == Some(32))
        );
        // adapt: explicit tokens throughout so the policy block renders.
        let adapt = (by_id("policy_search_adapt").unwrap().build)(&p);
        assert_eq!(
            adapt.len(),
            POLICY_ADAPT_WORKLOADS.len() * POLICY_ADAPTIVE.len()
        );
        assert!(adapt.iter().all(|j| j.ov.policy.is_some()));
        // the only-filter prunes on workload.
        let mut only = tiny_params();
        only.only = vec!["mcf".to_string()];
        let pruned = (by_id("policy_search_rank").unwrap().build)(&only);
        assert_eq!(pruned.len(), 1 + POLICY_BACKENDS.len() * POLICY_KEYS.len());
        assert!(pruned.iter().all(|j| j.id.contains("/mcf/")));
    }

    #[test]
    fn coherent_family_spans_protocol_backend_and_sharing() {
        let p = tiny_params();
        // rank: per shared kind, a DDR3 baseline plus every backend, all
        // at the multi-programming budget (four cores share the system).
        let rank = (by_id("coherent_rank").unwrap().build)(&p);
        assert_eq!(rank.len(), SHARED_KINDS.len() * (1 + CROSS_KEYS.len()));
        assert!(rank
            .iter()
            .all(|j| j.workload.starts_with("shared:") && j.insts == multi_insts(&p)));
        assert!(rank.iter().all(|j| j.ov.protocol.is_none()), "MESI default");
        // protocol: every kind under both protocols, std + das.
        let proto = (by_id("coherent_protocol").unwrap().build)(&p);
        assert_eq!(proto.len(), SHARED_KINDS.len() * COH_PROTOCOLS.len() * 2);
        assert!(proto
            .iter()
            .any(|j| j.ov.protocol.as_deref() == Some("dragon") && j.design == "das"));
        // sharing: every kind at each sharing level, std + das.
        let sharing = (by_id("coherent_sharing").unwrap().build)(&p);
        assert_eq!(sharing.len(), SHARED_KINDS.len() * SHARING_LEVELS.len() * 2);
        assert!(sharing
            .iter()
            .any(|j| j.ov.sharing.as_deref() == Some("high")));
        // the only-filter prunes on shared kind.
        let mut only = tiny_params();
        only.only = vec!["lock".to_string()];
        let pruned = (by_id("coherent_rank").unwrap().build)(&only);
        assert_eq!(pruned.len(), 1 + CROSS_KEYS.len());
        assert!(pruned.iter().all(|j| j.workload == "shared:lock"));
    }

    #[test]
    fn migration_swap_ticks_match_the_legacy_constants() {
        let v = migration_variants();
        assert_eq!(v[0].2, 0);
        assert_eq!(v[1].2, 3510, "3 tRC at 1170 ticks");
        assert_eq!(v[2].2, 5265, "4.5 tRC");
        assert_eq!(v[3].2, 7020, "6 tRC");
    }
}
