//! A deterministic work-stealing thread pool (std-only).
//!
//! Jobs are dealt round-robin onto per-worker queues; a worker pops from
//! the *front* of its own queue and steals from the *back* of its
//! neighbours', so a lightly loaded pool keeps the natural execution
//! order and a contended one balances itself. Completion order is
//! whatever the machine gives us — the consumer callback is nevertheless
//! invoked **in job-id order** via a reorder buffer, so anything driven
//! from it (journal lines, progress output) is bit-identical no matter
//! how many workers ran. With jobs that are pure functions of their
//! index, an N-thread run is therefore indistinguishable from a 1-thread
//! run everywhere outside wall-clock time.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `n_jobs` jobs on `threads` workers, invoking `emit(job, result)`
/// on the calling thread in strictly ascending job order, starting while
/// later jobs are still executing.
///
/// `run` must be a pure function of the job index (up to shared memoized
/// state that is itself deterministic); the pool guarantees only ordering,
/// not value determinism.
pub fn run_ordered<R, F, E>(threads: usize, n_jobs: usize, run: F, mut emit: E)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    E: FnMut(usize, R),
{
    let threads = threads.max(1).min(n_jobs.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for job in 0..n_jobs {
        queues[job % threads]
            .lock()
            .expect("queue lock")
            .push_back(job);
    }
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for w in 0..threads {
            let tx = tx.clone();
            let queues = &queues;
            let run = &run;
            s.spawn(move || loop {
                // Own queue first (front), then steal from the back of the
                // others. Jobs are fixed up-front, so "every queue empty"
                // means the pool is drained.
                let mut job = queues[w].lock().expect("queue lock").pop_front();
                if job.is_none() {
                    for off in 1..queues.len() {
                        let victim = (w + off) % queues.len();
                        job = queues[victim].lock().expect("queue lock").pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        if tx.send((j, run(j))).is_err() {
                            return;
                        }
                    }
                    None => return,
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (job, result) in rx {
            pending.insert(job, result);
            while let Some(r) = pending.remove(&next) {
                emit(next, r);
                next += 1;
            }
        }
        while let Some(r) = pending.remove(&next) {
            emit(next, r);
            next += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn emission(threads: usize, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        run_ordered(threads, n, |j| j * j, |j, r| out.push((j, r)));
        out
    }

    #[test]
    fn emits_every_job_in_ascending_order() {
        for threads in [1, 2, 3, 8] {
            let out = emission(threads, 37);
            assert_eq!(out.len(), 37, "threads={threads}");
            for (i, (j, r)) in out.iter().enumerate() {
                assert_eq!(*j, i);
                assert_eq!(*r, i * i);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_emission() {
        assert_eq!(emission(1, 25), emission(8, 25));
    }

    #[test]
    fn more_threads_than_jobs_and_zero_jobs_work() {
        assert_eq!(emission(16, 3).len(), 3);
        assert_eq!(emission(4, 0).len(), 0);
    }

    #[test]
    fn each_job_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let mut emitted = 0usize;
        run_ordered(
            4,
            100,
            |_| runs.fetch_add(1, Ordering::SeqCst),
            |_, _| emitted += 1,
        );
        assert_eq!(runs.load(Ordering::SeqCst), 100);
        assert_eq!(emitted, 100);
    }
}
