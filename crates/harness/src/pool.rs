//! Deterministic work distribution (std-only): a batch-mode ordered pool
//! and a long-running service pool sharing the same stealing discipline.
//!
//! Jobs are dealt round-robin onto per-worker queues; a worker pops from
//! the *front* of its own queue and steals from the *back* of its
//! neighbours', so a lightly loaded pool keeps the natural execution
//! order and a contended one balances itself. For [`run_ordered`],
//! completion order is whatever the machine gives us — the consumer
//! callback is nevertheless invoked **in job-id order** via a reorder
//! buffer, so anything driven from it (journal lines, progress output) is
//! bit-identical no matter how many workers ran. With jobs that are pure
//! functions of their index, an N-thread run is therefore
//! indistinguishable from a 1-thread run everywhere outside wall-clock
//! time.
//!
//! [`ServicePool`] is the embeddable, continuously-fed variant `das-serve`
//! builds on: tasks arrive over the pool's lifetime, each task reports its
//! own completion (the server's job registry), and a panicking task never
//! takes a worker down.
//!
//! Lock-poisoning policy: every queue mutex here guards plain
//! `VecDeque`s whose operations (`push_back`/`pop_front`/`pop_back`)
//! cannot panic mid-mutation, so a poisoned lock only means *some other*
//! thread panicked while holding it — the queue itself is still
//! consistent. All sites therefore recover with
//! `PoisonError::into_inner` instead of cascading the panic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, recovering from poisoning (see the module-level policy).
fn lock_queue<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `n_jobs` jobs on `threads` workers, invoking `emit(job, result)`
/// on the calling thread in strictly ascending job order, starting while
/// later jobs are still executing.
///
/// `run` must be a pure function of the job index (up to shared memoized
/// state that is itself deterministic); the pool guarantees only ordering,
/// not value determinism.
pub fn run_ordered<R, F, E>(threads: usize, n_jobs: usize, run: F, mut emit: E)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    E: FnMut(usize, R),
{
    let threads = threads.max(1).min(n_jobs.max(1));
    let queues: Vec<Mutex<VecDeque<usize>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for job in 0..n_jobs {
        lock_queue(&queues[job % threads]).push_back(job);
    }
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for w in 0..threads {
            let tx = tx.clone();
            let queues = &queues;
            let run = &run;
            s.spawn(move || loop {
                // Own queue first (front), then steal from the back of the
                // others. Jobs are fixed up-front, so "every queue empty"
                // means the pool is drained.
                let mut job = lock_queue(&queues[w]).pop_front();
                if job.is_none() {
                    for off in 1..queues.len() {
                        let victim = (w + off) % queues.len();
                        job = lock_queue(&queues[victim]).pop_back();
                        if job.is_some() {
                            break;
                        }
                    }
                }
                match job {
                    Some(j) => {
                        if tx.send((j, run(j))).is_err() {
                            return;
                        }
                    }
                    None => return,
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        for (job, result) in rx {
            pending.insert(job, result);
            while let Some(r) = pending.remove(&next) {
                emit(next, r);
                next += 1;
            }
        }
        while let Some(r) = pending.remove(&next) {
            emit(next, r);
            next += 1;
        }
    });
}

/// A boxed unit of service work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

struct ServiceShared {
    /// One deque per worker behind a single lock (stealing needs a
    /// consistent view of all of them anyway).
    queues: Mutex<Vec<VecDeque<Task>>>,
    /// Signalled on submit and on shutdown.
    available: Condvar,
    /// Once set, workers exit as soon as every queue is empty — queued
    /// tasks still run (drain-then-stop, never drop).
    shutdown: AtomicBool,
    /// Tasks whose panic was contained by the worker loop.
    panicked: AtomicU64,
}

/// A long-running worker pool for continuously arriving tasks — the
/// service-mode sibling of [`run_ordered`], with the same round-robin
/// deal + steal-from-the-back discipline.
///
/// Unlike `run_ordered` there is no reorder buffer: each task carries its
/// own completion effect (e.g. updating `das-serve`'s job registry), and
/// results stay deterministic because every task is a pure function of
/// its job spec. A panicking task is contained with `catch_unwind`: the
/// worker survives, the panic is counted, and the remaining queue keeps
/// draining — one bad job cannot stall the service.
pub struct ServicePool {
    shared: Arc<ServiceShared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next: AtomicU64,
}

impl ServicePool {
    /// Starts `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> ServicePool {
        let threads = threads.max(1);
        let shared = Arc::new(ServiceShared {
            queues: Mutex::new((0..threads).map(|_| VecDeque::new()).collect()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            panicked: AtomicU64::new(0),
        });
        let workers = (0..threads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        ServicePool {
            shared,
            workers: Mutex::new(workers),
            next: AtomicU64::new(0),
        }
    }

    /// Enqueues one task (round-robin dealt across worker queues).
    /// Admission control is the caller's job — the pool itself is
    /// unbounded.
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        let mut queues = lock_queue(&self.shared.queues);
        let w = self.next.fetch_add(1, Ordering::Relaxed) as usize % queues.len();
        queues[w].push_back(Box::new(task));
        drop(queues);
        self.shared.available.notify_one();
    }

    /// Tasks currently waiting in queues (not yet picked up).
    pub fn pending(&self) -> usize {
        lock_queue(&self.shared.queues)
            .iter()
            .map(VecDeque::len)
            .sum()
    }

    /// Tasks whose panic the pool contained so far.
    pub fn panicked_tasks(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Drains and stops: already-queued tasks still run, then every worker
    /// exits and is joined. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let workers = std::mem::take(&mut *lock_queue(&self.workers));
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &ServiceShared, w: usize) {
    loop {
        let task = {
            let mut queues = lock_queue(&shared.queues);
            loop {
                // Own queue first (front), then steal from the back of the
                // others — the run_ordered discipline.
                if let Some(t) = queues[w].pop_front() {
                    break Some(t);
                }
                let n = queues.len();
                let stolen = (1..n).find_map(|off| queues[(w + off) % n].pop_back());
                if stolen.is_some() {
                    break stolen;
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queues = shared
                    .available
                    .wait(queues)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            Some(t) => {
                // Contain task panics: the task's own completion handling
                // (e.g. marking a job failed) is the task's business; the
                // worker must survive to run the rest of the queue.
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(t)).is_err() {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn emission(threads: usize, n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        run_ordered(threads, n, |j| j * j, |j, r| out.push((j, r)));
        out
    }

    #[test]
    fn emits_every_job_in_ascending_order() {
        for threads in [1, 2, 3, 8] {
            let out = emission(threads, 37);
            assert_eq!(out.len(), 37, "threads={threads}");
            for (i, (j, r)) in out.iter().enumerate() {
                assert_eq!(*j, i);
                assert_eq!(*r, i * i);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_emission() {
        assert_eq!(emission(1, 25), emission(8, 25));
    }

    #[test]
    fn more_threads_than_jobs_and_zero_jobs_work() {
        assert_eq!(emission(16, 3).len(), 3);
        assert_eq!(emission(4, 0).len(), 0);
    }

    #[test]
    fn each_job_runs_exactly_once() {
        let runs = AtomicUsize::new(0);
        let mut emitted = 0usize;
        run_ordered(
            4,
            100,
            |_| runs.fetch_add(1, Ordering::SeqCst),
            |_, _| emitted += 1,
        );
        assert_eq!(runs.load(Ordering::SeqCst), 100);
        assert_eq!(emitted, 100);
    }

    #[test]
    fn service_pool_runs_every_task_across_threads() {
        let pool = ServicePool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..200 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 200);
        assert_eq!(pool.pending(), 0);
    }

    #[test]
    fn service_pool_shutdown_drains_queued_tasks() {
        // Queue far more tasks than workers, shut down immediately: every
        // queued task must still run (drain-then-stop, never drop).
        let pool = ServicePool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                std::thread::sleep(std::time::Duration::from_millis(1));
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let pool = ServicePool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("job exploded"));
        let d = Arc::clone(&done);
        pool.submit(move || {
            d.fetch_add(1, Ordering::SeqCst);
        });
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
        assert_eq!(pool.panicked_tasks(), 1);
    }

    #[test]
    fn service_pool_is_idempotent_on_double_shutdown() {
        let pool = ServicePool::new(2);
        pool.submit(|| {});
        pool.shutdown();
        pool.shutdown();
        assert_eq!(pool.pending(), 0);
    }
}
