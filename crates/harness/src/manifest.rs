//! The declarative run matrix: a [`Manifest`] is a list of experiments,
//! each a list of [`JobSpec`]s — everything one simulation run needs
//! (design, workload, seed, instruction budget, scale, and the parameter
//! overrides the figure sweeps vary), as data instead of code.
//!
//! Every figure/table/ablation binary can *emit* its manifest
//! (`--emit-manifest PATH`) instead of executing it, and the `harness`
//! binary executes any manifest — the run matrix becomes a file you can
//! inspect, split, diff and resume.
//!
//! Manifests are strict JSON (rendered and parsed by
//! [`das_telemetry::json`]); unknown fields are rejected so a typo in a
//! hand-edited manifest fails loudly instead of silently running the
//! default configuration.

use das_sim::config::{Design, SystemConfig};
use das_telemetry::json::{self, Value};
use das_workloads::config::WorkloadConfig;
use das_workloads::{mixes, shared, spec};

/// Manifest format version (bumped on breaking schema changes).
///
/// Version history:
/// * **1** — initial schema (PR 3).
/// * **2** — design-key vocabulary grew `clr`/`lisa`/`salp` for the
///   cross-architecture backend family. Structurally identical to v1, so
///   v1 documents still parse.
/// * **3** — workload tokens grew `shared:<kind>` (coherent multi-core
///   front end) and overrides grew `protocol`/`cores`/`sharing`. Older
///   documents still parse.
/// * **4** — overrides grew `policy:<name>` (adaptive migration policies:
///   `paper_fixed`, `hysteresis`, `cost_aware`, `phase_adaptive`,
///   `feedback`), valid only on dynamic exclusive designs. Older documents
///   still parse.
pub const MANIFEST_VERSION: u64 = 4;

/// The oldest manifest version this build still reads.
pub const MANIFEST_MIN_VERSION: u64 = 1;

/// A complete run matrix: one or more experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Grid-wide per-core instruction budget — the `--insts` the grid was
    /// built from. Individual jobs carry their own (possibly derived)
    /// budgets; this root value parameterises the job-free experiments
    /// (Tables 1/2 render from pure configuration).
    pub insts: u64,
    /// Grid-wide capacity scale factor (same role as `insts`).
    pub scale: u32,
    /// The experiments, in presentation order.
    pub experiments: Vec<ExperimentPlan>,
}

/// One experiment: an identifier (the figure/table/ablation it renders)
/// plus its jobs in deterministic execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentPlan {
    /// Catalog identifier (`fig7a`, `table1`, `ablation_salp`, …).
    pub id: String,
    /// Jobs in execution (and journal) order.
    pub jobs: Vec<JobSpec>,
}

/// One simulation run, fully described.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Manifest-unique job id (`<experiment>/<row>/<column>`).
    pub id: String,
    /// Design key (see [`design_key`]): `std`, `sas`, `charm`, `das`,
    /// `das_fm`, `fs`, `das_incl`, `tl`.
    pub design: String,
    /// Workload token: a Table 2 benchmark name (`mcf`) or a mix
    /// (`mix:M1`, which expands to the paper's four benchmarks with
    /// halved footprints).
    pub workload: String,
    /// Per-core instruction budget.
    pub insts: u64,
    /// Capacity scale factor.
    pub scale: u32,
    /// Master seed (workloads, replacement randomness).
    pub seed: u64,
    /// Parameter overrides relative to the Table 1 configuration.
    pub ov: Overrides,
}

/// Optional per-job parameter overrides. `None` fields keep the Table 1
/// defaults; only set fields are serialised, so manifests stay readable.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Overrides {
    /// Promotion-filter threshold (Fig. 8 sweeps).
    pub threshold: Option<u32>,
    /// Migration group size in rows (Fig. 9b sweep).
    pub group_size: Option<u32>,
    /// Full-scale translation-cache capacity in bytes (Fig. 9a sweep).
    pub tcache_bytes: Option<u64>,
    /// Fast-level capacity ratio denominator (`1/N`, Fig. 9c/9d sweeps).
    pub fast_ratio_den: Option<u32>,
    /// Replacement policy (`lru`, `random`, `seq`, `counter`).
    pub replacement: Option<String>,
    /// Scheduler kind (`frfcfs`, `fcfs`).
    pub scheduler: Option<String>,
    /// Row-buffer page policy (`open`, `closed`).
    pub page_policy: Option<String>,
    /// Subarray-level parallelism (SALP ablation).
    pub salp: Option<bool>,
    /// Physical arrangement (`reduced`, `partitioning`, `interleaving`).
    pub arrangement: Option<String>,
    /// Device-timing override: swap latency in ticks (migration ablation;
    /// `single_migration` is derived as half the swap).
    pub swap_ticks: Option<u64>,
    /// Uniform fault-injection rate (see `das_faults::FaultPlan::uniform`).
    pub fault_rate: Option<f64>,
    /// Fault-plan seed (defaults to the fault-sweep seed when a rate is
    /// set).
    pub fault_seed: Option<u64>,
    /// Consistency-checker period in events (0 disables).
    pub invariant_check_events: Option<u64>,
    /// Telemetry epoch length in CPU cycles (enables the sink).
    pub telemetry_epoch: Option<u64>,
    /// Runaway-event budget override.
    pub event_budget: Option<u64>,
    /// Watchdog same-tick-wake threshold override.
    pub watchdog_wakes: Option<u32>,
    /// Side-effect export: write the run's Chrome trace-event JSON here
    /// (requires `telemetry_epoch`).
    pub trace_path: Option<String>,
    /// Coherence protocol for `shared:*` workloads (`mesi`, `dragon`).
    pub protocol: Option<String>,
    /// Core count for `shared:*` workloads (default 4).
    pub cores: Option<u32>,
    /// Sharing intensity for `shared:*` workloads (`low`, `mid`, `high`).
    pub sharing: Option<String>,
    /// Migration policy (`paper_fixed`, `hysteresis`, `cost_aware`,
    /// `phase_adaptive`, `feedback`); dynamic exclusive designs only.
    pub policy: Option<String>,
}

/// Default fault-plan seed (the fault-sweep bench's historic constant).
pub const DEFAULT_FAULT_SEED: u64 = 0xda5_fa17;

/// The stable manifest key of a design.
pub fn design_key(d: Design) -> &'static str {
    match d {
        Design::Standard => "std",
        Design::SasDram => "sas",
        Design::Charm => "charm",
        Design::DasDram => "das",
        Design::DasDramFm => "das_fm",
        Design::FsDram => "fs",
        Design::DasInclusive => "das_incl",
        Design::TlDram => "tl",
        Design::ClrDram => "clr",
        Design::Lisa => "lisa",
        Design::Salp => "salp",
    }
}

/// Parses a design key back to the [`Design`].
///
/// # Errors
///
/// Returns a message naming the unknown key.
pub fn parse_design(key: &str) -> Result<Design, String> {
    Ok(match key {
        "std" => Design::Standard,
        "sas" => Design::SasDram,
        "charm" => Design::Charm,
        "das" => Design::DasDram,
        "das_fm" => Design::DasDramFm,
        "fs" => Design::FsDram,
        "das_incl" => Design::DasInclusive,
        "tl" => Design::TlDram,
        "clr" => Design::ClrDram,
        "lisa" => Design::Lisa,
        "salp" => Design::Salp,
        other => return Err(format!("unknown design key {other:?}")),
    })
}

/// Resolves a workload token into the (full-scale) workload set:
/// `"<bench>"` → one Table 2 benchmark; `"mix:<M>"` → the paper's
/// four-benchmark mix with per-benchmark footprints halved (the
/// multi-programming execution point of Fig. 7e); `"shared:<kind>"` → a
/// shared-footprint coherent workload (`ring`, `lock`, `frontier`) at the
/// default four-core mid-sharing point (overrides refine it, see
/// [`JobSpec::coherent_spec`]).
///
/// # Errors
///
/// Returns a message naming the unknown token.
pub fn resolve_workload(token: &str) -> Result<Vec<WorkloadConfig>, String> {
    if let Some(mix_name) = token.strip_prefix("mix:") {
        if !mixes::names().contains(&mix_name) {
            return Err(format!("unknown mix {mix_name:?}"));
        }
        Ok(mixes::mix(mix_name).iter().map(|w| w.scaled(2)).collect())
    } else if let Some(kind) = token.strip_prefix("shared:") {
        let kind = shared::SharedKind::parse(kind)
            .ok_or_else(|| format!("unknown shared workload {kind:?}"))?;
        Ok(shared::SharedSpec::new(kind, 4, shared::Sharing::Mid).workload_configs())
    } else {
        if !spec::names().contains(&token) {
            return Err(format!("unknown benchmark {token:?}"));
        }
        Ok(vec![spec::by_name(token)])
    }
}

impl JobSpec {
    /// For `shared:<kind>` workload tokens, resolves the coherent
    /// front-end parameters: the full-scale shared-footprint spec (kind,
    /// core count, sharing intensity) and the coherence protocol. Classic
    /// workload tokens return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown kind/protocol/sharing tokens, an
    /// out-of-range core count, or coherent overrides on a classic
    /// workload.
    pub fn coherent_spec(
        &self,
    ) -> Result<Option<(shared::SharedSpec, das_coherence::ProtocolKind)>, String> {
        let Some(kind) = self.workload.strip_prefix("shared:") else {
            if self.ov.protocol.is_some() || self.ov.cores.is_some() || self.ov.sharing.is_some() {
                return Err("protocol/cores/sharing overrides need a shared:* workload".to_string());
            }
            return Ok(None);
        };
        let kind = shared::SharedKind::parse(kind)
            .ok_or_else(|| format!("unknown shared workload {kind:?}"))?;
        let cores = match self.ov.cores {
            Some(c) if (1..=16).contains(&c) => c as usize,
            Some(c) => return Err(format!("cores override must be 1..=16, got {c}")),
            None => 4,
        };
        let sharing = match &self.ov.sharing {
            Some(s) => shared::Sharing::parse(s)
                .ok_or_else(|| format!("unknown sharing intensity {s:?}"))?,
            None => shared::Sharing::Mid,
        };
        let protocol = match &self.ov.protocol {
            Some(p) => das_coherence::ProtocolKind::parse(p)
                .ok_or_else(|| format!("unknown coherence protocol {p:?}"))?,
            None => das_coherence::ProtocolKind::Mesi,
        };
        Ok(Some((
            shared::SharedSpec::new(kind, cores, sharing),
            protocol,
        )))
    }

    /// Materialises the job: the system configuration (with all overrides
    /// applied), the design, and the full-scale workload set.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown design/workload/override tokens.
    pub fn materialize(&self) -> Result<(SystemConfig, Design, Vec<WorkloadConfig>), String> {
        use das_core::replacement::ReplacementPolicy;
        use das_dram::geometry::{Arrangement, FastRatio};
        use das_memctrl::controller::{PagePolicy, SchedulerKind};

        let design = parse_design(&self.design)?;
        let workloads = match self.coherent_spec()? {
            Some((spec, _)) => {
                if design.needs_profile() {
                    return Err(format!(
                        "design {:?} needs a profiling pre-pass, which shared:* \
                         workloads do not support",
                        self.design
                    ));
                }
                spec.workload_configs()
            }
            None => resolve_workload(&self.workload)?,
        };
        let mut cfg = SystemConfig::scaled_by(self.scale, self.insts);
        cfg.seed = self.seed;
        let ov = &self.ov;
        if let Some(t) = ov.threshold {
            cfg.management.promotion_threshold = t;
        }
        if let Some(g) = ov.group_size {
            cfg.management.group_size = g;
        }
        if let Some(b) = ov.tcache_bytes {
            cfg.management.tcache_bytes = b;
        }
        if let Some(den) = ov.fast_ratio_den {
            cfg.management.fast_ratio = FastRatio::new(1, den);
        }
        if let Some(r) = &ov.replacement {
            cfg.management.replacement = match r.as_str() {
                "lru" => ReplacementPolicy::Lru,
                "random" => ReplacementPolicy::Random,
                "seq" => ReplacementPolicy::Sequential,
                "counter" => ReplacementPolicy::GlobalCounter,
                other => return Err(format!("unknown replacement policy {other:?}")),
            };
        }
        if let Some(s) = &ov.scheduler {
            cfg.controller.scheduler = match s.as_str() {
                "frfcfs" => SchedulerKind::FrFcfs,
                "fcfs" => SchedulerKind::Fcfs,
                other => return Err(format!("unknown scheduler {other:?}")),
            };
        }
        if let Some(p) = &ov.page_policy {
            cfg.controller.page_policy = match p.as_str() {
                "open" => PagePolicy::Open,
                "closed" => PagePolicy::Closed,
                other => return Err(format!("unknown page policy {other:?}")),
            };
        }
        if let Some(s) = ov.salp {
            cfg.salp = s;
        }
        if let Some(a) = &ov.arrangement {
            cfg.arrangement = match a.as_str() {
                "reduced" => Arrangement::ReducedInterleaving,
                "partitioning" => Arrangement::Partitioning,
                "interleaving" => Arrangement::Interleaving,
                other => return Err(format!("unknown arrangement {other:?}")),
            };
        }
        if let Some(swap) = ov.swap_ticks {
            let mut t = design.timing();
            t.swap = das_dram::tick::Tick::new(swap);
            t.single_migration = das_dram::tick::Tick::new(swap / 2);
            cfg.timing_override = Some(t);
        }
        if let Some(rate) = ov.fault_rate {
            let seed = ov.fault_seed.unwrap_or(DEFAULT_FAULT_SEED);
            cfg.faults = das_faults::FaultPlan::uniform(seed, rate);
        }
        if let Some(n) = ov.invariant_check_events {
            cfg.invariant_check_events = n;
        }
        if let Some(epoch) = ov.telemetry_epoch {
            cfg.telemetry = das_telemetry::TelemetryConfig::on(epoch);
        }
        if let Some(e) = ov.event_budget {
            cfg.event_budget = e;
        }
        if let Some(w) = ov.watchdog_wakes {
            cfg.watchdog_same_tick_wakes = w;
        }
        if let Some(p) = &ov.policy {
            let kind = das_policy::PolicyKind::parse(p)
                .ok_or_else(|| format!("unknown migration policy {p:?}"))?;
            if !design.is_dynamic() || design.is_inclusive() || design.needs_profile() {
                return Err(format!(
                    "policy override needs a dynamic exclusive design, got {:?}",
                    self.design
                ));
            }
            cfg.policy = Some(kind);
        }
        Ok((cfg, design, workloads))
    }

    /// Serialises the job as a JSON object (only-set overrides included).
    pub fn to_value(&self) -> Value {
        let mut ov = Value::obj();
        macro_rules! put {
            ($field:ident as u64) => {
                if let Some(v) = self.ov.$field {
                    ov = ov.set(stringify!($field), u64::from(v));
                }
            };
            ($field:ident) => {
                if let Some(v) = &self.ov.$field {
                    ov = ov.set(stringify!($field), v.clone());
                }
            };
        }
        put!(threshold as u64);
        put!(group_size as u64);
        put!(tcache_bytes as u64);
        put!(fast_ratio_den as u64);
        put!(replacement);
        put!(scheduler);
        put!(page_policy);
        put!(salp);
        put!(arrangement);
        put!(swap_ticks as u64);
        put!(fault_rate);
        put!(fault_seed as u64);
        put!(invariant_check_events as u64);
        put!(telemetry_epoch as u64);
        put!(event_budget as u64);
        put!(watchdog_wakes as u64);
        put!(trace_path);
        put!(protocol);
        put!(cores as u64);
        put!(sharing);
        put!(policy);
        Value::obj()
            .set("id", self.id.as_str())
            .set("design", self.design.as_str())
            .set("workload", self.workload.as_str())
            .set("insts", self.insts)
            .set("scale", u64::from(self.scale))
            .set("seed", self.seed)
            .set("ov", ov)
    }

    /// Parses a job from its JSON object form (strict: unknown fields and
    /// unknown override keys are rejected).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_value(v: &Value) -> Result<JobSpec, String> {
        let obj = match v {
            Value::Obj(pairs) => pairs,
            _ => return Err("job must be an object".into()),
        };
        let mut job = JobSpec {
            id: String::new(),
            design: String::new(),
            workload: String::new(),
            insts: 0,
            scale: 0,
            seed: 0,
            ov: Overrides::default(),
        };
        for (k, val) in obj {
            match k.as_str() {
                "id" => job.id = req_str(val, "id")?,
                "design" => job.design = req_str(val, "design")?,
                "workload" => job.workload = req_str(val, "workload")?,
                "insts" => job.insts = req_u64(val, "insts")?,
                "scale" => {
                    job.scale = u32::try_from(req_u64(val, "scale")?)
                        .map_err(|_| "scale out of range".to_string())?;
                }
                "seed" => job.seed = req_u64(val, "seed")?,
                "ov" => job.ov = Overrides::from_value(val)?,
                other => return Err(format!("unknown job field {other:?}")),
            }
        }
        if job.id.is_empty() || job.design.is_empty() || job.workload.is_empty() {
            return Err("job needs id, design and workload".into());
        }
        if job.insts == 0 || job.scale == 0 {
            return Err(format!("job {} needs insts and scale", job.id));
        }
        Ok(job)
    }
}

impl Overrides {
    /// Parses the overrides object (strict).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_value(v: &Value) -> Result<Overrides, String> {
        let obj = match v {
            Value::Obj(pairs) => pairs,
            _ => return Err("ov must be an object".into()),
        };
        let mut ov = Overrides::default();
        for (k, val) in obj {
            match k.as_str() {
                "threshold" => ov.threshold = Some(req_u32(val, k)?),
                "group_size" => ov.group_size = Some(req_u32(val, k)?),
                "tcache_bytes" => ov.tcache_bytes = Some(req_u64(val, k)?),
                "fast_ratio_den" => ov.fast_ratio_den = Some(req_u32(val, k)?),
                "replacement" => ov.replacement = Some(req_str(val, k)?),
                "scheduler" => ov.scheduler = Some(req_str(val, k)?),
                "page_policy" => ov.page_policy = Some(req_str(val, k)?),
                "salp" => ov.salp = Some(val.as_bool().ok_or("salp must be a bool")?),
                "arrangement" => ov.arrangement = Some(req_str(val, k)?),
                "swap_ticks" => ov.swap_ticks = Some(req_u64(val, k)?),
                "fault_rate" => {
                    ov.fault_rate = Some(val.as_f64().ok_or("fault_rate must be a number")?);
                }
                "fault_seed" => ov.fault_seed = Some(req_u64(val, k)?),
                "invariant_check_events" => ov.invariant_check_events = Some(req_u64(val, k)?),
                "telemetry_epoch" => ov.telemetry_epoch = Some(req_u64(val, k)?),
                "event_budget" => ov.event_budget = Some(req_u64(val, k)?),
                "watchdog_wakes" => ov.watchdog_wakes = Some(req_u32(val, k)?),
                "trace_path" => ov.trace_path = Some(req_str(val, k)?),
                "protocol" => ov.protocol = Some(req_str(val, k)?),
                "cores" => ov.cores = Some(req_u32(val, k)?),
                "sharing" => ov.sharing = Some(req_str(val, k)?),
                "policy" => ov.policy = Some(req_str(val, k)?),
                other => return Err(format!("unknown override {other:?}")),
            }
        }
        Ok(ov)
    }
}

fn req_str(v: &Value, field: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{field} must be a string"))
}

fn req_u64(v: &Value, field: &str) -> Result<u64, String> {
    v.as_u64().ok_or_else(|| format!("{field} must be a u64"))
}

fn req_u32(v: &Value, field: &str) -> Result<u32, String> {
    u32::try_from(req_u64(v, field)?).map_err(|_| format!("{field} out of u32 range"))
}

impl Manifest {
    /// Serialises the manifest as one JSON document.
    pub fn to_value(&self) -> Value {
        Value::obj()
            .set("das_manifest", MANIFEST_VERSION)
            .set("insts", self.insts)
            .set("scale", u64::from(self.scale))
            .set(
                "experiments",
                Value::Arr(
                    self.experiments
                        .iter()
                        .map(|e| {
                            Value::obj().set("id", e.id.as_str()).set(
                                "jobs",
                                Value::Arr(e.jobs.iter().map(JobSpec::to_value).collect()),
                            )
                        })
                        .collect(),
                ),
            )
    }

    /// Renders the manifest document.
    pub fn render(&self) -> String {
        self.to_value().render()
    }

    /// Parses and validates a manifest document.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON, schema violations, duplicate
    /// job ids, or unresolvable designs/workloads.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("das_manifest")
            .and_then(Value::as_u64)
            .ok_or("not a das_manifest document")?;
        if !(MANIFEST_MIN_VERSION..=MANIFEST_VERSION).contains(&version) {
            return Err(format!(
                "manifest version {version} unsupported (this build reads \
                 {MANIFEST_MIN_VERSION}..={MANIFEST_VERSION})"
            ));
        }
        let insts = doc
            .get("insts")
            .and_then(Value::as_u64)
            .ok_or("manifest needs a root insts")?;
        let scale = doc
            .get("scale")
            .and_then(Value::as_u64)
            .and_then(|s| u32::try_from(s).ok())
            .ok_or("manifest needs a root scale")?;
        if insts == 0 || scale == 0 {
            return Err("manifest insts and scale must be positive".into());
        }
        let exps = doc
            .get("experiments")
            .and_then(Value::as_arr)
            .ok_or("missing experiments array")?;
        let mut experiments = Vec::new();
        for e in exps {
            let id = e
                .get("id")
                .and_then(Value::as_str)
                .ok_or("experiment needs an id")?
                .to_string();
            let jobs = e
                .get("jobs")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("experiment {id} needs a jobs array"))?
                .iter()
                .map(JobSpec::from_value)
                .collect::<Result<Vec<_>, _>>()
                .map_err(|err| format!("experiment {id}: {err}"))?;
            experiments.push(ExperimentPlan { id, jobs });
        }
        let m = Manifest {
            insts,
            scale,
            experiments,
        };
        m.validate()?;
        Ok(m)
    }

    /// Checks job-id uniqueness and that every job materialises.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for e in &self.experiments {
            for j in &e.jobs {
                if !seen.insert(j.id.as_str()) {
                    return Err(format!("duplicate job id {:?}", j.id));
                }
                j.materialize()
                    .map_err(|err| format!("job {}: {err}", j.id))?;
            }
        }
        Ok(())
    }

    /// All jobs across experiments, in execution order.
    pub fn jobs(&self) -> Vec<&JobSpec> {
        self.experiments
            .iter()
            .flat_map(|e| e.jobs.iter())
            .collect()
    }

    /// A 64-bit FNV-1a fingerprint of the rendered manifest, as fixed-width
    /// hex. Journals record it so a resume against a *different* manifest
    /// is rejected instead of silently misattributing results.
    pub fn fingerprint(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.render().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        format!("{h:016x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            insts: 100_000,
            scale: 64,
            experiments: vec![ExperimentPlan {
                id: "fig8a".into(),
                jobs: vec![
                    JobSpec {
                        id: "fig8a/mcf/std".into(),
                        design: "std".into(),
                        workload: "mcf".into(),
                        insts: 100_000,
                        scale: 64,
                        seed: 42,
                        ov: Overrides::default(),
                    },
                    JobSpec {
                        id: "fig8a/mcf/t4".into(),
                        design: "das".into(),
                        workload: "mcf".into(),
                        insts: 100_000,
                        scale: 64,
                        seed: 42,
                        ov: Overrides {
                            threshold: Some(4),
                            ..Overrides::default()
                        },
                    },
                    JobSpec {
                        id: "fig8a/M1/das".into(),
                        design: "das".into(),
                        workload: "mix:M1".into(),
                        insts: 50_000,
                        scale: 64,
                        seed: 42,
                        ov: Overrides::default(),
                    },
                ],
            }],
        }
    }

    #[test]
    fn manifest_round_trips_and_fingerprints_stably() {
        let m = sample();
        let doc = m.render();
        let back = Manifest::parse(&doc).expect("round trip");
        assert_eq!(back, m);
        assert_eq!(back.render(), doc);
        assert_eq!(back.fingerprint(), m.fingerprint());
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let mut doc = sample().to_value();
        // Splice an unknown override into the rendered text.
        let text = doc
            .render()
            .replace("\"threshold\":4", "\"threshold\":4,\"warp_factor\":9");
        assert!(Manifest::parse(&text).unwrap_err().contains("warp_factor"));
        doc = Value::obj()
            .set("das_manifest", 99u64)
            .set("insts", 1u64)
            .set("scale", 1u64)
            .set("experiments", Value::Arr(Vec::new()));
        assert!(Manifest::parse(&doc.render())
            .unwrap_err()
            .contains("version"));
    }

    #[test]
    fn duplicate_job_ids_are_rejected() {
        let mut m = sample();
        let dup = m.experiments[0].jobs[0].clone();
        m.experiments[0].jobs.push(dup);
        assert!(m.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn materialize_applies_overrides() {
        let m = sample();
        let (cfg, design, wl) = m.experiments[0].jobs[1].materialize().unwrap();
        assert_eq!(design, Design::DasDram);
        assert_eq!(cfg.management.promotion_threshold, 4);
        assert_eq!(cfg.inst_budget, 100_000);
        assert_eq!(wl.len(), 1);
        let (_, _, mix) = m.experiments[0].jobs[2].materialize().unwrap();
        assert_eq!(mix.len(), 4, "mix token expands to four benchmarks");
    }

    #[test]
    fn design_keys_round_trip() {
        for d in [
            Design::Standard,
            Design::SasDram,
            Design::Charm,
            Design::DasDram,
            Design::DasDramFm,
            Design::FsDram,
            Design::DasInclusive,
            Design::TlDram,
            Design::ClrDram,
            Design::Lisa,
            Design::Salp,
        ] {
            assert_eq!(parse_design(design_key(d)).unwrap(), d);
        }
        assert!(parse_design("warp").is_err());
        assert!(resolve_workload("mix:M99").is_err());
        assert!(resolve_workload("nosuchbench").is_err());
    }

    #[test]
    fn v1_manifests_still_parse() {
        // A v3 reader must accept documents written by the older schemas:
        // same structure, smaller design-key/workload-token vocabulary.
        for old in 1..MANIFEST_VERSION {
            let old_text = sample().render().replace(
                &format!("\"das_manifest\":{MANIFEST_VERSION}"),
                &format!("\"das_manifest\":{old}"),
            );
            assert_ne!(old_text, sample().render(), "substitution must hit");
            let back = Manifest::parse(&old_text).expect("old document parses");
            assert_eq!(back, sample());
        }
        // Future versions stay rejected.
        let next = MANIFEST_VERSION + 1;
        let next_text = sample().render().replace(
            &format!("\"das_manifest\":{MANIFEST_VERSION}"),
            &format!("\"das_manifest\":{next}"),
        );
        assert!(Manifest::parse(&next_text).unwrap_err().contains("version"));
    }

    #[test]
    fn shared_workload_tokens_materialize() {
        let job = JobSpec {
            id: "coh/lock/das".into(),
            design: "das".into(),
            workload: "shared:lock".into(),
            insts: 100_000,
            scale: 64,
            seed: 42,
            ov: Overrides {
                protocol: Some("dragon".into()),
                cores: Some(2),
                sharing: Some("high".into()),
                ..Overrides::default()
            },
        };
        let (spec, protocol) = job.coherent_spec().unwrap().expect("coherent job");
        assert_eq!(protocol, das_coherence::ProtocolKind::Dragon);
        assert_eq!(spec.cores, 2);
        assert_eq!(spec.name(), "lock x2 @high");
        let (_, design, wl) = job.materialize().unwrap();
        assert_eq!(design, Design::DasDram);
        assert_eq!(wl.len(), 2, "one stream per core");
        // Round trip preserves the coherent overrides.
        let back = JobSpec::from_value(&job.to_value()).unwrap();
        assert_eq!(back, job);
    }

    #[test]
    fn policy_overrides_materialize_and_round_trip() {
        let mut job = JobSpec {
            id: "pol/mcf/das".into(),
            design: "das".into(),
            workload: "mcf".into(),
            insts: 100_000,
            scale: 64,
            seed: 42,
            ov: Overrides {
                policy: Some("cost_aware".into()),
                ..Overrides::default()
            },
        };
        let (cfg, design, _) = job.materialize().unwrap();
        assert_eq!(design, Design::DasDram);
        assert_eq!(cfg.policy, Some(das_policy::PolicyKind::CostAware));
        let back = JobSpec::from_value(&job.to_value()).unwrap();
        assert_eq!(back, job);
        // Every shipped policy key is a valid token.
        for kind in das_policy::ALL_POLICIES {
            job.ov.policy = Some(kind.key().into());
            let (cfg, _, _) = job.materialize().unwrap();
            assert_eq!(cfg.policy, Some(kind));
        }
    }

    #[test]
    fn policy_override_errors_are_loud() {
        let mut job = JobSpec {
            id: "pol/bad".into(),
            design: "das".into(),
            workload: "mcf".into(),
            insts: 1_000,
            scale: 64,
            seed: 42,
            ov: Overrides {
                policy: Some("oracle".into()),
                ..Overrides::default()
            },
        };
        assert!(job.materialize().unwrap_err().contains("migration policy"));
        job.ov.policy = Some("feedback".into());
        // A policy needs a dynamic exclusive fast level to steer: the
        // homogeneous baseline, static-profiled placements and the
        // inclusive-cache managements (das_incl, TL-DRAM) are all rejected.
        for design in ["std", "salp", "sas", "charm", "das_incl", "tl"] {
            job.design = design.into();
            assert!(
                job.materialize()
                    .unwrap_err()
                    .contains("dynamic exclusive design"),
                "{design} must reject a policy override"
            );
        }
        // Dynamic exclusive designs accept it.
        for design in ["das", "das_fm", "lisa", "clr"] {
            job.design = design.into();
            assert!(job.materialize().is_ok(), "{design} runs policies");
        }
    }

    #[test]
    fn coherent_token_errors_are_loud() {
        let mut job = JobSpec {
            id: "coh/bad".into(),
            design: "das".into(),
            workload: "shared:nosuch".into(),
            insts: 1_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        };
        assert!(job.materialize().unwrap_err().contains("shared workload"));
        job.workload = "shared:ring".into();
        job.ov.protocol = Some("moesi".into());
        assert!(job.materialize().unwrap_err().contains("protocol"));
        job.ov.protocol = None;
        job.ov.cores = Some(99);
        assert!(job.materialize().unwrap_err().contains("1..=16"));
        job.ov.cores = None;
        job.design = "sas".into();
        assert!(job.materialize().unwrap_err().contains("pre-pass"));
        // Coherent overrides on a classic workload are rejected.
        job.design = "das".into();
        job.workload = "mcf".into();
        job.ov.sharing = Some("mid".into());
        assert!(job.materialize().unwrap_err().contains("shared:*"));
    }
}
