//! Memoization of the SAS/CHARM profiling pre-pass.
//!
//! [`das_sim::experiments::profile_row_counts`] walks `profile_multiplier x
//! inst_budget` instructions through a fresh cache hierarchy — it costs a
//! sizeable fraction of a full run. A manifest typically runs *both*
//! static designs over the same workload set, so the harness computes each
//! distinct profile once and shares it across jobs. The cache key is
//! everything the profile depends on: workload token, seed, scale, and
//! instruction budget (the multiplier and reallocation fraction are fixed
//! Table 1 parameters baked into the config).
//!
//! Each key maps to its own `OnceLock`, so two workers racing on the same
//! key compute it exactly once (one blocks, both share the result) while
//! different keys profile concurrently — and the value is identical no
//! matter which worker won, keeping parallel runs bit-identical.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use das_dram::geometry::GlobalRowId;
use das_sim::config::SystemConfig;
use das_sim::experiments::profile_row_counts;
use das_workloads::config::WorkloadConfig;

use crate::manifest::JobSpec;

/// Row-access counts from one profiling pre-pass.
pub type Profile = HashMap<GlobalRowId, u64>;

type Slot = Arc<OnceLock<Arc<Profile>>>;

/// Shared, thread-safe profile memo.
#[derive(Default)]
pub struct ProfileCache {
    slots: Mutex<HashMap<String, Slot>>,
}

/// The memo key of a job's profile.
pub fn profile_key(job: &JobSpec) -> String {
    format!(
        "{}|seed={}|scale={}|insts={}",
        job.workload, job.seed, job.scale, job.insts
    )
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> ProfileCache {
        ProfileCache::default()
    }

    /// Returns the profile for `key`, computing it at most once across all
    /// threads. `cfg`/`workloads` must be the materialised (full-scale)
    /// job inputs; the workloads are scaled here exactly as
    /// [`das_sim::experiments::run_one_with_profile`] scales them.
    pub fn get_or_compute(
        &self,
        key: &str,
        cfg: &SystemConfig,
        workloads: &[WorkloadConfig],
    ) -> Arc<Profile> {
        // Poison recovery: the map is only ever mutated by this
        // `entry().or_default()` (which cannot leave it half-updated), so a
        // poisoned lock means another worker panicked elsewhere while
        // holding it — the state is still consistent and safe to reuse.
        let slot: Slot = self
            .slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry(key.to_string())
            .or_default()
            .clone();
        // Compute outside the map lock: only threads waiting on *this* key
        // block, and exactly one of them runs the pre-pass.
        slot.get_or_init(|| {
            let scaled: Vec<WorkloadConfig> = workloads
                .iter()
                .map(|w| w.scaled(u64::from(cfg.scale)))
                .collect();
            Arc::new(profile_row_counts(cfg, &scaled))
        })
        .clone()
    }

    /// Number of distinct profiles computed so far.
    pub fn len(&self) -> usize {
        self.slots.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been profiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{JobSpec, Overrides};

    fn job() -> JobSpec {
        JobSpec {
            id: "t/sas".into(),
            design: "sas".into(),
            workload: "libquantum".into(),
            insts: 200_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        }
    }

    #[test]
    fn memoized_profile_equals_fresh_computation() {
        let j = job();
        let (cfg, _, workloads) = j.materialize().unwrap();
        let cache = ProfileCache::new();
        let memo = cache.get_or_compute(&profile_key(&j), &cfg, &workloads);
        let scaled: Vec<_> = workloads
            .iter()
            .map(|w| w.scaled(u64::from(cfg.scale)))
            .collect();
        let fresh = profile_row_counts(&cfg, &scaled);
        assert_eq!(*memo, fresh);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn same_key_computes_once_distinct_keys_do_not_collide() {
        let j = job();
        let (cfg, _, workloads) = j.materialize().unwrap();
        let cache = ProfileCache::new();
        let a = cache.get_or_compute(&profile_key(&j), &cfg, &workloads);
        let b = cache.get_or_compute(&profile_key(&j), &cfg, &workloads);
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the first");
        let mut j2 = job();
        j2.seed = 43;
        let (cfg2, _, wl2) = j2.materialize().unwrap();
        let c = cache.get_or_compute(&profile_key(&j2), &cfg2, &wl2);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
    }
}
