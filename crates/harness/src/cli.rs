//! Command-line drivers.
//!
//! Two entry points share one execution core:
//!
//! * [`bin_main`] — what every legacy figure binary's `main` now calls.
//!   It keeps the historical flags (`--insts/--scale/--only/--json`) and
//!   output bytes, and adds `--threads N` (bit-identical results for any
//!   N) and `--emit-manifest PATH` (describe the run matrix instead of
//!   executing it).
//! * [`harness_main`] — the standalone `harness` orchestrator: executes
//!   any manifest (or the whole catalog) across threads with a resumable
//!   fsync'd journal, writing `<id>.txt` / `<id>.json` per experiment.
//!
//! Argument parsing is pure and `Result`-based ([`parse_bin_args`],
//! [`parse_harness_args`]): a malformed flag prints a structured usage
//! error to stderr and exits with code 2 — never a panic or backtrace.
//! Runtime failures (unreadable manifest, simulation error) keep exit
//! code 1.

use std::path::{Path, PathBuf};

use das_telemetry::json::Value;

use crate::catalog::{self, BuildParams};
use crate::journal::{self, Journal};
use crate::manifest::{ExperimentPlan, JobSpec, Manifest};
use crate::pool::run_ordered;
use crate::profile::ProfileCache;
use crate::render::RenderCtx;
use crate::runner;

/// How a batch of jobs should execute.
pub struct ExecOptions<'a> {
    /// Worker threads (any value ≥ 1 yields identical results).
    pub threads: usize,
    /// Anchor for relative side-effect exports (`trace_path`).
    pub out_dir: &'a Path,
    /// Emit `[k/n] id` progress lines on stderr.
    pub progress: bool,
    /// When set, serve reference streams from this content-addressed
    /// `.dtr` store instead of regenerating them per run (results are
    /// bit-identical either way).
    pub trace_store: Option<&'a das_trace::TraceStore>,
}

/// Executes `jobs` on the pool, skipping the prefix already present in
/// `journal` (when given) and appending each new run to it in job order.
/// Returns every report — journalled and fresh — in job order.
///
/// # Errors
///
/// Returns the first simulation or journal failure; runs completed before
/// it are already journalled, so a rerun with `--resume` picks up there.
pub fn execute_jobs(
    jobs: &[JobSpec],
    opts: &ExecOptions,
    mut journal: Option<&mut Journal>,
) -> Result<Vec<Value>, String> {
    let done = journal.as_ref().map_or(0, |j| j.done());
    let total = jobs.len();
    if opts.progress && done > 0 {
        eprintln!("resuming: {done}/{total} runs already journalled");
    }
    let mut reports: Vec<Value> = journal
        .as_ref()
        .map(|j| j.entries.clone())
        .unwrap_or_default();
    let pending = &jobs[done..];
    let profiles = ProfileCache::new();
    let mut failure: Option<String> = None;
    run_ordered(
        opts.threads,
        pending.len(),
        |i| {
            let start = std::time::Instant::now();
            let result = runner::execute(&pending[i], &profiles, opts.out_dir, opts.trace_store);
            (result, start.elapsed())
        },
        |i, (result, wall)| {
            if failure.is_some() {
                return;
            }
            match result {
                Ok(report) => {
                    let job = &pending[i];
                    if let Some(j) = journal.as_deref_mut() {
                        if let Err(e) = j.append(&job.id, report.clone()) {
                            failure = Some(e);
                            return;
                        }
                    }
                    if opts.progress {
                        // Perf recorder: every run reports its host wall
                        // time and instruction rate (stderr only — the
                        // journalled report bytes are untouched).
                        eprintln!(
                            "[{}/{total}] {} ({:.0} ms, {:.2} M insts/s)",
                            done + i + 1,
                            job.id,
                            wall.as_secs_f64() * 1e3,
                            insts_retired(&report) as f64 / wall.as_secs_f64().max(1e-9) / 1e6,
                        );
                    }
                    reports.push(report);
                }
                Err(e) => failure = Some(e),
            }
        },
    );
    match failure {
        Some(e) => Err(e),
        None => Ok(reports),
    }
}

/// Sum of retired instructions across a run report's cores (zero when the
/// report carries no core metrics — the perf line then just shows 0).
fn insts_retired(report: &Value) -> u64 {
    report
        .get_path("metrics/cores")
        .and_then(Value::as_arr)
        .map(|cores| {
            cores
                .iter()
                .filter_map(|c| c.get("insts").and_then(Value::as_u64))
                .sum()
        })
        .unwrap_or(0)
}

/// `telemetry_report.json` → `telemetry_report_trace.json` (the legacy
/// telemetry binary's derivation).
fn derive_trace_path(report_path: &str) -> String {
    report_path
        .strip_suffix(".json")
        .map(|stem| format!("{stem}_trace.json"))
        .unwrap_or_else(|| format!("{report_path}_trace.json"))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Prints a usage error to stderr and exits with code 2 (the
/// argument-error convention), never panicking.
fn usage_die(msg: &str, usage: &str) -> ! {
    eprintln!("error: {msg}\n{usage}");
    std::process::exit(2);
}

/// Opens the content-addressed trace store, honouring `--no-trace-store`
/// (which wins over `--trace-store DIR`).
fn open_trace_store(dir: Option<String>, disabled: bool) -> Option<das_trace::TraceStore> {
    match (dir, disabled) {
        (Some(d), false) => Some(
            das_trace::TraceStore::open(Path::new(&d))
                .unwrap_or_else(|e| die(&format!("cannot open trace store {d}: {e}"))),
        ),
        _ => None,
    }
}

/// One-line session summary of the store's hit/miss/byte counters.
fn store_summary(store: &das_trace::TraceStore) -> String {
    let s = store.stats();
    format!(
        "trace store: {} hits, {} misses, {} KiB written, {} KiB read -> {}",
        s.hits,
        s.misses,
        s.bytes_written / 1024,
        s.bytes_read / 1024,
        store.dir().display()
    )
}

fn write_or_die(path: &Path, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
}

// ---------------------------------------------------------------------------
// Argument parsing (pure, Result-based; no process exits)
// ---------------------------------------------------------------------------

fn need(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn need_u64(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    let v = need(args, flag)?;
    match v.parse::<u64>() {
        Ok(0) => Err(format!("{flag} needs a positive integer, got 0")),
        Ok(n) => Ok(n),
        Err(_) => Err(format!("{flag} needs a positive integer, got {v:?}")),
    }
}

fn need_u32(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<u32, String> {
    u32::try_from(need_u64(args, flag)?).map_err(|_| format!("{flag} is out of range"))
}

fn need_list(args: &mut dyn Iterator<Item = String>, flag: &str) -> Result<Vec<String>, String> {
    Ok(need(args, flag)?.split(',').map(str::to_string).collect())
}

/// Usage line of the legacy figure binaries ([`bin_main`]).
pub const BIN_USAGE: &str = "usage: <figure-bin> [--insts N] [--scale N] [--only a,b] \
     [--json PATH] [--threads N] [--emit-manifest PATH] \
     [--trace-store DIR] [--no-trace-store]";

/// Parsed flags of a legacy figure binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinArgs {
    /// `--insts N` (per-core instruction budget).
    pub insts: u64,
    /// `--scale N` (capacity scale factor).
    pub scale: u32,
    /// `--only a,b` (benchmark/mix subset; empty = all).
    pub only: Vec<String>,
    /// `--json PATH` (run-report export).
    pub json: Option<String>,
    /// `--threads N` (bit-identical for any N ≥ 1).
    pub threads: usize,
    /// `--emit-manifest PATH` (describe the matrix instead of running).
    pub emit_manifest: Option<String>,
    /// `--trace-store DIR`.
    pub trace_store_dir: Option<String>,
    /// `--no-trace-store` (wins over `--trace-store`).
    pub no_trace_store: bool,
}

impl Default for BinArgs {
    fn default() -> BinArgs {
        BinArgs {
            insts: 3_000_000,
            scale: 64,
            only: Vec::new(),
            json: None,
            threads: 1,
            emit_manifest: None,
            trace_store_dir: None,
            no_trace_store: false,
        }
    }
}

/// Parses a legacy figure binary's arguments.
///
/// # Errors
///
/// Returns a usage message naming the offending flag and value (malformed
/// integers, missing values, unknown flags) — callers print it and exit 2.
pub fn parse_bin_args<I: IntoIterator<Item = String>>(args: I) -> Result<BinArgs, String> {
    let mut out = BinArgs::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--insts" => out.insts = need_u64(&mut args, "--insts")?,
            "--scale" => out.scale = need_u32(&mut args, "--scale")?,
            "--only" => out.only = need_list(&mut args, "--only")?,
            "--json" => out.json = Some(need(&mut args, "--json")?),
            "--threads" => out.threads = need_u64(&mut args, "--threads")? as usize,
            "--emit-manifest" => out.emit_manifest = Some(need(&mut args, "--emit-manifest")?),
            "--trace-store" => out.trace_store_dir = Some(need(&mut args, "--trace-store")?),
            "--no-trace-store" => out.no_trace_store = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(out)
}

/// Usage line of the standalone `harness` binary ([`harness_main`]).
pub const HARNESS_USAGE: &str = "usage: harness (--manifest PATH | --all | --exp a,b | --bench) \
     [--insts N] [--scale N] [--only a,b] [--threads N] [--resume] \
     [--json-dir DIR] [--emit-manifest PATH] [--validate-journal PATH] \
     [--trace-store DIR] [--no-trace-store]";

/// Parsed flags of the standalone `harness` binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarnessArgs {
    /// `--manifest PATH`.
    pub manifest_path: Option<String>,
    /// `--all` (the whole catalog).
    pub all: bool,
    /// `--exp a,b` (catalog subset).
    pub exp_ids: Vec<String>,
    /// `--insts N`.
    pub insts: u64,
    /// `--scale N`.
    pub scale: u32,
    /// `--only a,b`.
    pub only: Vec<String>,
    /// `--threads N`.
    pub threads: usize,
    /// `--resume`.
    pub resume: bool,
    /// `--json-dir DIR`.
    pub json_dir: Option<String>,
    /// `--emit-manifest PATH`.
    pub emit_manifest: Option<String>,
    /// `--trace-store DIR`.
    pub trace_store_dir: Option<String>,
    /// `--no-trace-store`.
    pub no_trace_store: bool,
    /// `--validate-journal PATH` (check a journal and exit).
    pub validate_journal: Option<String>,
    /// `--bench` (run the pinned perf suite and write `BENCH_<sha>.json`).
    pub bench: bool,
}

impl Default for HarnessArgs {
    fn default() -> HarnessArgs {
        HarnessArgs {
            manifest_path: None,
            all: false,
            exp_ids: Vec::new(),
            insts: 3_000_000,
            scale: 64,
            only: Vec::new(),
            threads: 1,
            resume: false,
            json_dir: None,
            emit_manifest: None,
            trace_store_dir: None,
            no_trace_store: false,
            validate_journal: None,
            bench: false,
        }
    }
}

/// Parses the `harness` orchestrator's arguments.
///
/// # Errors
///
/// Returns a usage message naming the offending flag and value — callers
/// print it and exit 2.
pub fn parse_harness_args<I: IntoIterator<Item = String>>(args: I) -> Result<HarnessArgs, String> {
    let mut out = HarnessArgs::default();
    let mut args = args.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--manifest" => out.manifest_path = Some(need(&mut args, "--manifest")?),
            "--all" => out.all = true,
            "--exp" => out.exp_ids = need_list(&mut args, "--exp")?,
            "--insts" => out.insts = need_u64(&mut args, "--insts")?,
            "--scale" => out.scale = need_u32(&mut args, "--scale")?,
            "--only" => out.only = need_list(&mut args, "--only")?,
            "--threads" => out.threads = need_u64(&mut args, "--threads")? as usize,
            "--resume" => out.resume = true,
            "--json-dir" => out.json_dir = Some(need(&mut args, "--json-dir")?),
            "--emit-manifest" => out.emit_manifest = Some(need(&mut args, "--emit-manifest")?),
            "--trace-store" => out.trace_store_dir = Some(need(&mut args, "--trace-store")?),
            "--no-trace-store" => out.no_trace_store = true,
            "--validate-journal" => {
                out.validate_journal = Some(need(&mut args, "--validate-journal")?);
            }
            "--bench" => out.bench = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if out.validate_journal.is_none()
        && out.manifest_path.is_none()
        && !out.all
        && out.exp_ids.is_empty()
        && !out.bench
    {
        return Err("nothing to run (pass --manifest, --all, --exp or --bench)".into());
    }
    Ok(out)
}

/// The experiment-family vocabulary quoted by `--exp` diagnostics, so an
/// unknown id or empty glob tells the user what the catalog groups into.
fn known_families() -> String {
    catalog::FAMILIES.join(", ")
}

/// Builds a manifest from catalog ids + grid parameters (the `--exp` /
/// `--all` path of the harness, and the `submit_experiment` request of
/// `das-serve`). An id ending in `*` expands to every catalog experiment
/// with that prefix in presentation order (`--exp cross_arch_*` runs the
/// whole family).
///
/// # Errors
///
/// Returns a message naming an unknown experiment id or a glob that
/// matches nothing, quoting the known family prefixes.
pub fn build_catalog_manifest(
    ids: &[String],
    insts: u64,
    scale: u32,
    only: &[String],
) -> Result<Manifest, String> {
    let params = BuildParams {
        insts,
        scale,
        only: only.to_vec(),
        trace_name: "telemetry_trace.json".to_string(),
    };
    let mut expanded: Vec<&'static str> = Vec::new();
    for id in ids {
        if let Some(prefix) = id.strip_suffix('*') {
            let matches: Vec<&'static str> = catalog::ids()
                .into_iter()
                .filter(|e| e.starts_with(prefix))
                .collect();
            if matches.is_empty() {
                return Err(format!(
                    "no experiments match {id:?} (known families: {})",
                    known_families()
                ));
            }
            expanded.extend(matches);
        } else {
            let exp = catalog::by_id(id).ok_or_else(|| {
                format!(
                    "unknown experiment {id:?} (known families: {})",
                    known_families()
                )
            })?;
            expanded.push(exp.id);
        }
    }
    let mut experiments = Vec::new();
    for id in expanded {
        let exp = catalog::by_id(id).expect("expanded ids come from the catalog");
        experiments.push(ExperimentPlan {
            id: exp.id.to_string(),
            jobs: (exp.build)(&params),
        });
    }
    Ok(Manifest {
        insts,
        scale,
        experiments,
    })
}

/// Renders every experiment's `<id>.txt` and `<id>.json` into `out_dir`
/// from `reports` (aligned with the manifest's flat job order). This is
/// the shared tail of a `harness` run and a `dasctl` fetch — one code
/// path, so artifacts fetched from a `das-serve` server are byte-identical
/// to a direct run's.
///
/// # Errors
///
/// Returns a message on unknown experiment ids, a report/job count
/// mismatch, or a write failure.
pub fn render_experiment_outputs(
    out_dir: &Path,
    manifest: &Manifest,
    reports: &[Value],
    progress: bool,
) -> Result<(), String> {
    let total: usize = manifest.experiments.iter().map(|e| e.jobs.len()).sum();
    if reports.len() != total {
        return Err(format!(
            "{} reports for {total} jobs — cannot render",
            reports.len()
        ));
    }
    let mut offset = 0;
    for e in &manifest.experiments {
        let n = e.jobs.len();
        let exp = catalog::by_id(&e.id)
            .ok_or_else(|| format!("manifest names unknown experiment {:?}", e.id))?;
        let report_path = out_dir.join(format!("{}.json", e.id));
        let trace_rel = e
            .jobs
            .iter()
            .find_map(|j| j.ov.trace_path.clone())
            .unwrap_or_else(|| "telemetry_trace.json".to_string());
        let exp_reports = &reports[offset..offset + n];
        let ctx = RenderCtx {
            insts: manifest.insts,
            scale: manifest.scale,
            jobs: &e.jobs,
            reports: exp_reports,
            report_path: report_path.display().to_string(),
            trace_path: out_dir.join(&trace_rel).display().to_string(),
        };
        let text = (exp.render)(&ctx);
        let txt_path = out_dir.join(format!("{}.txt", e.id));
        std::fs::write(&txt_path, &text)
            .map_err(|err| format!("cannot write {}: {err}", txt_path.display()))?;
        // The telemetry experiment historically exports its bare run
        // report; everything else exports the legacy runs document.
        let json_doc = if e.id == "telemetry" && n == 1 {
            exp_reports[0].render()
        } else {
            journal::runs_doc(exp_reports).render()
        };
        std::fs::write(&report_path, &json_doc)
            .map_err(|err| format!("cannot write {}: {err}", report_path.display()))?;
        if progress {
            eprintln!("rendered {}", txt_path.display());
        }
        offset += n;
    }
    Ok(())
}

/// Entry point of every figure/table/ablation binary: builds the
/// experiment's manifest from the historical flags and either emits it or
/// executes it and prints the historical text output.
///
/// Flags: `--insts N`, `--scale N`, `--only a,b`, `--json PATH`,
/// `--threads N`, `--emit-manifest PATH`, `--trace-store DIR`,
/// `--no-trace-store`. Malformed arguments (or an unknown experiment id)
/// print a usage error to stderr and exit 2 — no panics, no backtraces.
pub fn bin_main(id: &str) {
    let args =
        parse_bin_args(std::env::args().skip(1)).unwrap_or_else(|e| usage_die(&e, BIN_USAGE));
    let Some(exp) = catalog::by_id(id) else {
        usage_die(&format!("unknown experiment {id:?}"), BIN_USAGE)
    };
    let report_path = args
        .json
        .clone()
        .unwrap_or_else(|| "telemetry_report.json".to_string());
    let trace_path = derive_trace_path(&report_path);
    let params = BuildParams {
        insts: args.insts,
        scale: args.scale,
        only: args.only.clone(),
        trace_name: trace_path.clone(),
    };
    let manifest = Manifest {
        insts: args.insts,
        scale: args.scale,
        experiments: vec![ExperimentPlan {
            id: id.to_string(),
            jobs: (exp.build)(&params),
        }],
    };
    if let Err(e) = manifest.validate() {
        die(&format!("invalid run matrix: {e}"));
    }
    if let Some(path) = args.emit_manifest {
        write_or_die(Path::new(&path), &(manifest.render() + "\n"));
        eprintln!("wrote manifest ({} jobs): {path}", manifest.jobs().len());
        return;
    }
    let jobs = &manifest.experiments[0].jobs;
    let store = open_trace_store(args.trace_store_dir, args.no_trace_store);
    let opts = ExecOptions {
        threads: args.threads,
        out_dir: Path::new("."),
        progress: false,
        trace_store: store.as_ref(),
    };
    let reports = execute_jobs(jobs, &opts, None).unwrap_or_else(|e| die(&e));
    if let Some(s) = &store {
        eprintln!("{}", store_summary(s));
    }
    // Exports happen before rendering, which may assert on the results —
    // the legacy binaries wrote their files first too.
    if id == "telemetry" {
        write_or_die(Path::new(&report_path), &reports[0].render());
    } else if let Some(path) = &args.json {
        write_or_die(Path::new(path), &journal::runs_doc(&reports).render());
    }
    let ctx = RenderCtx {
        insts: args.insts,
        scale: args.scale,
        jobs,
        reports: &reports,
        report_path,
        trace_path,
    };
    print!("{}", (exp.render)(&ctx));
}

/// Entry point of the standalone `harness` binary.
///
/// Selects a run matrix (`--manifest PATH`, the full catalog via `--all`,
/// or a subset via `--exp a,b`), executes it on `--threads N` workers with
/// an fsync'd journal at `<json-dir>/journal.jsonl` (`--resume` continues
/// a previous run), and writes `<id>.txt` + `<id>.json` per experiment.
/// `--emit-manifest PATH` writes the matrix instead of executing;
/// `--validate-journal PATH` structurally checks a journal and exits;
/// `--bench` runs the pinned perf suite (see [`crate::bench`]) and writes
/// `BENCH_<git-sha>.json` into `--json-dir` (default: the current
/// directory, conventionally the repo root).
/// Malformed arguments print a usage error to stderr and exit 2.
pub fn harness_main() {
    let args = parse_harness_args(std::env::args().skip(1))
        .unwrap_or_else(|e| usage_die(&e, HARNESS_USAGE));
    if let Some(path) = &args.validate_journal {
        match journal::load(Path::new(path)) {
            Ok(doc) => {
                println!(
                    "{path}: valid ({}/{} runs, manifest fp {})",
                    doc.runs.len(),
                    doc.jobs,
                    doc.fingerprint
                );
                return;
            }
            Err(e) => die(&format!("{path}: invalid journal: {e}")),
        }
    }
    if args.bench {
        let out_dir = PathBuf::from(args.json_dir.unwrap_or_else(|| ".".to_string()));
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            die(&format!("cannot create {}: {e}", out_dir.display()));
        }
        let opts = crate::bench::BenchOptions {
            insts: args.insts,
            scale: args.scale,
            out_dir,
        };
        let path = crate::bench::run_bench_to_file(&opts).unwrap_or_else(|e| die(&e));
        println!("bench written: {}", path.display());
        return;
    }
    let manifest = if let Some(path) = &args.manifest_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        Manifest::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
    } else {
        let ids: Vec<String> = if args.all {
            catalog::ids().iter().map(|s| s.to_string()).collect()
        } else {
            args.exp_ids.clone()
        };
        build_catalog_manifest(&ids, args.insts, args.scale, &args.only)
            .unwrap_or_else(|e| usage_die(&e, HARNESS_USAGE))
    };
    if let Err(e) = manifest.validate() {
        die(&format!("invalid manifest: {e}"));
    }
    if let Some(path) = args.emit_manifest {
        write_or_die(Path::new(&path), &(manifest.render() + "\n"));
        eprintln!("wrote manifest ({} jobs): {path}", manifest.jobs().len());
        return;
    }
    let out_dir = PathBuf::from(args.json_dir.unwrap_or_else(|| ".".to_string()));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        die(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let journal_path = out_dir.join("journal.jsonl");
    let fp = manifest.fingerprint();
    let flat: Vec<JobSpec> = manifest
        .experiments
        .iter()
        .flat_map(|e| e.jobs.iter().cloned())
        .collect();
    let ids: Vec<&str> = flat.iter().map(|j| j.id.as_str()).collect();
    let mut jr = if args.resume {
        Journal::resume(&journal_path, &fp, &ids)
    } else {
        Journal::create(&journal_path, &fp, ids.len())
    }
    .unwrap_or_else(|e| die(&e));
    let store = open_trace_store(args.trace_store_dir, args.no_trace_store);
    let opts = ExecOptions {
        threads: args.threads,
        out_dir: &out_dir,
        progress: true,
        trace_store: store.as_ref(),
    };
    let reports = execute_jobs(&flat, &opts, Some(&mut jr)).unwrap_or_else(|e| die(&e));
    render_experiment_outputs(&out_dir, &manifest, &reports, true).unwrap_or_else(|e| die(&e));
    if let Some(s) = &store {
        println!("{}", store_summary(s));
    }
    println!(
        "done: {} runs across {} experiments -> {}",
        flat.len(),
        manifest.experiments.len(),
        out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Overrides;

    fn quick_job(id: &str, design: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            design: design.into(),
            workload: "libquantum".into(),
            insts: 100_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        }
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn trace_path_derivation_matches_the_legacy_binary() {
        assert_eq!(
            derive_trace_path("telemetry_report.json"),
            "telemetry_report_trace.json"
        );
        assert_eq!(derive_trace_path("results/t.json"), "results/t_trace.json");
        assert_eq!(derive_trace_path("weird.dat"), "weird.dat_trace.json");
    }

    #[test]
    fn execute_jobs_skips_the_journalled_prefix() {
        let dir = std::env::temp_dir().join("das-harness-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("skip.jsonl");
        let jobs = vec![quick_job("t/a/std", "std"), quick_job("t/b/das", "das")];
        let opts = ExecOptions {
            threads: 1,
            out_dir: &dir,
            progress: false,
            trace_store: None,
        };
        let fresh = {
            let _ = std::fs::remove_file(&jpath);
            let mut j = Journal::create(&jpath, "fp", 2).unwrap();
            execute_jobs(&jobs, &opts, Some(&mut j)).unwrap()
        };
        // Resume with the first run already journalled: only job 2 runs,
        // and the combined reports are byte-identical.
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        let mut j = {
            let mut j = Journal::create(&jpath, "fp", 2).unwrap();
            j.append("t/a/std", fresh[0].clone()).unwrap();
            drop(j);
            Journal::resume(&jpath, "fp", &ids).unwrap()
        };
        assert_eq!(j.done(), 1);
        let resumed = execute_jobs(&jobs, &opts, Some(&mut j)).unwrap();
        assert_eq!(resumed.len(), 2);
        assert_eq!(resumed[0].render(), fresh[0].render());
        assert_eq!(resumed[1].render(), fresh[1].render());
    }

    #[test]
    fn execute_jobs_surfaces_the_first_failure() {
        let mut bad = quick_job("t/bad/std", "std");
        bad.ov.event_budget = Some(100);
        let opts = ExecOptions {
            threads: 2,
            out_dir: Path::new("."),
            progress: false,
            trace_store: None,
        };
        let err = execute_jobs(&[quick_job("t/ok/std", "std"), bad], &opts, None).unwrap_err();
        assert!(err.contains("t/bad/std"), "{err}");
    }

    #[test]
    fn bin_args_parse_the_full_flag_set() {
        let a = parse_bin_args(argv(&[
            "--insts",
            "500",
            "--scale",
            "8",
            "--only",
            "mcf,lbm",
            "--json",
            "out.json",
            "--threads",
            "4",
            "--trace-store",
            "ts",
            "--no-trace-store",
        ]))
        .unwrap();
        assert_eq!(a.insts, 500);
        assert_eq!(a.scale, 8);
        assert_eq!(a.only, vec!["mcf".to_string(), "lbm".to_string()]);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert_eq!(a.threads, 4);
        assert_eq!(a.trace_store_dir.as_deref(), Some("ts"));
        assert!(a.no_trace_store);
        assert_eq!(parse_bin_args(argv(&[])).unwrap(), BinArgs::default());
    }

    #[test]
    fn bin_args_reject_each_malformed_flag() {
        // Every failure mode is a structured message, never a panic.
        for (args, needle) in [
            (vec!["--insts", "foo"], "--insts"),
            (vec!["--insts"], "needs a value"),
            (vec!["--insts", "0"], "positive"),
            (vec!["--scale", "-3"], "--scale"),
            (vec!["--scale", "5000000000"], "--scale"),
            (vec!["--threads", "two"], "--threads"),
            (vec!["--threads", "0"], "positive"),
            (vec!["--json"], "--json needs a value"),
            (vec!["--only"], "--only needs a value"),
            (vec!["--emit-manifest"], "needs a value"),
            (vec!["--trace-store"], "needs a value"),
            (vec!["--frobnicate"], "unknown argument"),
        ] {
            let err = parse_bin_args(argv(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
    }

    #[test]
    fn harness_args_reject_each_malformed_flag() {
        for (args, needle) in [
            (vec!["--exp"], "--exp needs a value"),
            (vec!["--manifest"], "--manifest needs a value"),
            (vec!["--all", "--insts", "abc"], "--insts"),
            (vec!["--all", "--scale", "x"], "--scale"),
            (vec!["--all", "--threads", "1.5"], "--threads"),
            (vec!["--all", "--json-dir"], "needs a value"),
            (vec!["--all", "--validate-journal"], "needs a value"),
            (vec!["--all", "--wat"], "unknown argument"),
            (vec![], "nothing to run"),
            (vec!["--insts", "100"], "nothing to run"),
        ] {
            let err = parse_harness_args(argv(&args)).unwrap_err();
            assert!(err.contains(needle), "{args:?}: {err}");
        }
        let a = parse_harness_args(argv(&["--exp", "fig8a", "--resume"])).unwrap();
        assert_eq!(a.exp_ids, vec!["fig8a".to_string()]);
        assert!(a.resume);
        // --validate-journal alone is a complete invocation.
        let a = parse_harness_args(argv(&["--validate-journal", "j.jsonl"])).unwrap();
        assert_eq!(a.validate_journal.as_deref(), Some("j.jsonl"));
        // --bench alone is a complete invocation, and composes with the
        // budget/scale flags it honours.
        let a = parse_harness_args(argv(&["--bench"])).unwrap();
        assert!(a.bench);
        let a =
            parse_harness_args(argv(&["--bench", "--insts", "50000", "--scale", "64"])).unwrap();
        assert!(a.bench);
        assert_eq!(a.insts, 50_000);
    }

    #[test]
    fn build_catalog_manifest_rejects_unknown_ids() {
        let err = build_catalog_manifest(&["nosuch".to_string()], 100_000, 64, &[]).unwrap_err();
        assert!(err.contains("nosuch"), "{err}");
        let m = build_catalog_manifest(
            &["fig8a".to_string()],
            100_000,
            64,
            &["libquantum".to_string()],
        )
        .unwrap();
        assert_eq!(m.experiments.len(), 1);
        assert!(!m.experiments[0].jobs.is_empty());
        m.validate().unwrap();
    }

    #[test]
    fn build_catalog_manifest_expands_prefix_globs() {
        let m = build_catalog_manifest(
            &["cross_arch_*".to_string()],
            100_000,
            64,
            &["libquantum".to_string()],
        )
        .unwrap();
        assert_eq!(m.experiments.len(), 6, "the whole cross_arch family");
        assert!(m
            .experiments
            .iter()
            .all(|e| e.id.starts_with("cross_arch_")));
        m.validate().unwrap();
        // Globs matching nothing are an error, not an empty grid — and the
        // message lists the family vocabulary.
        let err = build_catalog_manifest(&["warp_*".to_string()], 100_000, 64, &[]).unwrap_err();
        assert!(err.contains("warp_*"), "{err}");
        assert!(err.contains("known families"), "{err}");
        assert!(
            err.contains("cross_arch") && err.contains("coherent"),
            "{err}"
        );
        let err = build_catalog_manifest(&["warp".to_string()], 100_000, 64, &[]).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        assert!(err.contains("known families"), "{err}");
        // A bare `*` is the full catalog.
        let all = build_catalog_manifest(&["*".to_string()], 100_000, 64, &[]).unwrap();
        assert_eq!(all.experiments.len(), crate::catalog::ids().len());
    }

    #[test]
    fn policy_search_glob_expands_to_the_family() {
        let m = build_catalog_manifest(
            &["policy_search_*".to_string()],
            100_000,
            64,
            &["mcf".to_string()],
        )
        .unwrap();
        assert_eq!(
            m.experiments
                .iter()
                .map(|e| e.id.as_str())
                .collect::<Vec<_>>(),
            [
                "policy_search_rank",
                "policy_search_size",
                "policy_search_adapt"
            ]
        );
        m.validate().unwrap();
        // The family vocabulary mentions the new group in diagnostics.
        let err = build_catalog_manifest(&["warp".to_string()], 100_000, 64, &[]).unwrap_err();
        assert!(err.contains("policy_search"), "{err}");
    }

    #[test]
    fn render_experiment_outputs_checks_report_count() {
        let m = build_catalog_manifest(
            &["fig8a".to_string()],
            100_000,
            64,
            &["libquantum".to_string()],
        )
        .unwrap();
        let err = render_experiment_outputs(Path::new("."), &m, &[], false).unwrap_err();
        assert!(err.contains("reports"), "{err}");
    }
}
