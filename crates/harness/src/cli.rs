//! Command-line drivers.
//!
//! Two entry points share one execution core:
//!
//! * [`bin_main`] — what every legacy figure binary's `main` now calls.
//!   It keeps the historical flags (`--insts/--scale/--only/--json`) and
//!   output bytes, and adds `--threads N` (bit-identical results for any
//!   N) and `--emit-manifest PATH` (describe the run matrix instead of
//!   executing it).
//! * [`harness_main`] — the standalone `harness` orchestrator: executes
//!   any manifest (or the whole catalog) across threads with a resumable
//!   fsync'd journal, writing `<id>.txt` / `<id>.json` per experiment.

use std::path::{Path, PathBuf};

use das_telemetry::json::Value;

use crate::catalog::{self, BuildParams};
use crate::journal::{self, Journal};
use crate::manifest::{ExperimentPlan, JobSpec, Manifest};
use crate::pool::run_ordered;
use crate::profile::ProfileCache;
use crate::render::RenderCtx;
use crate::runner;

/// How a batch of jobs should execute.
pub struct ExecOptions<'a> {
    /// Worker threads (any value ≥ 1 yields identical results).
    pub threads: usize,
    /// Anchor for relative side-effect exports (`trace_path`).
    pub out_dir: &'a Path,
    /// Emit `[k/n] id` progress lines on stderr.
    pub progress: bool,
    /// When set, serve reference streams from this content-addressed
    /// `.dtr` store instead of regenerating them per run (results are
    /// bit-identical either way).
    pub trace_store: Option<&'a das_trace::TraceStore>,
}

/// Executes `jobs` on the pool, skipping the prefix already present in
/// `journal` (when given) and appending each new run to it in job order.
/// Returns every report — journalled and fresh — in job order.
///
/// # Errors
///
/// Returns the first simulation or journal failure; runs completed before
/// it are already journalled, so a rerun with `--resume` picks up there.
pub fn execute_jobs(
    jobs: &[JobSpec],
    opts: &ExecOptions,
    mut journal: Option<&mut Journal>,
) -> Result<Vec<Value>, String> {
    let done = journal.as_ref().map_or(0, |j| j.done());
    let total = jobs.len();
    if opts.progress && done > 0 {
        eprintln!("resuming: {done}/{total} runs already journalled");
    }
    let mut reports: Vec<Value> = journal
        .as_ref()
        .map(|j| j.entries.clone())
        .unwrap_or_default();
    let pending = &jobs[done..];
    let profiles = ProfileCache::new();
    let mut failure: Option<String> = None;
    run_ordered(
        opts.threads,
        pending.len(),
        |i| runner::execute(&pending[i], &profiles, opts.out_dir, opts.trace_store),
        |i, result| {
            if failure.is_some() {
                return;
            }
            match result {
                Ok(report) => {
                    let job = &pending[i];
                    if let Some(j) = journal.as_deref_mut() {
                        if let Err(e) = j.append(&job.id, report.clone()) {
                            failure = Some(e);
                            return;
                        }
                    }
                    if opts.progress {
                        eprintln!("[{}/{total}] {}", done + i + 1, job.id);
                    }
                    reports.push(report);
                }
                Err(e) => failure = Some(e),
            }
        },
    );
    match failure {
        Some(e) => Err(e),
        None => Ok(reports),
    }
}

/// `telemetry_report.json` → `telemetry_report_trace.json` (the legacy
/// telemetry binary's derivation).
fn derive_trace_path(report_path: &str) -> String {
    report_path
        .strip_suffix(".json")
        .map(|stem| format!("{stem}_trace.json"))
        .unwrap_or_else(|| format!("{report_path}_trace.json"))
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Opens the content-addressed trace store, honouring `--no-trace-store`
/// (which wins over `--trace-store DIR`).
fn open_trace_store(dir: Option<String>, disabled: bool) -> Option<das_trace::TraceStore> {
    match (dir, disabled) {
        (Some(d), false) => Some(
            das_trace::TraceStore::open(Path::new(&d))
                .unwrap_or_else(|e| die(&format!("cannot open trace store {d}: {e}"))),
        ),
        _ => None,
    }
}

/// One-line session summary of the store's hit/miss/byte counters.
fn store_summary(store: &das_trace::TraceStore) -> String {
    let s = store.stats();
    format!(
        "trace store: {} hits, {} misses, {} KiB written, {} KiB read -> {}",
        s.hits,
        s.misses,
        s.bytes_written / 1024,
        s.bytes_read / 1024,
        store.dir().display()
    )
}

fn write_or_die(path: &Path, text: &str) {
    if let Err(e) = std::fs::write(path, text) {
        die(&format!("cannot write {}: {e}", path.display()));
    }
}

/// Entry point of every figure/table/ablation binary: builds the
/// experiment's manifest from the historical flags and either emits it or
/// executes it and prints the historical text output.
///
/// Flags: `--insts N`, `--scale N`, `--only a,b`, `--json PATH`,
/// `--threads N`, `--emit-manifest PATH`, `--trace-store DIR`,
/// `--no-trace-store`.
///
/// # Panics
///
/// Panics with a usage message on malformed arguments or an unknown
/// experiment id (both internal/developer errors).
pub fn bin_main(id: &str) {
    let exp = catalog::by_id(id).unwrap_or_else(|| panic!("unknown experiment {id:?}"));
    let mut insts: u64 = 3_000_000;
    let mut scale: u32 = 64;
    let mut only: Vec<String> = Vec::new();
    let mut json: Option<String> = None;
    let mut threads: usize = 1;
    let mut emit_manifest: Option<String> = None;
    let mut trace_store_dir: Option<String> = None;
    let mut no_trace_store = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--insts" => {
                insts = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--insts needs an integer");
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs an integer");
            }
            "--only" => {
                only = args
                    .next()
                    .expect("--only needs a comma-separated list")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--json" => json = Some(args.next().expect("--json needs a path")),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs an integer");
            }
            "--emit-manifest" => {
                emit_manifest = Some(args.next().expect("--emit-manifest needs a path"));
            }
            "--trace-store" => {
                trace_store_dir = Some(args.next().expect("--trace-store needs a directory"));
            }
            "--no-trace-store" => no_trace_store = true,
            other => panic!(
                "unknown argument {other:?} \
                 (use --insts/--scale/--only/--json/--threads/--emit-manifest\
                 /--trace-store/--no-trace-store)"
            ),
        }
    }
    let report_path = json
        .clone()
        .unwrap_or_else(|| "telemetry_report.json".to_string());
    let trace_path = derive_trace_path(&report_path);
    let params = BuildParams {
        insts,
        scale,
        only,
        trace_name: trace_path.clone(),
    };
    let manifest = Manifest {
        insts,
        scale,
        experiments: vec![ExperimentPlan {
            id: id.to_string(),
            jobs: (exp.build)(&params),
        }],
    };
    if let Err(e) = manifest.validate() {
        die(&format!("invalid run matrix: {e}"));
    }
    if let Some(path) = emit_manifest {
        write_or_die(Path::new(&path), &(manifest.render() + "\n"));
        eprintln!("wrote manifest ({} jobs): {path}", manifest.jobs().len());
        return;
    }
    let jobs = &manifest.experiments[0].jobs;
    let store = open_trace_store(trace_store_dir, no_trace_store);
    let opts = ExecOptions {
        threads,
        out_dir: Path::new("."),
        progress: false,
        trace_store: store.as_ref(),
    };
    let reports = execute_jobs(jobs, &opts, None).unwrap_or_else(|e| die(&e));
    if let Some(s) = &store {
        eprintln!("{}", store_summary(s));
    }
    // Exports happen before rendering, which may assert on the results —
    // the legacy binaries wrote their files first too.
    if id == "telemetry" {
        write_or_die(Path::new(&report_path), &reports[0].render());
    } else if let Some(path) = &json {
        write_or_die(Path::new(path), &journal::runs_doc(&reports).render());
    }
    let ctx = RenderCtx {
        insts,
        scale,
        jobs,
        reports: &reports,
        report_path,
        trace_path,
    };
    print!("{}", (exp.render)(&ctx));
}

const HARNESS_USAGE: &str = "usage: harness (--manifest PATH | --all | --exp a,b) \
     [--insts N] [--scale N] [--only a,b] [--threads N] [--resume] \
     [--json-dir DIR] [--emit-manifest PATH] [--validate-journal PATH] \
     [--trace-store DIR] [--no-trace-store]";

/// Entry point of the standalone `harness` binary.
///
/// Selects a run matrix (`--manifest PATH`, the full catalog via `--all`,
/// or a subset via `--exp a,b`), executes it on `--threads N` workers with
/// an fsync'd journal at `<json-dir>/journal.jsonl` (`--resume` continues
/// a previous run), and writes `<id>.txt` + `<id>.json` per experiment.
/// `--emit-manifest PATH` writes the matrix instead of executing;
/// `--validate-journal PATH` structurally checks a journal and exits.
pub fn harness_main() {
    let mut manifest_path: Option<String> = None;
    let mut all = false;
    let mut exp_ids: Vec<String> = Vec::new();
    let mut insts: u64 = 3_000_000;
    let mut scale: u32 = 64;
    let mut only: Vec<String> = Vec::new();
    let mut threads: usize = 1;
    let mut resume = false;
    let mut json_dir: Option<String> = None;
    let mut emit_manifest: Option<String> = None;
    let mut trace_store_dir: Option<String> = None;
    let mut no_trace_store = false;
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value\n{HARNESS_USAGE}")))
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--manifest" => manifest_path = Some(need(&mut args, "--manifest")),
            "--all" => all = true,
            "--exp" => {
                exp_ids = need(&mut args, "--exp")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--insts" => {
                insts = need(&mut args, "--insts")
                    .parse()
                    .unwrap_or_else(|_| die("--insts needs an integer"));
            }
            "--scale" => {
                scale = need(&mut args, "--scale")
                    .parse()
                    .unwrap_or_else(|_| die("--scale needs an integer"));
            }
            "--only" => {
                only = need(&mut args, "--only")
                    .split(',')
                    .map(str::to_string)
                    .collect();
            }
            "--threads" => {
                threads = need(&mut args, "--threads")
                    .parse()
                    .unwrap_or_else(|_| die("--threads needs an integer"));
            }
            "--resume" => resume = true,
            "--json-dir" => json_dir = Some(need(&mut args, "--json-dir")),
            "--emit-manifest" => emit_manifest = Some(need(&mut args, "--emit-manifest")),
            "--trace-store" => trace_store_dir = Some(need(&mut args, "--trace-store")),
            "--no-trace-store" => no_trace_store = true,
            "--validate-journal" => {
                let path = need(&mut args, "--validate-journal");
                match journal::load(Path::new(&path)) {
                    Ok(doc) => {
                        println!(
                            "{path}: valid ({}/{} runs, manifest fp {})",
                            doc.runs.len(),
                            doc.jobs,
                            doc.fingerprint
                        );
                        return;
                    }
                    Err(e) => die(&format!("{path}: invalid journal: {e}")),
                }
            }
            other => die(&format!("unknown argument {other:?}\n{HARNESS_USAGE}")),
        }
    }
    let manifest = if let Some(path) = &manifest_path {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
        Manifest::parse(&text).unwrap_or_else(|e| die(&format!("{path}: {e}")))
    } else {
        if !all && exp_ids.is_empty() {
            die(&format!("nothing to run\n{HARNESS_USAGE}"));
        }
        let ids: Vec<&str> = if all {
            catalog::ALL.iter().map(|e| e.id).collect()
        } else {
            exp_ids
                .iter()
                .map(|id| {
                    catalog::by_id(id)
                        .unwrap_or_else(|| die(&format!("unknown experiment {id:?}")))
                        .id
                })
                .collect()
        };
        let params = BuildParams {
            insts,
            scale,
            only,
            trace_name: "telemetry_trace.json".to_string(),
        };
        Manifest {
            insts,
            scale,
            experiments: ids
                .into_iter()
                .map(|id| ExperimentPlan {
                    id: id.to_string(),
                    jobs: (catalog::by_id(id).expect("catalog id").build)(&params),
                })
                .collect(),
        }
    };
    if let Err(e) = manifest.validate() {
        die(&format!("invalid manifest: {e}"));
    }
    if let Some(path) = emit_manifest {
        write_or_die(Path::new(&path), &(manifest.render() + "\n"));
        eprintln!("wrote manifest ({} jobs): {path}", manifest.jobs().len());
        return;
    }
    let out_dir = PathBuf::from(json_dir.unwrap_or_else(|| ".".to_string()));
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        die(&format!("cannot create {}: {e}", out_dir.display()));
    }
    let journal_path = out_dir.join("journal.jsonl");
    let fp = manifest.fingerprint();
    let flat: Vec<JobSpec> = manifest
        .experiments
        .iter()
        .flat_map(|e| e.jobs.iter().cloned())
        .collect();
    let ids: Vec<&str> = flat.iter().map(|j| j.id.as_str()).collect();
    let mut jr = if resume {
        Journal::resume(&journal_path, &fp, &ids)
    } else {
        Journal::create(&journal_path, &fp, ids.len())
    }
    .unwrap_or_else(|e| die(&e));
    let store = open_trace_store(trace_store_dir, no_trace_store);
    let opts = ExecOptions {
        threads,
        out_dir: &out_dir,
        progress: true,
        trace_store: store.as_ref(),
    };
    let reports = execute_jobs(&flat, &opts, Some(&mut jr)).unwrap_or_else(|e| die(&e));
    let mut offset = 0;
    for e in &manifest.experiments {
        let n = e.jobs.len();
        let exp = catalog::by_id(&e.id)
            .unwrap_or_else(|| die(&format!("manifest names unknown experiment {:?}", e.id)));
        let report_path = out_dir.join(format!("{}.json", e.id));
        let trace_rel = e
            .jobs
            .iter()
            .find_map(|j| j.ov.trace_path.clone())
            .unwrap_or_else(|| "telemetry_trace.json".to_string());
        let exp_reports = &reports[offset..offset + n];
        let ctx = RenderCtx {
            insts: manifest.insts,
            scale: manifest.scale,
            jobs: &e.jobs,
            reports: exp_reports,
            report_path: report_path.display().to_string(),
            trace_path: out_dir.join(&trace_rel).display().to_string(),
        };
        let text = (exp.render)(&ctx);
        write_or_die(&out_dir.join(format!("{}.txt", e.id)), &text);
        // The telemetry experiment historically exports its bare run
        // report; everything else exports the legacy runs document.
        let json_doc = if e.id == "telemetry" && n == 1 {
            exp_reports[0].render()
        } else {
            journal::runs_doc(exp_reports).render()
        };
        write_or_die(&report_path, &json_doc);
        eprintln!(
            "rendered {}",
            out_dir.join(format!("{}.txt", e.id)).display()
        );
        offset += n;
    }
    if let Some(s) = &store {
        println!("{}", store_summary(s));
    }
    println!(
        "done: {} runs across {} experiments -> {}",
        flat.len(),
        manifest.experiments.len(),
        out_dir.display()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Overrides;

    fn quick_job(id: &str, design: &str) -> JobSpec {
        JobSpec {
            id: id.into(),
            design: design.into(),
            workload: "libquantum".into(),
            insts: 100_000,
            scale: 64,
            seed: 42,
            ov: Overrides::default(),
        }
    }

    #[test]
    fn trace_path_derivation_matches_the_legacy_binary() {
        assert_eq!(
            derive_trace_path("telemetry_report.json"),
            "telemetry_report_trace.json"
        );
        assert_eq!(derive_trace_path("results/t.json"), "results/t_trace.json");
        assert_eq!(derive_trace_path("weird.dat"), "weird.dat_trace.json");
    }

    #[test]
    fn execute_jobs_skips_the_journalled_prefix() {
        let dir = std::env::temp_dir().join("das-harness-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("skip.jsonl");
        let jobs = vec![quick_job("t/a/std", "std"), quick_job("t/b/das", "das")];
        let opts = ExecOptions {
            threads: 1,
            out_dir: &dir,
            progress: false,
            trace_store: None,
        };
        let fresh = {
            let _ = std::fs::remove_file(&jpath);
            let mut j = Journal::create(&jpath, "fp", 2).unwrap();
            execute_jobs(&jobs, &opts, Some(&mut j)).unwrap()
        };
        // Resume with the first run already journalled: only job 2 runs,
        // and the combined reports are byte-identical.
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        let mut j = {
            let mut j = Journal::create(&jpath, "fp", 2).unwrap();
            j.append("t/a/std", fresh[0].clone()).unwrap();
            drop(j);
            Journal::resume(&jpath, "fp", &ids).unwrap()
        };
        assert_eq!(j.done(), 1);
        let resumed = execute_jobs(&jobs, &opts, Some(&mut j)).unwrap();
        assert_eq!(resumed.len(), 2);
        assert_eq!(resumed[0].render(), fresh[0].render());
        assert_eq!(resumed[1].render(), fresh[1].render());
    }

    #[test]
    fn execute_jobs_surfaces_the_first_failure() {
        let mut bad = quick_job("t/bad/std", "std");
        bad.ov.event_budget = Some(100);
        let opts = ExecOptions {
            threads: 2,
            out_dir: Path::new("."),
            progress: false,
            trace_store: None,
        };
        let err = execute_jobs(&[quick_job("t/ok/std", "std"), bad], &opts, None).unwrap_err();
        assert!(err.contains("t/bad/std"), "{err}");
    }
}
