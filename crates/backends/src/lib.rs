//! Pluggable DRAM timing-architecture backends.
//!
//! The paper's evaluation is comparative: DAS-DRAM is judged against rival
//! low-latency DRAM proposals. This crate turns the simulator's single
//! hard-wired DDR3+DAS timing path into a *backend family*: each backend
//! describes one published architecture as a bundle of
//!
//! * **latency-class resolution** — which [`TimingParams`] a row sees,
//!   expressed as the fast/slow [`TimingSet`] the constraint engine in
//!   `das-dram` already consumes (refresh lives inside `TimingParams` as
//!   `tREFI`/`tRFC`);
//! * **inter-row copy cost** — the `single_migration`/`swap` fields of the
//!   same [`TimingSet`], reused by the existing migration machinery with a
//!   backend-specific cost model;
//! * **row placement** — geometry overrides (fast ratio, grouping,
//!   arrangement) the backend requires, plus whether the fast level is
//!   managed exclusively (DAS swaps) or inclusively (TL-DRAM caching);
//! * **capacity accounting** — usable rows per bank when the architecture
//!   trades capacity for latency (CLR-DRAM row coupling);
//! * **area accounting** — the die-area overhead models from `dram::area`.
//!
//! The six implementations are [`Ddr3Baseline`], [`Das`], [`TlDram`],
//! [`ClrDram`], [`Lisa`], and [`Salp`]. All are stateless unit structs
//! reachable through the [`backend`] registry, so higher layers can select
//! one by [`BackendKind`] carried in their configuration.

use das_dram::area::{
    AsymmetricAreaModel, ClrDramAreaModel, LisaAreaModel, SalpAreaModel, TlDramAreaModel,
};
use das_dram::geometry::{Arrangement, BankLayout, FastRatio};
use das_dram::timing::{RefreshCadence, TimingSet};

/// Identifies one of the six backend architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Commodity DDR3-1600: homogeneous slow timings, no migration.
    Ddr3Baseline,
    /// The paper's dynamic asymmetric subarray design.
    Das,
    /// Tiered-Latency DRAM: near/far bitline segments, near segment managed
    /// as an inclusive cache of hot far rows.
    TlDram,
    /// Capacity-Latency-Reconfigurable DRAM: rows morph into a coupled
    /// low-latency mode, sacrificing the partner row's capacity.
    ClrDram,
    /// LISA: DAS-style asymmetric device whose inter-subarray copies ride
    /// linked bitlines instead of migration cells.
    Lisa,
    /// Subarray-level parallelism: commodity timings, but precharge/activate
    /// overlap across subarrays within a bank.
    Salp,
}

impl BackendKind {
    /// All six kinds, in catalog order (baseline first).
    pub fn all() -> [BackendKind; 6] {
        [
            BackendKind::Ddr3Baseline,
            BackendKind::Das,
            BackendKind::TlDram,
            BackendKind::ClrDram,
            BackendKind::Lisa,
            BackendKind::Salp,
        ]
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Ddr3Baseline => "DDR3",
            BackendKind::Das => "DAS-DRAM",
            BackendKind::TlDram => "TL-DRAM",
            BackendKind::ClrDram => "CLR-DRAM",
            BackendKind::Lisa => "LISA",
            BackendKind::Salp => "SALP",
        }
    }

    /// Stable machine key (used in manifests and job ids).
    pub fn key(self) -> &'static str {
        match self {
            BackendKind::Ddr3Baseline => "std",
            BackendKind::Das => "das",
            BackendKind::TlDram => "tl",
            BackendKind::ClrDram => "clr",
            BackendKind::Lisa => "lisa",
            BackendKind::Salp => "salp",
        }
    }

    /// Parses a machine key produced by [`BackendKind::key`].
    pub fn parse(key: &str) -> Option<BackendKind> {
        BackendKind::all().into_iter().find(|k| k.key() == key)
    }
}

/// How the fast latency level is managed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastLevelManagement {
    /// No fast level (or no management): rows never move.
    None,
    /// Exclusive: a row lives in exactly one level; promotion swaps it with
    /// a victim (DAS, CLR-DRAM morph exchange, LISA).
    Exclusive,
    /// Inclusive: the fast level caches copies of slow rows; the slow copy
    /// stays valid and fast capacity is lost to duplication (TL-DRAM).
    Inclusive,
}

/// Geometry overrides a backend imposes on the system configuration.
///
/// `None` fields leave the configured value untouched, so sweeps can still
/// vary parameters the backend does not pin down.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlacementSpec {
    /// Required fast-level capacity share.
    pub fast_ratio: Option<FastRatio>,
    /// Required management group size (rows considered together).
    pub group_size: Option<u32>,
    /// Required physical arrangement of fast subarrays.
    pub arrangement: Option<Arrangement>,
    /// Required slow-subarray row count (TL-DRAM's 384-row far segment).
    pub slow_subarray_rows: Option<u32>,
    /// Whether the backend enables subarray-level parallelism.
    pub salp: bool,
}

/// Per-latency-level refresh rates of a backend.
///
/// Short-bitline (fast) cells can trade retention for latency, so an
/// architecture may refresh its fast level on a different cadence than its
/// slow level. The stock backends are all homogeneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefreshAsymmetry {
    /// Refresh cadence of the slow level.
    pub slow: RefreshCadence,
    /// Refresh cadence of the fast level.
    pub fast: RefreshCadence,
}

impl RefreshAsymmetry {
    /// The cadences already carried by a timing set (homogeneous for every
    /// stock device).
    pub fn from_timing(t: &TimingSet) -> Self {
        RefreshAsymmetry {
            slow: t.slow.refresh_cadence(),
            fast: t.fast.refresh_cadence(),
        }
    }

    /// Whether both levels refresh on the same cadence.
    pub fn is_homogeneous(&self) -> bool {
        self.slow == self.fast
    }

    /// Writes the cadences back into a timing set, from which the channel
    /// device derives its per-rank refresh schedules.
    pub fn apply(&self, t: &mut TimingSet) {
        t.slow.trefi = self.slow.trefi;
        t.slow.trfc = self.slow.trfc;
        t.fast.trefi = self.fast.trefi;
        t.fast.trfc = self.fast.trfc;
    }
}

/// One DRAM timing architecture.
///
/// Implementations are stateless: everything the constraint engine needs is
/// returned by value, and the same backend instance serves every job.
pub trait DramBackend: Sync {
    /// The kind tag for this backend.
    fn kind(&self) -> BackendKind;

    /// Human-readable label (defaults to the kind's label).
    fn label(&self) -> &'static str {
        self.kind().label()
    }

    /// The timing sets the DDR3 constraint engine applies: per-kind
    /// latency-class parameters (including `tREFI`/`tRFC` refresh costs)
    /// plus the inter-row copy costs driving the migration machinery.
    fn timing(&self) -> TimingSet;

    /// How rows move (or don't) between latency levels.
    fn management(&self) -> FastLevelManagement;

    /// Refresh rates of the two latency levels. The default derives the
    /// homogeneous cadences already carried by [`DramBackend::timing`], so
    /// overriding nothing is bit-identical to the pre-hook engine; backends
    /// modelling shorter-retention fast cells override this with distinct
    /// tREFI/tRFC per level.
    fn refresh(&self) -> RefreshAsymmetry {
        RefreshAsymmetry::from_timing(&self.timing())
    }

    /// Geometry the backend requires (defaults to no constraints).
    fn placement(&self) -> PlacementSpec {
        PlacementSpec::default()
    }

    /// Usable rows per bank when the architecture trades capacity for
    /// latency; `None` means full capacity. (Inclusive caching losses are
    /// accounted separately by the management layer.)
    fn usable_rows(&self, _layout: &BankLayout) -> Option<u64> {
        None
    }

    /// Fractional die-area overhead versus commodity DRAM of the same
    /// nominal capacity.
    fn area_overhead(&self) -> f64;
}

/// Commodity DDR3-1600.
pub struct Ddr3Baseline;

impl DramBackend for Ddr3Baseline {
    fn kind(&self) -> BackendKind {
        BackendKind::Ddr3Baseline
    }

    fn timing(&self) -> TimingSet {
        TimingSet::homogeneous_slow()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::None
    }

    fn area_overhead(&self) -> f64 {
        0.0
    }
}

/// The paper's DAS-DRAM: asymmetric subarrays, exclusive fast level managed
/// by migration-cell row swaps (146.25 ns per swap).
pub struct Das;

impl DramBackend for Das {
    fn kind(&self) -> BackendKind {
        BackendKind::Das
    }

    fn timing(&self) -> TimingSet {
        TimingSet::asymmetric()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::Exclusive
    }

    fn area_overhead(&self) -> f64 {
        AsymmetricAreaModel::default().overhead()
    }
}

/// TL-DRAM: near/far bitline segments; the near segment inclusively caches
/// hot far rows, copied over the shared bitline in one far-segment tRC.
pub struct TlDram;

impl DramBackend for TlDram {
    fn kind(&self) -> BackendKind {
        BackendKind::TlDram
    }

    fn timing(&self) -> TimingSet {
        TimingSet::tl_dram()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::Inclusive
    }

    fn placement(&self) -> PlacementSpec {
        PlacementSpec {
            fast_ratio: Some(FastRatio::new(1, 4)),
            group_size: Some(64),
            arrangement: Some(Arrangement::Interleaving),
            slow_subarray_rows: Some(384),
            salp: false,
        }
    }

    fn area_overhead(&self) -> f64 {
        TlDramAreaModel::default().overhead()
    }
}

/// CLR-DRAM: rows morph in place into a coupled max-latency-reduction mode.
/// The coupled partner row loses its capacity, so a bank's usable rows drop
/// to the slow-row count; a morph exchange costs two commodity tRCs.
pub struct ClrDram;

impl DramBackend for ClrDram {
    fn kind(&self) -> BackendKind {
        BackendKind::ClrDram
    }

    fn timing(&self) -> TimingSet {
        TimingSet::clr_dram()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::Exclusive
    }

    fn usable_rows(&self, layout: &BankLayout) -> Option<u64> {
        // Every morphed (fast-class) row couples with a neighbour whose
        // capacity is lost; only the slow-row population stores data.
        Some(layout.slow_rows() as u64)
    }

    fn area_overhead(&self) -> f64 {
        ClrDramAreaModel::default().overhead()
    }
}

/// LISA: the DAS asymmetric device with inter-subarray links, cutting the
/// row-swap cost to a third of the migration-cell path.
pub struct Lisa;

impl DramBackend for Lisa {
    fn kind(&self) -> BackendKind {
        BackendKind::Lisa
    }

    fn timing(&self) -> TimingSet {
        TimingSet::lisa()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::Exclusive
    }

    fn area_overhead(&self) -> f64 {
        LisaAreaModel::default().overhead()
    }
}

/// SALP: commodity timings with subarray-level parallelism — precharge and
/// activate overlap across subarrays within a bank. No fast level.
pub struct Salp;

impl DramBackend for Salp {
    fn kind(&self) -> BackendKind {
        BackendKind::Salp
    }

    fn timing(&self) -> TimingSet {
        TimingSet::homogeneous_slow()
    }

    fn management(&self) -> FastLevelManagement {
        FastLevelManagement::None
    }

    fn placement(&self) -> PlacementSpec {
        PlacementSpec {
            salp: true,
            ..PlacementSpec::default()
        }
    }

    fn area_overhead(&self) -> f64 {
        SalpAreaModel::default().overhead()
    }
}

/// Returns the registry instance for `kind`.
pub fn backend(kind: BackendKind) -> &'static dyn DramBackend {
    match kind {
        BackendKind::Ddr3Baseline => &Ddr3Baseline,
        BackendKind::Das => &Das,
        BackendKind::TlDram => &TlDram,
        BackendKind::ClrDram => &ClrDram,
        BackendKind::Lisa => &Lisa,
        BackendKind::Salp => &Salp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_dram::tick::Tick;

    #[test]
    fn keys_round_trip() {
        for kind in BackendKind::all() {
            assert_eq!(BackendKind::parse(kind.key()), Some(kind));
            assert_eq!(backend(kind).kind(), kind);
            assert_eq!(backend(kind).label(), kind.label());
        }
        assert_eq!(BackendKind::parse("ddr4"), None);
    }

    #[test]
    fn das_backend_is_exactly_the_paper_device() {
        let das = backend(BackendKind::Das);
        assert_eq!(das.timing(), TimingSet::asymmetric());
        assert_eq!(das.management(), FastLevelManagement::Exclusive);
        assert!(das.placement().fast_ratio.is_none(), "DAS sweeps freely");
    }

    #[test]
    fn baseline_and_salp_have_no_fast_level() {
        for kind in [BackendKind::Ddr3Baseline, BackendKind::Salp] {
            let b = backend(kind);
            assert_eq!(b.management(), FastLevelManagement::None);
            assert!(!b.timing().supports_migration());
        }
        assert!(backend(BackendKind::Salp).placement().salp);
        assert!(!backend(BackendKind::Ddr3Baseline).placement().salp);
        assert_eq!(backend(BackendKind::Ddr3Baseline).area_overhead(), 0.0);
    }

    #[test]
    fn copy_costs_order_lisa_below_clr_below_das() {
        let das = backend(BackendKind::Das).timing().swap;
        let lisa = backend(BackendKind::Lisa).timing().swap;
        let clr = backend(BackendKind::ClrDram).timing().swap;
        assert!(lisa < clr && clr < das);
        assert!(lisa > Tick::ZERO);
    }

    #[test]
    fn clr_loses_the_morphed_rows_capacity() {
        let layout = BankLayout::build(
            4096,
            FastRatio::new(1, 8),
            Arrangement::ReducedInterleaving,
            128,
            512,
        );
        let usable = backend(BackendKind::ClrDram).usable_rows(&layout).unwrap();
        assert_eq!(usable, layout.slow_rows() as u64);
        assert!(usable < 4096);
        for kind in BackendKind::all() {
            if kind != BackendKind::ClrDram {
                assert!(backend(kind).usable_rows(&layout).is_none());
            }
        }
    }

    #[test]
    fn tl_dram_placement_pins_the_paper_geometry() {
        let p = backend(BackendKind::TlDram).placement();
        assert_eq!(p.fast_ratio, Some(FastRatio::new(1, 4)));
        assert_eq!(p.group_size, Some(64));
        assert_eq!(p.arrangement, Some(Arrangement::Interleaving));
        assert_eq!(p.slow_subarray_rows, Some(384));
    }

    #[test]
    fn stock_backends_refresh_homogeneously() {
        for kind in BackendKind::all() {
            let b = backend(kind);
            let r = b.refresh();
            assert!(r.is_homogeneous(), "{kind:?} must default homogeneous");
            assert_eq!(r, RefreshAsymmetry::from_timing(&b.timing()));
            // Applying the default back is the identity.
            let mut t = b.timing();
            r.apply(&mut t);
            assert_eq!(t, b.timing());
            assert_eq!(t.refresh_cadences().len(), 1);
        }
    }

    #[test]
    fn refresh_asymmetry_hook_reaches_the_rank_schedule() {
        /// A DAS variant whose fast level refreshes twice as often at half
        /// the cost (shorter rows, shorter retention).
        struct FastRetentionDas;
        impl DramBackend for FastRetentionDas {
            fn kind(&self) -> BackendKind {
                BackendKind::Das
            }
            fn timing(&self) -> TimingSet {
                let mut t = TimingSet::asymmetric();
                self.refresh().apply(&mut t);
                t
            }
            fn management(&self) -> FastLevelManagement {
                FastLevelManagement::Exclusive
            }
            fn refresh(&self) -> RefreshAsymmetry {
                let base = TimingSet::asymmetric();
                let slow = base.slow.refresh_cadence();
                RefreshAsymmetry {
                    slow,
                    fast: RefreshCadence {
                        trefi: Tick::new(slow.trefi.raw() / 2),
                        trfc: Tick::new(slow.trfc.raw() / 2),
                    },
                }
            }
            fn area_overhead(&self) -> f64 {
                AsymmetricAreaModel::default().overhead()
            }
        }
        let b = FastRetentionDas;
        assert!(!b.refresh().is_homogeneous());
        let cadences = b.timing().refresh_cadences();
        assert_eq!(cadences.len(), 2, "distinct cadences become two schedules");
        assert_eq!(cadences[0], b.refresh().slow);
        assert_eq!(cadences[1], b.refresh().fast);
        // The fast schedule fires first (half the tREFI).
        let mut rank = das_dram::rank::RankTracker::with_cadences(&cadences);
        assert_eq!(rank.next_refresh_due(), b.refresh().fast.trefi);
        let due = rank.next_refresh_due();
        assert_eq!(rank.refresh(due), due + b.refresh().fast.trfc);
    }

    #[test]
    fn area_overheads_are_ranked() {
        let o = |k| backend(k).area_overhead();
        assert!(o(BackendKind::TlDram) > o(BackendKind::Das));
        assert!(o(BackendKind::Das) > o(BackendKind::Lisa));
        assert!(o(BackendKind::Lisa) > o(BackendKind::Salp));
        assert!(o(BackendKind::Salp) > o(BackendKind::ClrDram));
        assert!(o(BackendKind::ClrDram) > 0.0);
    }
}
