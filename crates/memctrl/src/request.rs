//! Request and completion-event types exchanged with the controller.

use das_dram::command::MigrationKind;
use das_dram::geometry::{BankCoord, MemCoord};
use das_dram::tick::Tick;

/// How a data access was ultimately serviced — the paper's Fig. 7c/7f
/// "access location" categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// The target row was already open: column access only.
    RowBufferHit,
    /// A fast-subarray row had to be activated.
    FastMiss,
    /// A slow-subarray row had to be activated.
    SlowMiss,
}

/// A translated memory request (row is **physical**).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the completion event.
    pub id: u64,
    /// Target coordinates; `coord.row` is the physical row.
    pub coord: MemCoord,
    /// Write (from LLC eviction or store drain) or read.
    pub is_write: bool,
    /// Arrival tick at the controller (FCFS age).
    pub arrival: Tick,
}

/// An in-array row swap the controller should perform when the bank is free
/// (the promotion of §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapOp {
    /// Caller-chosen token, echoed on completion.
    pub token: u64,
    /// Target bank.
    pub bank: BankCoord,
    /// Physical row of the promotee.
    pub phys_a: u32,
    /// Physical row of the victim.
    pub phys_b: u32,
    /// Exchange (exclusive cache) or copy (inclusive cache).
    pub kind: MigrationKind,
    /// Arrival tick (for starvation control).
    pub arrival: Tick,
}

/// Completion events produced by the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// A read's data burst finished at `at`.
    ReadDone {
        /// The request id.
        id: u64,
        /// Data-available tick.
        at: Tick,
        /// How it was serviced.
        service: ServiceClass,
        /// Queueing + service time: `at` minus the request's arrival.
        latency: Tick,
    },
    /// A write's data burst finished at `at` (informational; writes are
    /// posted).
    WriteDone {
        /// The request id.
        id: u64,
        /// Burst-end tick.
        at: Tick,
        /// How it was serviced.
        service: ServiceClass,
        /// Queueing + service time: `at` minus the request's arrival.
        latency: Tick,
    },
    /// A row swap finished at `at`.
    SwapDone {
        /// The swap token.
        token: u64,
        /// Completion tick.
        at: Tick,
    },
}

impl Completion {
    /// The completion tick of any event kind.
    pub fn at(&self) -> Tick {
        match *self {
            Completion::ReadDone { at, .. }
            | Completion::WriteDone { at, .. }
            | Completion::SwapDone { at, .. } => at,
        }
    }
}
