//! The per-channel memory controller: 32-entry read queue, open-page
//! FR-FCFS scheduling, watermark-based write draining, refresh, and
//! migration (row swap) scheduling (Table 1).
//!
//! The controller is event-driven and passive: the simulator calls
//! [`MemoryController::advance`] with the current tick to let it issue every
//! command that has become legal, and [`MemoryController::next_action_time`]
//! to learn when to wake it next.

use core::fmt;

use das_dram::channel::ChannelDevice;
use das_dram::command::DramCommand;
use das_dram::geometry::BankCoord;
use das_dram::tick::Tick;

use crate::request::{Completion, Request, ServiceClass, SwapOp};

/// Errors the controller reports instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerError {
    /// [`MemoryController::enqueue`] was called with the corresponding
    /// queue already full; callers should check `can_accept_*` first.
    QueueOverflow {
        /// Whether the rejected request was a write.
        is_write: bool,
        /// Capacity of the queue that rejected it.
        capacity: usize,
    },
    /// The device produced no data edge for a column command — a device
    /// model inconsistency the simulation must surface, not swallow.
    MissingDataEdge {
        /// Id of the request whose data edge is missing.
        id: u64,
    },
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::QueueOverflow { is_write, capacity } => {
                let kind = if *is_write { "write" } else { "read" };
                write!(f, "{kind} queue overflow (capacity {capacity})")
            }
            ControllerError::MissingDataEdge { id } => {
                write!(f, "column command for request {id} returned no data edge")
            }
        }
    }
}

impl std::error::Error for ControllerError {}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave rows open after column accesses, betting on row-buffer hits
    /// (Table 1's policy).
    #[default]
    Open,
    /// Close rows as soon as no queued request wants them, betting against
    /// locality (saves the precharge from the critical path of conflicts).
    Closed,
}

/// Scheduling discipline for demand requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// First-ready, first-come-first-served: row-buffer hits first, then
    /// oldest (Table 1).
    #[default]
    FrFcfs,
    /// Pure first-come-first-served (scheduler ablation baseline).
    Fcfs,
}

/// Controller configuration (Table 1 defaults).
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// Read-queue capacity (Table 1: 32).
    pub read_queue: usize,
    /// Write-queue capacity.
    pub write_queue: usize,
    /// Scheduling discipline.
    pub scheduler: SchedulerKind,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Start draining writes when the write queue reaches this fill level.
    pub write_drain_high: usize,
    /// Stop draining when it falls to this level.
    pub write_drain_low: usize,
    /// Force a queued migration to the front once it has waited this long.
    pub migration_starvation: Tick,
}

impl ControllerConfig {
    /// The paper's controller: 32-entry request queue, open-page FR-FCFS.
    pub fn paper_default() -> Self {
        ControllerConfig {
            read_queue: 32,
            write_queue: 32,
            scheduler: SchedulerKind::FrFcfs,
            page_policy: PagePolicy::Open,
            write_drain_high: 24,
            write_drain_low: 8,
            migration_starvation: Tick::from_ns_int(2000),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: Request,
    /// Set once this request caused an ACT (so its service class is a row
    /// miss even if the row is open by the time the column command goes).
    activated: Option<ServiceClass>,
}

/// Aggregate controller statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerStats {
    /// Reads completed.
    pub reads: u64,
    /// Writes completed.
    pub writes: u64,
    /// Swaps completed.
    pub swaps: u64,
    /// Row-buffer hits among completed data requests.
    pub row_hits: u64,
    /// Fast-level row activations among completed data requests.
    pub fast_misses: u64,
    /// Slow-level row activations among completed data requests.
    pub slow_misses: u64,
    /// Refreshes issued.
    pub refreshes: u64,
    /// Sum of read queueing+service latency in ticks (arrival → data).
    pub read_latency_ticks: u64,
}

/// One channel's memory controller. See the [module docs](self).
#[derive(Debug)]
pub struct MemoryController {
    cfg: ControllerConfig,
    channel: ChannelDevice,
    reads: Vec<Pending>,
    writes: Vec<Pending>,
    swaps: Vec<SwapOp>,
    draining: bool,
    /// Command-bus spacing: commands are at least one tCK apart.
    last_cmd: Tick,
    first_cmd_issued: bool,
    stats: ControllerStats,
}

impl MemoryController {
    /// Creates a controller owning `channel`.
    pub fn new(cfg: ControllerConfig, channel: ChannelDevice) -> Self {
        assert!(cfg.read_queue > 0 && cfg.write_queue > 0);
        assert!(cfg.write_drain_high <= cfg.write_queue);
        assert!(cfg.write_drain_low < cfg.write_drain_high);
        MemoryController {
            cfg,
            channel,
            reads: Vec::new(),
            writes: Vec::new(),
            swaps: Vec::new(),
            draining: false,
            last_cmd: Tick::ZERO,
            first_cmd_issued: false,
            stats: ControllerStats::default(),
        }
    }

    /// The device owned by this controller.
    pub fn channel(&self) -> &ChannelDevice {
        &self.channel
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Whether a new read can be accepted.
    pub fn can_accept_read(&self) -> bool {
        self.reads.len() < self.cfg.read_queue
    }

    /// Whether a new write can be accepted.
    pub fn can_accept_write(&self) -> bool {
        self.writes.len() < self.cfg.write_queue
    }

    /// Queued demand requests (reads + writes).
    pub fn queued(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Queued migrations.
    pub fn queued_swaps(&self) -> usize {
        self.swaps.len()
    }

    /// Queued demand reads (telemetry occupancy sampling).
    pub fn queued_reads(&self) -> usize {
        self.reads.len()
    }

    /// Queued writes awaiting drain (telemetry occupancy sampling).
    pub fn queued_writes(&self) -> usize {
        self.writes.len()
    }

    /// Total scheduling backlog: demand reads + writes + pending swaps.
    /// This is the work the timing engine still has to drain, which is what
    /// the perf profiler's DRAM-stage depth probe samples.
    pub fn backlog(&self) -> usize {
        self.queued() + self.queued_swaps()
    }

    /// Enqueues a demand request, rejecting it with
    /// [`ControllerError::QueueOverflow`] when the corresponding queue is
    /// full (callers should check `can_accept_*` first).
    pub fn enqueue(&mut self, req: Request) -> Result<(), ControllerError> {
        if req.is_write {
            if !self.can_accept_write() {
                return Err(ControllerError::QueueOverflow {
                    is_write: true,
                    capacity: self.cfg.write_queue,
                });
            }
            self.writes.push(Pending {
                req,
                activated: None,
            });
        } else {
            if !self.can_accept_read() {
                return Err(ControllerError::QueueOverflow {
                    is_write: false,
                    capacity: self.cfg.read_queue,
                });
            }
            self.reads.push(Pending {
                req,
                activated: None,
            });
        }
        Ok(())
    }

    /// Enqueues a row swap.
    pub fn enqueue_swap(&mut self, op: SwapOp) {
        self.swaps.push(op);
    }

    fn cmd_gap(&self) -> Tick {
        self.channel.timing().rank_params().tck
    }

    fn bus_ready(&self, t: Tick) -> Tick {
        if self.first_cmd_issued {
            t.max(self.last_cmd + self.cmd_gap())
        } else {
            t
        }
    }

    /// Issues every command that is legal at or before `now`, returning the
    /// completions generated. Call again at
    /// [`MemoryController::next_action_time`].
    pub fn advance(&mut self, now: Tick) -> Result<Vec<Completion>, ControllerError> {
        let mut out = Vec::new();
        // Cap iterations defensively; each loop issues at most one command.
        for _ in 0..4096 {
            self.update_drain_mode();
            let Some((cmd, at, role)) = self.best_command(now) else {
                break;
            };
            if at > now {
                break;
            }
            let outcome = self.channel.issue(&cmd, at);
            self.last_cmd = at;
            self.first_cmd_issued = true;
            match role {
                Role::Refresh => self.stats.refreshes += 1,
                Role::Activate {
                    list,
                    idx,
                    phys_row,
                } => {
                    let service = match self.channel.row_kind(phys_row) {
                        das_dram::SubarrayKind::Fast => ServiceClass::FastMiss,
                        das_dram::SubarrayKind::Slow => ServiceClass::SlowMiss,
                    };
                    self.pending_mut(list, idx).activated = Some(service);
                }
                Role::Precharge => {}
                Role::Column { list, idx } => {
                    let p = self.remove_pending(list, idx);
                    let service = p.activated.unwrap_or(ServiceClass::RowBufferHit);
                    let Some(at_done) = outcome.data_end else {
                        return Err(ControllerError::MissingDataEdge { id: p.req.id });
                    };
                    match service {
                        ServiceClass::RowBufferHit => self.stats.row_hits += 1,
                        ServiceClass::FastMiss => self.stats.fast_misses += 1,
                        ServiceClass::SlowMiss => self.stats.slow_misses += 1,
                    }
                    let latency = at_done - p.req.arrival;
                    if p.req.is_write {
                        self.stats.writes += 1;
                        out.push(Completion::WriteDone {
                            id: p.req.id,
                            at: at_done,
                            service,
                            latency,
                        });
                    } else {
                        self.stats.reads += 1;
                        self.stats.read_latency_ticks += latency.raw();
                        out.push(Completion::ReadDone {
                            id: p.req.id,
                            at: at_done,
                            service,
                            latency,
                        });
                    }
                }
                Role::Swap { idx } => {
                    let op = self.swaps.remove(idx);
                    self.stats.swaps += 1;
                    out.push(Completion::SwapDone {
                        token: op.token,
                        at: outcome.done,
                    });
                }
            }
        }
        Ok(out)
    }

    /// The earliest tick at which [`MemoryController::advance`] could make
    /// progress, or `None` when nothing is queued and no refresh is armed.
    pub fn next_action_time(&mut self, now: Tick) -> Option<Tick> {
        self.update_drain_mode();
        let cmd = self.best_command(now).map(|(_, at, _)| at);
        // A refresh deadline that has already passed is handled by
        // `best_command` (which schedules the REF or the precharges leading
        // to it); reporting it here would wedge the caller at `now`.
        let refresh = self.channel.next_refresh_due().filter(|&r| r > now);
        match (cmd, refresh) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (Some(a), None) => Some(a),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    fn update_drain_mode(&mut self) {
        if self.writes.len() >= self.cfg.write_drain_high {
            self.draining = true;
        } else if self.writes.len() <= self.cfg.write_drain_low {
            self.draining = false;
        }
    }

    fn pending_mut(&mut self, list: List, idx: usize) -> &mut Pending {
        match list {
            List::Reads => &mut self.reads[idx],
            List::Writes => &mut self.writes[idx],
        }
    }

    fn remove_pending(&mut self, list: List, idx: usize) -> Pending {
        match list {
            List::Reads => self.reads.remove(idx),
            List::Writes => self.writes.remove(idx),
        }
    }

    /// Chooses the next command per the scheduling policy, returning the
    /// command, its earliest issue tick, and the bookkeeping role.
    fn best_command(&self, now: Tick) -> Option<(DramCommand, Tick, Role)> {
        // 1. Refresh when due (mandatory, before new work).
        if let Some(rank) = self.channel.refresh_due(now) {
            let cmd = DramCommand::Refresh { rank };
            if let Some(t) = self.channel.earliest_issue(&cmd, now) {
                return Some((cmd, self.bus_ready(t), Role::Refresh));
            }
            // Banks open: fall through — closing them proceeds below, but
            // block *new* activates to that rank by preferring precharges.
            if let Some(pick) = self.refresh_blocking_precharge(now, rank) {
                return Some(pick);
            }
        }
        // 1b. Starved migrations preempt demand (bounded wait, §5.3).
        if let Some(pick) = self.swap_command(now, true) {
            return Some(pick);
        }
        let serve_writes = self.draining || self.reads.is_empty();
        // 2. Row-buffer hits first (FR-FCFS), oldest first.
        if self.cfg.scheduler == SchedulerKind::FrFcfs {
            if let Some(pick) = self.oldest_row_hit(now, List::Reads) {
                return Some(pick);
            }
            if serve_writes {
                if let Some(pick) = self.oldest_row_hit(now, List::Writes) {
                    return Some(pick);
                }
            }
        }
        // 3. Oldest request's next step.
        if let Some(pick) = self.oldest_next_step(now, List::Reads) {
            return Some(pick);
        }
        if serve_writes {
            if let Some(pick) = self.oldest_next_step(now, List::Writes) {
                return Some(pick);
            }
        }
        // 4. Closed-page housekeeping: close rows nobody queued wants.
        if self.cfg.page_policy == PagePolicy::Closed {
            if let Some(pick) = self.idle_row_precharge(now) {
                return Some(pick);
            }
        }
        // 5. Migrations: when their bank has no queued demand.
        self.swap_command(now, false)
    }

    /// Closed-page policy: propose a PRE for any open row that no queued
    /// request targets.
    fn idle_row_precharge(&self, now: Tick) -> Option<(DramCommand, Tick, Role)> {
        for rank in 0..self.channel.ranks() {
            for bank in self.channel.open_banks_of_rank(rank) {
                for row in self.channel.open_rows(bank) {
                    let wanted = self
                        .reads
                        .iter()
                        .chain(self.writes.iter())
                        .any(|p| p.req.coord.bank == bank && p.req.coord.row == row);
                    if wanted {
                        continue;
                    }
                    let cmd = DramCommand::Precharge {
                        bank,
                        phys_row: row,
                    };
                    if let Some(t) = self.channel.earliest_issue(&cmd, now) {
                        return Some((cmd, self.bus_ready(t), Role::Precharge));
                    }
                }
            }
        }
        None
    }

    fn refresh_blocking_precharge(&self, now: Tick, rank: u8) -> Option<(DramCommand, Tick, Role)> {
        // Close any open row of the refreshing rank (oldest-first demand
        // ordering is secondary to refresh urgency).
        for bank_coord in self.open_banks_of_rank(rank) {
            for row in self.channel.open_rows(bank_coord) {
                let cmd = DramCommand::Precharge {
                    bank: bank_coord,
                    phys_row: row,
                };
                if let Some(t) = self.channel.earliest_issue(&cmd, now) {
                    return Some((cmd, self.bus_ready(t), Role::Precharge));
                }
            }
        }
        None
    }

    fn open_banks_of_rank(&self, rank: u8) -> Vec<BankCoord> {
        self.channel.open_banks_of_rank(rank)
    }

    fn oldest_row_hit(&self, now: Tick, list: List) -> Option<(DramCommand, Tick, Role)> {
        let q = match list {
            List::Reads => &self.reads,
            List::Writes => &self.writes,
        };
        let mut best: Option<(usize, Tick)> = None;
        for (i, p) in q.iter().enumerate() {
            if !self.channel.is_row_open(p.req.coord.bank, p.req.coord.row) {
                continue;
            }
            let Some(t) = self.channel.earliest_issue(&column_cmd(&p.req), now) else {
                continue;
            };
            let t = self.bus_ready(t);
            let better = match best {
                None => true,
                Some((bi, _)) => (p.req.arrival, p.req.id) < (q[bi].req.arrival, q[bi].req.id),
            };
            if better {
                best = Some((i, t));
            }
        }
        best.map(|(i, t)| (column_cmd(&q[i].req), t, Role::Column { list, idx: i }))
    }

    fn oldest_next_step(&self, now: Tick, list: List) -> Option<(DramCommand, Tick, Role)> {
        let q = match list {
            List::Reads => &self.reads,
            List::Writes => &self.writes,
        };
        let oldest = q
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.req.arrival, p.req.id))
            .map(|(i, _)| i)?;
        let p = &q[oldest];
        let bank = p.req.coord.bank;
        let cmd = match self.channel.open_row_in_buffer_of(bank, p.req.coord.row) {
            Some(row) if row == p.req.coord.row => column_cmd(&p.req),
            Some(_) => DramCommand::Precharge {
                bank,
                phys_row: p.req.coord.row,
            },
            None => DramCommand::Activate {
                bank,
                phys_row: p.req.coord.row,
            },
        };
        let t = self.channel.earliest_issue(&cmd, now)?;
        let t = self.bus_ready(t);
        let role = match cmd {
            DramCommand::Precharge { .. } => Role::Precharge,
            DramCommand::Activate { phys_row, .. } => Role::Activate {
                list,
                idx: oldest,
                phys_row,
            },
            _ => Role::Column { list, idx: oldest },
        };
        Some((cmd, t, role))
    }

    fn swap_command(&self, now: Tick, only_starved: bool) -> Option<(DramCommand, Tick, Role)> {
        for (idx, op) in self.swaps.iter().enumerate() {
            let starving = self.cfg.migration_starvation != Tick::MAX
                && now >= op.arrival + self.cfg.migration_starvation;
            if only_starved && !starving {
                continue;
            }
            let demand_on_bank = self
                .reads
                .iter()
                .chain(self.writes.iter())
                .any(|p| p.req.coord.bank == op.bank);
            if demand_on_bank && !starving {
                continue;
            }
            // Need the bank fully precharged; close open rows first.
            let open = self.channel.open_rows(op.bank);
            if !open.is_empty() {
                for row in open {
                    let cmd = DramCommand::Precharge {
                        bank: op.bank,
                        phys_row: row,
                    };
                    if let Some(t) = self.channel.earliest_issue(&cmd, now) {
                        return Some((cmd, self.bus_ready(t), Role::Precharge));
                    }
                }
                continue;
            }
            let cmd = DramCommand::RowSwap {
                bank: op.bank,
                phys_a: op.phys_a,
                phys_b: op.phys_b,
                kind: op.kind,
            };
            if let Some(t) = self.channel.earliest_issue(&cmd, now) {
                return Some((cmd, self.bus_ready(t), Role::Swap { idx }));
            }
        }
        None
    }
}

fn column_cmd(req: &Request) -> DramCommand {
    if req.is_write {
        DramCommand::Write {
            bank: req.coord.bank,
            phys_row: req.coord.row,
            col: req.coord.col,
        }
    } else {
        DramCommand::Read {
            bank: req.coord.bank,
            phys_row: req.coord.row,
            col: req.coord.col,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum List {
    Reads,
    Writes,
}

#[derive(Debug, Clone, Copy)]
enum Role {
    Refresh,
    Precharge,
    Activate {
        list: List,
        idx: usize,
        phys_row: u32,
    },
    Column {
        list: List,
        idx: usize,
    },
    Swap {
        idx: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_dram::geometry::{Arrangement, BankLayout, FastRatio, MemCoord};
    use das_dram::timing::TimingSet;

    fn device(timing: TimingSet, refresh: bool) -> ChannelDevice {
        let layout =
            BankLayout::build(4096, FastRatio::new(1, 8), Arrangement::default(), 128, 512);
        ChannelDevice::new(0, 2, 8, layout, timing, refresh)
    }

    fn ctrl(timing: TimingSet) -> MemoryController {
        MemoryController::new(ControllerConfig::paper_default(), device(timing, false))
    }

    fn read(id: u64, bank: u8, row: u32, col: u32, at: Tick) -> Request {
        Request {
            id,
            coord: MemCoord {
                bank: BankCoord::new(0, 0, bank),
                row,
                col,
            },
            is_write: false,
            arrival: at,
        }
    }

    fn run_until_idle(c: &mut MemoryController, mut now: Tick) -> Vec<Completion> {
        let mut all = Vec::new();
        for _ in 0..100_000 {
            all.extend(c.advance(now).unwrap());
            match c.next_action_time(now) {
                Some(t) if c.queued() > 0 || c.queued_swaps() > 0 => {
                    now = t.max(now + Tick::new(1));
                }
                _ => break,
            }
        }
        all
    }

    #[test]
    fn single_read_closed_bank_latency() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        let slow_row = c.channel().layout().slow_to_phys(0);
        c.enqueue(read(1, 0, slow_row, 5, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(done.len(), 1);
        let Completion::ReadDone {
            id, at, service, ..
        } = done[0]
        else {
            panic!()
        };
        assert_eq!(id, 1);
        assert_eq!(service, ServiceClass::SlowMiss);
        // ACT at 0, RD at tRCD, data at +CL+burst.
        assert_eq!(at, Tick::from_ns(13.75 + 13.75 + 5.0));
    }

    #[test]
    fn second_read_same_row_is_row_hit() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        let row = c.channel().layout().slow_to_phys(3);
        c.enqueue(read(1, 0, row, 0, Tick::ZERO)).unwrap();
        c.enqueue(read(2, 0, row, 1, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(done.len(), 2);
        let services: Vec<_> = done
            .iter()
            .map(|d| match d {
                Completion::ReadDone { service, .. } => *service,
                _ => panic!(),
            })
            .collect();
        assert_eq!(
            services,
            [ServiceClass::SlowMiss, ServiceClass::RowBufferHit]
        );
        assert_eq!(c.stats().row_hits, 1);
    }

    #[test]
    fn frfcfs_prefers_row_hit_over_older_conflict() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        let row_a = c.channel().layout().slow_to_phys(0);
        let row_b = c.channel().layout().slow_to_phys(1);
        // Open row_a via request 1 and let it complete (open-page keeps it).
        c.enqueue(read(1, 0, row_a, 0, Tick::ZERO)).unwrap();
        let first = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(first.len(), 1);
        // Now: older conflicting request (row_b) and younger row hit (row_a).
        let now = Tick::from_ns(100.0);
        c.enqueue(read(2, 0, row_b, 0, now)).unwrap();
        c.enqueue(read(3, 0, row_a, 1, now + Tick::from_ns(1.0)))
            .unwrap();
        let done = run_until_idle(&mut c, now + Tick::from_ns(1.0));
        let ids: Vec<u64> = done
            .iter()
            .map(|d| match d {
                Completion::ReadDone { id, .. } => *id,
                _ => panic!(),
            })
            .collect();
        assert_eq!(ids, [3, 2], "row hit first under FR-FCFS");
    }

    #[test]
    fn fcfs_serves_in_order() {
        let dev = device(TimingSet::homogeneous_slow(), false);
        let cfg = ControllerConfig {
            scheduler: SchedulerKind::Fcfs,
            ..ControllerConfig::paper_default()
        };
        let mut c = MemoryController::new(cfg, dev);
        let row_a = c.channel().layout().slow_to_phys(0);
        let row_b = c.channel().layout().slow_to_phys(1);
        c.enqueue(read(1, 0, row_a, 0, Tick::ZERO)).unwrap();
        let first = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(first.len(), 1);
        let now = Tick::from_ns(100.0);
        c.enqueue(read(2, 0, row_b, 0, now)).unwrap();
        c.enqueue(read(3, 0, row_a, 1, now + Tick::from_ns(1.0)))
            .unwrap();
        let done = run_until_idle(&mut c, now + Tick::from_ns(1.0));
        let ids: Vec<u64> = done
            .iter()
            .filter_map(|d| match d {
                Completion::ReadDone { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        assert_eq!(ids, [2, 3], "FCFS ignores row locality");
    }

    #[test]
    fn writes_drain_when_reads_absent() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        let row = c.channel().layout().slow_to_phys(0);
        c.enqueue(Request {
            id: 9,
            coord: MemCoord {
                bank: BankCoord::new(0, 0, 0),
                row,
                col: 0,
            },
            is_write: true,
            arrival: Tick::ZERO,
        })
        .unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert!(matches!(done[0], Completion::WriteDone { id: 9, .. }));
        assert_eq!(c.stats().writes, 1);
    }

    #[test]
    fn swap_waits_for_demand_then_runs() {
        let mut c = ctrl(TimingSet::asymmetric());
        let fast = c.channel().layout().fast_to_phys(0);
        let slow = c.channel().layout().slow_to_phys(0);
        c.enqueue(read(1, 0, slow, 0, Tick::ZERO)).unwrap();
        c.enqueue_swap(SwapOp {
            token: 77,
            bank: BankCoord::new(0, 0, 0),
            phys_a: slow,
            phys_b: fast,
            kind: Default::default(),
            arrival: Tick::ZERO,
        });
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(done.len(), 2);
        // Read completes first; swap afterwards.
        assert!(matches!(done[0], Completion::ReadDone { id: 1, .. }));
        let Completion::SwapDone { token, at } = done[1] else {
            panic!()
        };
        assert_eq!(token, 77);
        assert!(at >= done[0].at());
        assert_eq!(c.stats().swaps, 1);
    }

    #[test]
    fn swap_on_idle_bank_runs_immediately() {
        let mut c = ctrl(TimingSet::asymmetric());
        let fast = c.channel().layout().fast_to_phys(0);
        let slow = c.channel().layout().slow_to_phys(0);
        c.enqueue_swap(SwapOp {
            token: 5,
            bank: BankCoord::new(0, 0, 3),
            phys_a: slow,
            phys_b: fast,
            kind: Default::default(),
            arrival: Tick::ZERO,
        });
        let done = run_until_idle(&mut c, Tick::ZERO);
        let Completion::SwapDone { at, .. } = done[0] else {
            panic!()
        };
        assert_eq!(at, Tick::from_ns(146.25));
    }

    #[test]
    fn refresh_fires_and_blocks_rank() {
        let dev = device(TimingSet::homogeneous_slow(), true);
        let mut c = MemoryController::new(ControllerConfig::paper_default(), dev);
        // Idle until past tREFI; then a read arrives. Refresh must go first.
        let t = Tick::from_ns(7800.0);
        let row = c.channel().layout().slow_to_phys(0);
        c.enqueue(read(1, 0, row, 0, t)).unwrap();
        let done = run_until_idle(&mut c, t);
        // Both ranks of the channel were due; at least the target's fired.
        assert!(c.stats().refreshes >= 1);
        let Completion::ReadDone { at, .. } = done[0] else {
            panic!()
        };
        assert!(at >= t + Tick::from_ns(160.0), "read waited for tRFC");
    }

    #[test]
    fn refresh_precharges_idle_open_banks() {
        let dev = device(TimingSet::homogeneous_slow(), true);
        let mut c = MemoryController::new(ControllerConfig::paper_default(), dev);
        let row = c.channel().layout().slow_to_phys(0);
        // Open a row; the queue then drains, leaving the bank open (open-page).
        c.enqueue(read(1, 0, row, 0, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(done.len(), 1);
        assert!(c.channel().open_row(BankCoord::new(0, 0, 0)).is_some());
        // Let the refresh deadline pass with an empty queue; step time
        // forward so the precharge → refresh sequence can play out.
        let mut t = Tick::from_ns(8000.0);
        for _ in 0..64 {
            let _ = c.advance(t).unwrap();
            if c.stats().refreshes >= 1 {
                break;
            }
            t += Tick::from_ns(20.0);
        }
        assert!(
            c.stats().refreshes >= 1,
            "idle open bank was closed for refresh"
        );
        assert!(c.channel().open_row(BankCoord::new(0, 0, 0)).is_none());
    }

    #[test]
    fn closed_page_policy_precharges_idle_rows() {
        let cfg = ControllerConfig {
            page_policy: PagePolicy::Closed,
            ..ControllerConfig::paper_default()
        };
        let mut c = MemoryController::new(cfg, device(TimingSet::homogeneous_slow(), false));
        let row = c.channel().layout().slow_to_phys(0);
        c.enqueue(read(1, 0, row, 0, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        assert_eq!(done.len(), 1);
        // Step time forward past tRAS: the idle row must get closed.
        let mut now = Tick::from_ns(40.0);
        for _ in 0..16 {
            let _ = c.advance(now).unwrap();
            now += Tick::from_ns(10.0);
        }
        assert!(
            c.channel().open_row(BankCoord::new(0, 0, 0)).is_none(),
            "closed-page must precharge idle rows"
        );
        // Open-page (default) leaves it open.
        let mut c2 = ctrl(TimingSet::homogeneous_slow());
        c2.enqueue(read(1, 0, row, 0, Tick::ZERO)).unwrap();
        let _ = run_until_idle(&mut c2, Tick::ZERO);
        assert!(c2.channel().open_row(BankCoord::new(0, 0, 0)).is_some());
    }

    #[test]
    fn write_drain_watermarks_hold() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        let row = c.channel().layout().slow_to_phys(0);
        // Below the high watermark and with reads pending, writes wait.
        for i in 0..4u64 {
            c.enqueue(Request {
                id: 100 + i,
                coord: MemCoord {
                    bank: BankCoord::new(0, 0, 1),
                    row,
                    col: i as u32,
                },
                is_write: true,
                arrival: Tick::ZERO,
            })
            .unwrap();
        }
        c.enqueue(read(1, 0, row, 0, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        // The read completes; once reads drain, writes go too.
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().writes, 4);
        assert_eq!(done.len(), 5);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut c = ctrl(TimingSet::homogeneous_slow());
        for i in 0..32 {
            assert!(c.can_accept_read());
            c.enqueue(read(i, (i % 8) as u8, 0, 0, Tick::ZERO)).unwrap();
        }
        assert!(!c.can_accept_read());
        assert!(c.can_accept_write());
        assert!(matches!(
            c.enqueue(read(99, 0, 0, 0, Tick::ZERO)),
            Err(ControllerError::QueueOverflow {
                is_write: false,
                capacity: 32
            })
        ));
    }

    #[test]
    fn fast_rows_complete_sooner_than_slow() {
        let mut c = ctrl(TimingSet::asymmetric());
        let fast = c.channel().layout().fast_to_phys(0);
        c.enqueue(read(1, 0, fast, 0, Tick::ZERO)).unwrap();
        let done = run_until_idle(&mut c, Tick::ZERO);
        let Completion::ReadDone {
            at: fast_at,
            service,
            ..
        } = done[0]
        else {
            panic!()
        };
        assert_eq!(service, ServiceClass::FastMiss);

        let mut c2 = ctrl(TimingSet::asymmetric());
        let slow = c2.channel().layout().slow_to_phys(0);
        c2.enqueue(read(1, 0, slow, 0, Tick::ZERO)).unwrap();
        let done2 = run_until_idle(&mut c2, Tick::ZERO);
        let Completion::ReadDone { at: slow_at, .. } = done2[0] else {
            panic!()
        };
        assert!(fast_at < slow_at, "fast {fast_at} !< slow {slow_at}");
    }

    #[test]
    fn starved_swap_preempts_demand_stream() {
        let cfg = ControllerConfig {
            migration_starvation: Tick::from_ns_int(100),
            ..ControllerConfig::paper_default()
        };
        let mut c = MemoryController::new(cfg, device(TimingSet::asymmetric(), false));
        let slow = c.channel().layout().slow_to_phys(0);
        let fast = c.channel().layout().fast_to_phys(0);
        c.enqueue_swap(SwapOp {
            token: 1,
            bank: BankCoord::new(0, 0, 0),
            phys_a: slow,
            phys_b: fast,
            kind: Default::default(),
            arrival: Tick::ZERO,
        });
        // Keep feeding demand to the same bank.
        let mut now = Tick::ZERO;
        let mut swap_done = false;
        for i in 0..200 {
            if c.can_accept_read() {
                c.enqueue(read(100 + i, 0, slow, (i % 128) as u32, now))
                    .unwrap();
            }
            for ev in c.advance(now).unwrap() {
                if matches!(ev, Completion::SwapDone { .. }) {
                    swap_done = true;
                }
            }
            now += Tick::from_ns_int(20);
            if swap_done {
                break;
            }
        }
        assert!(swap_done, "starvation bound must force the swap through");
    }
}
