//! # das-memctrl — memory controller
//!
//! The controller substrate of the DAS-DRAM reproduction: one controller
//! per channel with the Table 1 configuration (32-entry request queue,
//! open-page policy, FR-FCFS), watermark-based write draining, refresh
//! management, and scheduling of the paper's in-array row swaps with a
//! starvation bound.
//!
//! Requests arrive already translated to **physical** rows; the management
//! layer (`das-core`) performs translation, and the full-system simulator
//! (`das-sim`) models its timing consequences.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod controller;
pub mod request;

pub use controller::{
    ControllerConfig, ControllerError, ControllerStats, MemoryController, PagePolicy, SchedulerKind,
};
pub use request::{Completion, Request, ServiceClass, SwapOp};
