//! Ablation: FR-FCFS vs FCFS scheduling under Std- and DAS-DRAM.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `ablation_scheduler`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `ablation_scheduler [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("ablation_scheduler");
}
