//! Ablation: FR-FCFS vs plain FCFS scheduling, for the Std-DRAM baseline
//! and for DAS-DRAM (does migration interact with the scheduler?).

use das_bench::must_run as run_one;
use das_bench::{single_names, single_workloads, HarnessArgs};
use das_memctrl::controller::SchedulerKind;
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Ablation: Scheduler (IPC under FR-FCFS vs FCFS)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std frfcfs", "Std fcfs", "DAS frfcfs", "DAS fcfs"
    );
    for name in single_names(&args) {
        let wl = single_workloads(name);
        let mut vals = Vec::new();
        for design in [Design::Standard, Design::DasDram] {
            for sched in [SchedulerKind::FrFcfs, SchedulerKind::Fcfs] {
                let cfg = args.config().with_scheduler(sched);
                vals.push(run_one(&cfg, design, &wl).ipc());
            }
        }
        println!(
            "{:<12} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            name, vals[0], vals[1], vals[2], vals[3]
        );
    }
}
