//! Regenerates Figure 8b: access-location distribution vs promotion
//! threshold (filtering degrades fast-level utilisation).

use das_bench::must_run as run_one;
use das_bench::{print_access_mix, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Figure 8b: Access Locations vs Promotion Threshold");
    for name in single_names(&args) {
        println!("## {name}");
        for t in [8u32, 4, 2, 1] {
            let cfg = args.config().with_threshold(t);
            let m = run_one(&cfg, Design::DasDram, &single_workloads(name));
            print_access_mix(&format!("threshold {t}"), &m);
        }
    }
}
