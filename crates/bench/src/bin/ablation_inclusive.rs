//! Ablation: the §5 management alternatives — exclusive caching (adopted by
//! the paper) vs the inclusive cache it weighs and rejects.
//!
//! The paper's criteria: 1) total capacity (inclusive duplicates the fast
//! level — at ratio 1/8, ~12.5 % of memory is lost); 2) translation
//! complexity (inclusive needs a smaller table); 3) replacement time
//! (inclusive fills over clean victims are single 1.5 tRC copies). This
//! binary reports performance side by side plus the capacity forfeited.

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    let layout = cfg.bank_layout();
    let usable_excl = cfg.geometry.total_bytes() - cfg.geometry.total_rows();
    let dup = layout.fast_rows() as u64
        * cfg.geometry.total_banks() as u64
        * cfg.geometry.row_bytes as u64;
    println!("# Ablation: Exclusive vs Inclusive Management (§5)");
    println!(
        "usable capacity: exclusive {} MB, inclusive {} MB ({:.1}% lost to duplication)\n",
        usable_excl >> 20,
        (usable_excl - dup) >> 20,
        dup as f64 / usable_excl as f64 * 100.0
    );
    println!(
        "{:<12} {:>12} {:>12} {:>14} {:>14}",
        "workload", "exclusive", "inclusive", "excl promos", "incl promos"
    );
    let names = single_names(&args);
    let mut excl_col = Vec::new();
    let mut incl_col = Vec::new();
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&cfg, Design::Standard, &wl);
        let e = run_one(&cfg, Design::DasDram, &wl);
        let i = run_one(&cfg, Design::DasInclusive, &wl);
        let (ei, ii) = (improvement(&e, &base), improvement(&i, &base));
        excl_col.push(ei);
        incl_col.push(ii);
        println!(
            "{:<12} {:>12} {:>12} {:>14} {:>14}",
            name,
            pct(ei),
            pct(ii),
            e.promotions,
            i.promotions
        );
    }
    println!(
        "{:<12} {:>12} {:>12}",
        "gmean",
        pct(gmean_improvement(&excl_col)),
        pct(gmean_improvement(&incl_col))
    );
    println!(
        "\nPerformance is comparable; the exclusive design is adopted for the\n\
         ~12.5% capacity it refuses to forfeit (§5: \"we adopt the\n\
         exclusive-cache approach mainly because of the total capacity concern\")."
    );
}
