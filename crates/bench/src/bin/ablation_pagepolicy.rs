//! Ablation: open-page vs closed-page row-buffer management under each
//! design. Table 1 uses open-page; this quantifies how much of DAS-DRAM's
//! benefit depends on that choice (fast activations help *more* under
//! closed-page, where every access pays an activation).

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_memctrl::controller::PagePolicy;
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Ablation: Page Policy (improvement over open-page Std-DRAM)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std closed", "DAS open", "DAS closed", "FS open"
    );
    let names = single_names(&args);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        let mut vals = Vec::new();
        for (design, policy) in [
            (Design::Standard, PagePolicy::Closed),
            (Design::DasDram, PagePolicy::Open),
            (Design::DasDram, PagePolicy::Closed),
            (Design::FsDram, PagePolicy::Open),
        ] {
            let mut cfg = args.config();
            cfg.controller.page_policy = policy;
            vals.push(improvement(&run_one(&cfg, design, &wl), &base));
        }
        print!("{name:<12}");
        for (i, v) in vals.iter().enumerate() {
            cols[i].push(*v);
            print!(" {:>12}", pct(*v));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>12}", pct(gmean_improvement(col)));
    }
    println!();
}
