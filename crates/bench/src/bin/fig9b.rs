//! Regenerates Figure 9b: DAS-DRAM performance improvement vs migration
//! group size (8/16/32/64 rows).

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

const GROUPS: [u32; 4] = [8, 16, 32, 64];

fn main() {
    let args = HarnessArgs::parse();
    let names = single_names(&args);
    println!("# Figure 9b: Sizes of Migration Group");
    print!("{:<12}", "workload");
    for g in GROUPS {
        print!(" {:>12}", format!("{g}-row"));
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); GROUPS.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, g) in GROUPS.iter().enumerate() {
            let cfg = args.config().with_group_size(*g);
            let m = run_one(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>12}", pct(imp));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>12}", pct(gmean_improvement(col)));
    }
    println!();
}
