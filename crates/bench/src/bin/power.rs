//! Regenerates the §7.7 power discussion: DRAM energy per design, showing
//! that DAS-DRAM's high fast-level hit rate and low migration rate give it
//! lower dynamic energy than the static asymmetric design.

use das_bench::{figure7_designs, run_with_baseline, single_names, single_workloads, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    println!("# §7.7 Power Implications: DRAM energy relative to Std-DRAM");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "SAS", "CHARM", "DAS", "DAS(FM)", "FS"
    );
    for name in single_names(&args) {
        let (base, results) = run_with_baseline(&cfg, &figure7_designs(), &single_workloads(name));
        let base_e = base.energy.total_nj();
        print!("{name:<12}");
        for (_, m, _) in &results {
            print!(" {:>9.3}x", m.energy.total_nj() / base_e);
        }
        println!();
    }
    println!("\n(breakdown for DAS-DRAM)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "act/pre nJ", "burst nJ", "migration nJ", "background nJ"
    );
    for name in single_names(&args) {
        let (_, results) = run_with_baseline(
            &cfg,
            &[das_sim::config::Design::DasDram],
            &single_workloads(name),
        );
        let e = &results[0].1.energy;
        println!(
            "{name:<12} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            e.act_pre_nj, e.burst_nj, e.migration_nj, e.background_nj
        );
    }
}
