//! Regenerates Table 2 (target workloads) with each generator's parameters.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `table2`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `table2 [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("table2");
}
