//! Regenerates Table 2 (target workloads) with each stand-in generator's
//! calibration parameters.

use das_workloads::config::Pattern;
use das_workloads::{mixes, spec};

fn main() {
    println!("# Table 2: Target Workloads");
    println!("## Single-programming workloads");
    println!(
        "{:<12} {:>6} {:>10} {:>7} {:>6} {:>6}  pattern",
        "benchmark", "MPKI", "footprint", "write%", "dep%", "run"
    );
    for cfg in spec::spec2006() {
        let pattern = match &cfg.pattern {
            Pattern::Stream { streams } => format!("stream x{streams}"),
            Pattern::Layered { layers } => {
                let desc: Vec<String> = layers
                    .iter()
                    .map(|l| format!("{:.0}%@p{:.2}", l.frac * 100.0, l.prob))
                    .collect();
                format!("layered [{}]", desc.join(", "))
            }
        };
        println!(
            "{:<12} {:>6.1} {:>7}MB {:>6.0}% {:>5.0}% {:>6}  {}",
            cfg.name,
            cfg.mpki,
            cfg.footprint_bytes >> 20,
            cfg.write_frac * 100.0,
            cfg.dep_frac * 100.0,
            cfg.run_lines,
            pattern
        );
    }
    println!("\n## Multi-programming workloads");
    for (name, benches) in mixes::MIXES {
        println!("{name}  {}", benches.join(", "));
    }
}
