//! Regenerates Figure 9c: DAS-DRAM improvement vs fast-level capacity ratio
//! (1/32, 1/16, 1/8, 1/4) under Random replacement.

use das_bench::{ratio_sweep, HarnessArgs};
use das_core::replacement::ReplacementPolicy;

fn main() {
    let args = HarnessArgs::parse();
    ratio_sweep(
        "Figure 9c: Ratios of Fast Level with Random Replacement",
        &args,
        ReplacementPolicy::Random,
    );
}
