//! Regenerates Figure 7e: MPKI, PPKM and footprints for the M1-M8 mixes
//! (measured on DAS-DRAM).

use das_bench::must_run as run_one;
use das_bench::{mix_names, mix_workloads, multi_config, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = multi_config(&args);
    println!("# Figure 7e: MPKI; PPKM; Footprints (multi-programming, DAS-DRAM)");
    println!(
        "{:<4} {:>8} {:>8} {:>14}",
        "mix", "MPKI", "PPKM", "footprint(MB)"
    );
    for name in mix_names(&args) {
        let m = run_one(&cfg, Design::DasDram, &mix_workloads(name));
        println!(
            "{:<4} {:>8.1} {:>8.1} {:>14.1}",
            name,
            m.mpki(),
            m.ppkm(),
            m.footprint_bytes as f64 / (1 << 20) as f64
        );
    }
}
