//! Regenerates Table 1 (system configuration), printing both the paper's
//! full-scale values and the scaled values actually simulated.

use das_bench::HarnessArgs;
use das_sim::config::SystemConfig;

fn main() {
    let args = HarnessArgs::parse();
    let full = SystemConfig::paper_full();
    let cfg = args.config();
    println!(
        "# Table 1: System Configuration (paper value -> simulated at scale {})",
        cfg.scale
    );
    println!(
        "Processor        3GHz, {}-wide issue, {}-entry ROB",
        full.core.width, full.core.rob_entries
    );
    println!(
        "Cache            {}KB 8-way private L1 ({} cyc), {}KB 8-way private L2 ({} cyc), {}MB 8-way shared LLC ({} cyc) -> LLC {}KB",
        full.hierarchy.l1_bytes >> 10,
        full.hierarchy.l1_latency,
        full.hierarchy.l2_bytes >> 10,
        full.hierarchy.l2_latency,
        full.hierarchy.llc_bytes >> 20,
        full.hierarchy.llc_latency,
        cfg.hierarchy.llc_bytes >> 10,
    );
    println!(
        "Mem Controller   {}-entry request queue, open-page policy, FR-FCFS",
        full.controller.read_queue
    );
    let t = das_dram::timing::TimingSet::asymmetric();
    println!(
        "DRAM             {} GB DDR3-1600, {} channels, {} ranks/channel -> {} MB simulated",
        full.geometry.total_bytes() >> 30,
        full.geometry.channels,
        full.geometry.ranks_per_channel,
        cfg.geometry.total_bytes() >> 20,
    );
    println!(
        "                 tRCD: {:.2}ns, tRC: {:.2}ns",
        t.slow.trcd.as_ns(),
        t.slow.trc().as_ns()
    );
    println!(
        "Asym. DRAM       Fast-level capacity ratio: {}",
        cfg.management.fast_ratio
    );
    println!(
        "                 Migration group size: {} rows",
        cfg.management.group_size
    );
    println!(
        "                 Migration latency: {:.2}ns",
        t.swap.as_ns()
    );
    println!(
        "                 tRCD (fast/slow): {:.2}/{:.2}ns, tRC (fast/slow): {:.2}/{:.2}ns",
        t.fast.trcd.as_ns(),
        t.slow.trcd.as_ns(),
        t.fast.trc().as_ns(),
        t.slow.trc().as_ns()
    );
    println!(
        "                 Translation cache: {}KB full scale -> {}B simulated",
        cfg.management.tcache_bytes >> 10,
        cfg.scaled_tcache_bytes()
    );
}
