//! Regenerates Figure 9a: DAS-DRAM performance improvement vs translation
//! cache capacity (full-scale 32/64/128/256 KB, scaled with the system).

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

const CAPS_KB: [u64; 4] = [32, 64, 128, 256];

fn main() {
    let args = HarnessArgs::parse();
    let names = single_names(&args);
    println!("# Figure 9a: Translation Cache Capacities (full-scale labels)");
    print!("{:<12}", "workload");
    for kb in CAPS_KB {
        print!(" {:>10}", format!("{kb} KB"));
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); CAPS_KB.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, kb) in CAPS_KB.iter().enumerate() {
            let cfg = args.config().with_tcache_bytes(kb << 10);
            let m = run_one(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>10}", pct(imp));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>10}", pct(gmean_improvement(col)));
    }
    println!();
}
