//! Regenerates Figure 9a: improvement vs translation-cache capacity.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `fig9a`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `fig9a [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("fig9a");
}
