//! Ablation: subarray arrangement (Fig. 5). The reduced-interleaving
//! arrangement keeps fast and slow subarrays adjacent, so a swap costs the
//! flat 3 tRC of Table 1; a partitioned arrangement forces migrating rows
//! to relay across intermediate subarrays, charged here at 0.5 tRC per
//! extra hop (see `das_core::migration::MigrationModel::with_hop_cost`).

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_core::migration::MigrationModel;
use das_dram::geometry::Arrangement;
use das_dram::tick::Tick;
use das_dram::timing::TimingSet;
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    let arrangements = [
        ("reduced-interleaving", Arrangement::ReducedInterleaving),
        ("partitioning", Arrangement::Partitioning),
    ];
    println!("# Ablation: Subarray Arrangement (DAS-DRAM improvement over Std-DRAM)");
    print!("{:<12}", "workload");
    for (label, _) in arrangements {
        print!(" {:>22}", label);
    }
    println!();
    let names = single_names(&args);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); arrangements.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, (_, arr)) in arrangements.iter().enumerate() {
            let mut cfg = args.config();
            cfg.arrangement = *arr;
            // Hop distance is a property of the full-scale physical design
            // (a real bank has tens of subarrays), so compute it on the
            // paper's 32768-row bank regardless of the simulation scale.
            let full = das_dram::geometry::BankLayout::build(
                32768,
                cfg.management.fast_ratio,
                *arr,
                128,
                512,
            );
            let groups = das_core::groups::BankGroups::new(
                32768,
                cfg.management.group_size,
                cfg.management.fast_ratio,
            );
            let hops = groups.mean_intra_group_hops(&full).round().max(1.0) as u32;
            let base_t = TimingSet::asymmetric();
            let model =
                MigrationModel::with_hop_cost(base_t, Tick::new(base_t.slow.trc().raw() / 2));
            let mut t = base_t;
            t.swap = model.swap(hops.max(1));
            t.single_migration = model.single_migration(hops.max(1));
            cfg.timing_override = Some(t);
            let m = run_one(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>22}", format!("{} (hops {})", pct(imp), hops));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>22}", pct(gmean_improvement(col)));
    }
    println!();
}
