//! Telemetry demonstration: one instrumented DAS-DRAM run over a
//! phase-drifting workload, exporting
//!
//! * the machine-readable run report (metrics + per-class latency
//!   percentiles + epoch time-series) to `--json PATH` (default
//!   `telemetry_report.json`), and
//! * the Chrome trace-event document to the same path with a `_trace.json`
//!   suffix — open it in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing` to see migration spans and the per-epoch counters.
//!
//! Both exports are validated with the strict JSON parser before the
//! process exits, and the epoch table printed below shows the fast-
//! activation ratio rising as promotions fill the fast level — the paper's
//! warm-up dynamics, visible per epoch instead of only in the end-of-run
//! aggregate.
//!
//! Usage: `telemetry [--insts N] [--scale N] [--only bench] [--json PATH]`.

use das_bench::{single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::run_one_instrumented;
use das_sim::report::run_report_json;
use das_telemetry::{json, LatencyClass, TelemetryConfig};

/// Epoch length in CPU cycles for the demonstration series.
const EPOCH_CYCLES: u64 = 100_000;

fn main() {
    let args = HarnessArgs::parse();
    let bench = args
        .filter(vec!["mcf"])
        .first()
        .copied()
        .unwrap_or("mcf")
        .to_string();
    let wl = single_workloads(&bench);
    let cfg = args
        .config()
        .with_telemetry(TelemetryConfig::on(EPOCH_CYCLES));

    let (res, report) = run_one_instrumented(&cfg, Design::DasDram, &wl);
    let m = res.unwrap_or_else(|e| {
        eprintln!("simulation failed: DAS-DRAM over {bench}: {e}");
        std::process::exit(1);
    });
    let report = report.expect("telemetry was enabled");

    let report_path = args
        .json
        .clone()
        .unwrap_or_else(|| "telemetry_report.json".to_string());
    let trace_path = report_path
        .strip_suffix(".json")
        .map(|stem| format!("{stem}_trace.json"))
        .unwrap_or_else(|| format!("{report_path}_trace.json"));

    let report_doc = run_report_json(&m, Some(&report));
    let trace_doc = report.chrome_trace_json();
    for (path, doc) in [(&report_path, &report_doc), (&trace_path, &trace_doc)] {
        json::validate(doc).unwrap_or_else(|e| {
            eprintln!("internal error: export for {path} does not parse: {e}");
            std::process::exit(1);
        });
        std::fs::write(path, doc).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
    }

    println!("# telemetry: DAS-DRAM over {bench} ({EPOCH_CYCLES}-cycle epochs)");
    println!("\n## per-class latency (ticks, merged over channels)");
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "class", "count", "p50", "p95", "p99", "max"
    );
    for class in LatencyClass::ALL {
        let h = report.merged.class(class);
        println!(
            "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8}",
            class.label(),
            h.count(),
            h.percentile(50.0),
            h.percentile(95.0),
            h.percentile(99.0),
            h.max()
        );
    }

    println!("\n## epoch series (first 20 epochs)");
    println!(
        "{:<6} {:>8} {:>11} {:>8} {:>8} {:>10} {:>7} {:>7}",
        "epoch", "ipc", "fast-ratio", "reads", "writes", "promotions", "rdq", "wrq"
    );
    for s in report.series.samples().iter().take(20) {
        println!(
            "{:<6} {:>8.3} {:>11.3} {:>8} {:>8} {:>10} {:>7} {:>7}",
            s.epoch,
            s.ipc,
            s.fast_ratio,
            s.counters.reads,
            s.counters.writes,
            s.counters.promotions,
            s.counters.read_queue,
            s.counters.write_queue
        );
    }

    let samples = report.series.samples();
    if samples.len() >= 4 && m.promotions > 0 {
        let first = samples[0].fast_ratio;
        let later: Vec<f64> = samples[samples.len() / 2..]
            .iter()
            .map(|s| s.fast_ratio)
            .collect();
        let later_avg = later.iter().sum::<f64>() / later.len() as f64;
        assert!(
            later_avg > first,
            "fast-activation ratio must rise during warm-up \
             (first {first:.3}, later avg {later_avg:.3})"
        );
        println!(
            "\nfast-activation ratio rose {:.3} -> {:.3} as promotions filled the fast level",
            first, later_avg
        );
    }

    println!(
        "\n{} trace events, {} epochs sampled",
        report.trace.events().len(),
        samples.len()
    );
    println!("run report: {report_path}");
    println!("chrome trace: {trace_path} (open in https://ui.perfetto.dev)");
}
