//! Regenerates Figure 7b: MPKI, PPKM (promotions per kilo-miss) and episode
//! footprint for each single-programming workload (measured on DAS-DRAM).

use das_bench::must_run as run_one;
use das_bench::{single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    println!("# Figure 7b: MPKI; PPKM; Footprints (single-programming, DAS-DRAM)");
    println!(
        "{:<12} {:>8} {:>8} {:>14} {:>16}",
        "workload", "MPKI", "PPKM", "footprint(MB)", "paper-equiv(MB)"
    );
    for name in single_names(&args) {
        let m = run_one(&cfg, Design::DasDram, &single_workloads(name));
        println!(
            "{:<12} {:>8.1} {:>8.1} {:>14.1} {:>16.1}",
            name,
            m.mpki(),
            m.ppkm(),
            m.footprint_bytes as f64 / (1 << 20) as f64,
            m.footprint_bytes as f64 * cfg.scale as f64 / (1 << 20) as f64,
        );
    }
}
