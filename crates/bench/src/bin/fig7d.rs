//! Regenerates Figure 7d: multi-programming (M1-M8) performance
//! improvement over Std-DRAM.

use das_bench::{
    figure7_designs, mix_names, mix_workloads, multi_config, print_improvement_table,
    run_with_baseline, HarnessArgs,
};

fn main() {
    let args = HarnessArgs::parse();
    let cfg = multi_config(&args);
    let names = mix_names(&args);
    let designs = figure7_designs();
    let mut rows = Vec::new();
    for name in &names {
        let (_, results) = run_with_baseline(&cfg, &designs, &mix_workloads(name));
        rows.push(results.iter().map(|(_, _, imp)| *imp).collect());
    }
    print_improvement_table(
        "Figure 7d: Multi-Programming Performance Improvements",
        &names,
        &designs,
        &rows,
    );
}
