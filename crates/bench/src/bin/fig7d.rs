//! Regenerates Figure 7d: multi-programming (M1-M8) performance improvements.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `fig7d`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `fig7d [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("fig7d");
}
