//! Regenerates Figure 7f: access-location distribution for the M1-M8 mixes.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `fig7f`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `fig7f [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("fig7f");
}
