//! Regenerates Figure 7f: access-location distribution for M1-M8, static
//! (SAS) vs dynamic (DAS).

use das_bench::must_run as run_one;
use das_bench::{mix_names, mix_workloads, multi_config, print_access_mix, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = multi_config(&args);
    println!("# Figure 7f: Access Locations (multi-programming)");
    for (panel, design) in [
        ("Static (SAS-DRAM)", Design::SasDram),
        ("Dynamic (DAS-DRAM)", Design::DasDram),
    ] {
        println!("## {panel}");
        for name in mix_names(&args) {
            let m = run_one(&cfg, design, &mix_workloads(name));
            print_access_mix(name, &m);
        }
    }
}
