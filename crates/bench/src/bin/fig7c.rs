//! Regenerates Figure 7c: distribution of memory access locations
//! (slow level / fast level / row buffer), static (SAS) vs dynamic (DAS).

use das_bench::must_run as run_one;
use das_bench::{print_access_mix, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    println!("# Figure 7c: Access Locations (single-programming)");
    for (panel, design) in [
        ("Static (SAS-DRAM)", Design::SasDram),
        ("Dynamic (DAS-DRAM)", Design::DasDram),
    ] {
        println!("## {panel}");
        for name in single_names(&args) {
            let m = run_one(&cfg, design, &single_workloads(name));
            print_access_mix(name, &m);
        }
    }
}
