//! Regenerates Figure 8c: row promotions per memory access vs threshold.

use das_bench::must_run as run_one;
use das_bench::{single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Figure 8c: Promotion/Access Ratio vs Threshold");
    print!("{:<12}", "workload");
    for t in [8u32, 4, 2, 1] {
        print!(" {:>12}", format!("threshold {t}"));
    }
    println!();
    for name in single_names(&args) {
        print!("{name:<12}");
        for t in [8u32, 4, 2, 1] {
            let cfg = args.config().with_threshold(t);
            let m = run_one(&cfg, Design::DasDram, &single_workloads(name));
            print!(" {:>11.2}%", m.promotions_per_access() * 100.0);
        }
        println!();
    }
}
