//! Ablation: composing subarray-level parallelism (SALP/MASA, §8's
//! "generally compatible with low latency designs") with the DRAM designs.
//!
//! SALP gives every subarray its own local row buffer, so row-buffer
//! conflicts within a bank vanish for accesses to different subarrays —
//! orthogonal to, and stackable with, the fast-subarray latency reduction.

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    println!("# Ablation: SALP Composition (improvement over Std-DRAM without SALP)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "workload", "Std", "Std+SALP", "DAS", "DAS+SALP"
    );
    let names = single_names(&args);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        let mut vals = Vec::new();
        for (design, salp) in [
            (Design::Standard, false),
            (Design::Standard, true),
            (Design::DasDram, false),
            (Design::DasDram, true),
        ] {
            let mut cfg = args.config();
            cfg.salp = salp;
            let m = run_one(&cfg, design, &wl);
            vals.push(improvement(&m, &base));
        }
        print!("{name:<12}");
        for (i, v) in vals.iter().enumerate() {
            cols[i].push(*v);
            print!(" {:>12}", pct(*v));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>12}", pct(gmean_improvement(col)));
    }
    println!();
    println!(
        "\nSALP removes row-buffer conflicts; DAS removes activation latency —\n\
         the two compose, as §8 argues for parallelism-oriented proposals."
    );
}
