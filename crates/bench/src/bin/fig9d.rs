//! Regenerates Figure 9d: DAS-DRAM improvement vs fast-level capacity ratio
//! (1/32, 1/16, 1/8, 1/4) under LRU replacement.

use das_bench::{ratio_sweep, HarnessArgs};
use das_core::replacement::ReplacementPolicy;

fn main() {
    let args = HarnessArgs::parse();
    ratio_sweep(
        "Figure 9d: Ratios of Fast Level with LRU Replacement",
        &args,
        ReplacementPolicy::Lru,
    );
}
