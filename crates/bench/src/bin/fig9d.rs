//! Regenerates Figure 9d: improvement vs fast-level ratio (LRU replacement).
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `fig9d`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `fig9d [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("fig9d");
}
