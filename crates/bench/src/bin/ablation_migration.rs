//! Ablation: migration-mechanism latency variants (free to 6 tRC).
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `ablation_migration`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `ablation_migration [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("ablation_migration");
}
