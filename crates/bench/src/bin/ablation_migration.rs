//! Ablation: the value of the paper's migration mechanism design choices.
//!
//! Compares DAS-DRAM under four swap-latency models:
//! * free        — zero-cost migration (DAS-DRAM (FM));
//! * paper       — the Fig. 6 four-step overlapped swap, 3 tRC (146.25 ns);
//! * naive       — software-style swap: three serial 1.5 tRC migrations
//!   (§5.1), 4.5 tRC;
//! * untightened — naive swap without the §4.2 tRAS tightening: three
//!   serial 2 tRC migrations, 6 tRC.

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_dram::tick::Tick;
use das_dram::timing::TimingSet;
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    let trc = TimingSet::asymmetric().slow.trc();
    let variants: [(&str, Tick); 4] = [
        ("free", Tick::ZERO),
        ("paper 3tRC", 3 * trc),
        ("naive 4.5tRC", Tick::new(trc.raw() * 9 / 2)),
        ("untight 6tRC", 6 * trc),
    ];
    println!("# Ablation: Migration Mechanism (DAS-DRAM improvement over Std-DRAM)");
    print!("{:<12}", "workload");
    for (label, _) in variants {
        print!(" {:>14}", label);
    }
    println!();
    let names = single_names(&args);
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, (_, swap)) in variants.iter().enumerate() {
            let mut cfg = args.config();
            let mut t = TimingSet::asymmetric();
            t.swap = *swap;
            t.single_migration = Tick::new(swap.raw() / 2);
            cfg.timing_override = Some(t);
            let m = run_one(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>14}", pct(imp));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>14}", pct(gmean_improvement(col)));
    }
    println!();
}
