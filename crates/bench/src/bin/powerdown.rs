//! Extension study: partial power-down (§1 motivates the migration
//! mechanism as enabling "other usages such as partial power down").
//!
//! Dynamic migration concentrates activations into the fast subarrays
//! (~11 % of the die at ratio 1/8). The remaining slow subarrays see only
//! rare residual traffic and can sit in power-down between accesses. This
//! binary estimates the background-power saving per design with a simple
//! residency model: a slow subarray naps whenever its inter-access gap
//! exceeds the power-down entry+exit overhead (tXP-class, ~50 ns with
//! hysteresis), so
//!
//! `pd_residency = max(0, 1 - slow_act_rate_per_subarray * overhead)`.

use das_bench::must_run as run_one;
use das_bench::{single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;

/// Power-down entry + exit + hysteresis charged per slow-subarray access
/// burst, in nanoseconds.
const PD_OVERHEAD_NS: f64 = 50.0;
/// Fraction of die area (and hence background power) in slow subarrays at
/// the paper's 1/8 capacity ratio (8/9 of the cell area).
const SLOW_AREA_FRACTION: f64 = 8.0 / 9.0;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    println!("# Extension: Partial Power-Down Opportunity (§1)");
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>16}",
        "workload", "design", "slow act %", "pd residency", "bg power saved"
    );
    for name in single_names(&args) {
        let wl = single_workloads(name);
        for design in [Design::Standard, Design::SasDram, Design::DasDram] {
            let m = run_one(&cfg, design, &wl);
            let window_ns = m.window_cycles as f64 / 3.0;
            let slow_acts = m.access_mix.slow as f64;
            let slow_subarrays = (m.total_subarrays as f64 * SLOW_AREA_FRACTION).max(1.0);
            let rate_per_sub = slow_acts / slow_subarrays / window_ns; // acts per ns
            let residency = (1.0 - rate_per_sub * PD_OVERHEAD_NS).max(0.0);
            let saved = SLOW_AREA_FRACTION * residency;
            println!(
                "{:<12} {:>10} {:>13.1}% {:>13.1}% {:>15.1}%",
                name,
                m.design,
                m.access_mix.fractions().2 * 100.0,
                residency * 100.0,
                saved * 100.0
            );
        }
        println!();
    }
    println!(
        "Std-DRAM spreads activations over every subarray; DAS-DRAM's\n\
         migration concentrates them into the fast 11% of the die, letting\n\
         the slow majority nap — the §1 partial power-down claim quantified."
    );
}
