//! Regenerates Figure 7a: single-programming performance improvement over
//! Std-DRAM for SAS-DRAM, CHARM, DAS-DRAM, DAS-DRAM (FM) and FS-DRAM.

use das_bench::{
    figure7_designs, print_improvement_table, run_with_baseline, single_names, single_workloads,
    HarnessArgs,
};

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    let names = single_names(&args);
    let designs = figure7_designs();
    let mut rows = Vec::new();
    for name in &names {
        let (_, results) = run_with_baseline(&cfg, &designs, &single_workloads(name));
        rows.push(results.iter().map(|(_, _, imp)| *imp).collect());
    }
    print_improvement_table(
        "Figure 7a: Single-Programming Performance Improvements",
        &names,
        &designs,
        &rows,
    );
}
