//! Ablation: TL-DRAM (§3.1) vs DAS-DRAM — the two hybrid-bitline routes.
//!
//! TL-DRAM segments every bitline: its near segments (ratio 1/4) are cached
//! inclusively with cheap intra-subarray copies, but the far segments pay
//! the isolation-transistor restore penalty *even for uncached data*, and
//! the area overhead is ~24 % (vs DAS's 6.6 %). DAS keeps commodity slow
//! subarrays and pays only 1/8 of capacity in fast subarrays — the paper's
//! manufacturability argument in numbers.

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_dram::area::{AsymmetricAreaModel, TlDramAreaModel};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

fn main() {
    let args = HarnessArgs::parse();
    let cfg = args.config();
    println!("# Ablation: TL-DRAM vs DAS-DRAM (improvement over Std-DRAM)");
    println!(
        "area overhead: TL-DRAM {:.1}%  |  DAS-DRAM {:.1}%\n",
        TlDramAreaModel::default().overhead() * 100.0,
        AsymmetricAreaModel::default().overhead() * 100.0
    );
    println!("{:<12} {:>12} {:>12}", "workload", "TL-DRAM", "DAS-DRAM");
    let names = single_names(&args);
    let mut tl_col = Vec::new();
    let mut das_col = Vec::new();
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&cfg, Design::Standard, &wl);
        let tl = improvement(&run_one(&cfg, Design::TlDram, &wl), &base);
        let das = improvement(&run_one(&cfg, Design::DasDram, &wl), &base);
        tl_col.push(tl);
        das_col.push(das);
        println!("{:<12} {:>12} {:>12}", name, pct(tl), pct(das));
    }
    println!(
        "{:<12} {:>12} {:>12}",
        "gmean",
        pct(gmean_improvement(&tl_col)),
        pct(gmean_improvement(&das_col))
    );
    println!(
        "\nTL-DRAM's larger near level helps, but every far-segment access\n\
         pays the isolation penalty and the design costs ~4x the silicon;\n\
         DAS reaches comparable speed at commodity-compatible overhead."
    );
}
