//! Fault-injection sweep: the five Fig. 7 designs under increasing uniform
//! fault rates, proving (a) a rate-0 plan is bit-identical to no injection
//! and (b) every design completes panic-free at the default nonzero rates,
//! with per-site injected/retried/recovered/fatal accounting.
//!
//! Usage: `fault_sweep [--insts N] [--scale N] [--only bench]`.

use das_bench::{must_run, single_workloads, HarnessArgs};
use das_faults::{FaultPlan, FaultSite};
use das_sim::config::Design;
use das_sim::stats::RunMetrics;

/// Deterministic fields of a run, for the rate-0 bit-identity proof.
fn fingerprint(m: &RunMetrics) -> (u64, u64, u64, u64, u64) {
    (
        m.promotions,
        m.memory_accesses,
        m.llc_misses,
        m.window_cycles,
        m.access_mix.row_buffer,
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let bench = args
        .filter(vec!["mcf"])
        .first()
        .copied()
        .unwrap_or("mcf")
        .to_string();
    let wl = single_workloads(&bench);
    let designs = [
        Design::SasDram,
        Design::Charm,
        Design::DasDram,
        Design::DasDramFm,
        Design::FsDram,
    ];
    let rates = [0.0, 0.001, 0.01, 0.05];

    println!("# fault sweep over {bench}: five designs x uniform rates");
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8}",
        "design", "rate", "injected", "retried", "recovered", "fatal", "audits", "rebuilds", "ipc"
    );
    for design in designs {
        let clean = must_run(&args.config(), design, &wl);
        for rate in rates {
            let cfg = args
                .config()
                .with_faults(FaultPlan::uniform(0xda5_fa17, rate))
                .with_invariant_checks(if rate > 0.0 { 10_000 } else { 0 });
            let m = must_run(&cfg, design, &wl);
            if rate == 0.0 {
                assert_eq!(
                    fingerprint(&m),
                    fingerprint(&clean),
                    "{}: rate-0 plan must be bit-identical to no injection",
                    design.label()
                );
                assert_eq!(m.faults.total_injected(), 0);
            }
            println!(
                "{:<14} {:>8.3} {:>9} {:>9} {:>9} {:>9} {:>7} {:>9} {:>8.3}",
                design.label(),
                rate,
                m.faults.total_injected(),
                FaultSite::ALL
                    .iter()
                    .map(|&s| m.faults.site(s).retried)
                    .sum::<u64>(),
                m.faults.total_recovered(),
                m.faults.total_fatal(),
                m.faults.invariant_checks_passed,
                m.faults.tcache_rebuilds,
                m.ipc(),
            );
        }
    }
    println!("\nrate-0 runs verified bit-identical to uninjected runs for all designs");
}
