//! Fault-injection sweep: the five Fig. 7 designs under uniform fault rates.
//!
//! Driven by the `das-harness` subsystem: the run matrix is built and
//! rendered by `das_harness::catalog` (experiment `fault_sweep`), so this
//! binary, the `harness` orchestrator and a resumed journal all print
//! identical bytes. `--emit-manifest PATH` describes the matrix instead
//! of executing it; `--threads N` parallelises without changing output.
//!
//! Usage: `fault_sweep [--insts N] [--scale N] [--only a,b] [--json PATH]
//! [--threads N] [--emit-manifest PATH]`.

fn main() {
    das_harness::cli::bin_main("fault_sweep");
}
