//! Regenerates Figure 8a: performance improvement of DAS-DRAM under
//! promotion-filter thresholds 8, 4, 2, 1 (1 = promote on every slow hit).

use das_bench::must_run as run_one;
use das_bench::{pct, single_names, single_workloads, HarnessArgs};
use das_sim::config::Design;
use das_sim::experiments::improvement;
use das_sim::stats::gmean_improvement;

const THRESHOLDS: [u32; 4] = [8, 4, 2, 1];

fn main() {
    let args = HarnessArgs::parse();
    let names = single_names(&args);
    println!("# Figure 8a: Filtering Policies - Performance Improvement");
    print!("{:<12}", "workload");
    for t in THRESHOLDS {
        print!(" {:>12}", format!("threshold {t}"));
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); THRESHOLDS.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = run_one(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, t) in THRESHOLDS.iter().enumerate() {
            let cfg = args.config().with_threshold(*t);
            let m = run_one(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>12}", pct(imp));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>12}", pct(gmean_improvement(col)));
    }
    println!();
}
