//! # das-bench — figure/table regeneration binaries
//!
//! One binary per table and figure of the paper's evaluation (§6–§7), plus
//! ablation studies for the design choices called out in `DESIGN.md`. Each
//! binary prints the same rows/series the paper reports; `EXPERIMENTS.md`
//! records paper-vs-measured values.
//!
//! The binaries are thin wrappers over the `das-harness` orchestration
//! subsystem (`das_harness::cli::bin_main`), which builds each
//! experiment's declarative run matrix, executes it (optionally across
//! threads, bit-identically) and renders the historical text output.
//! This crate keeps the shared helpers the harness-independent tests and
//! criterion benches use: run-matrix naming, percentage formatting, the
//! table printers, and the streaming run-report sink.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::io::Write as _;
use std::sync::Mutex;

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{improvement, run_one};
use das_sim::stats::{gmean_improvement, RunMetrics};
use das_telemetry::json::{self, Value};
use das_workloads::config::WorkloadConfig;
use das_workloads::{mixes, spec};

/// The process-wide JSON run collector behind `--json PATH`: every
/// [`must_run`] appends its run report as **one JSON line** to an open
/// file — O(1) per run, where the sink historically re-rendered and
/// rewrote the whole `{"runs":[...]}` document on every append (O(n²)
/// over a long matrix). [`finish_json`] converts the stream into the
/// legacy document shape once, at the end.
static JSON_SINK: Mutex<Option<JsonSink>> = Mutex::new(None);

struct JsonSink {
    path: String,
    file: std::fs::File,
}

/// Appends one run report to the `--json` export (no-op when the flag was
/// not given). [`must_run`] calls this for every successful run; call it
/// directly for runs obtained another way (instrumented, recorded traces).
pub fn record_run_report(report: Value) {
    // Poison recovery: the sink is a path + append-mode file handle; a
    // panic on another thread mid-append can at worst leave a torn final
    // line, which `finish_json` surfaces as a parse error — the guarded
    // struct itself stays consistent.
    let mut guard = JSON_SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = guard.as_mut() {
        let line = report.render();
        if let Err(e) = sink
            .file
            .write_all(line.as_bytes())
            .and_then(|()| sink.file.write_all(b"\n"))
        {
            eprintln!("cannot write {}: {e}", sink.path);
            std::process::exit(1);
        }
    }
}

/// Rewrites the `--json` export from its streaming JSON-lines form into
/// the legacy `{"runs":[...]}` document (no-op when `--json` was not
/// given). Call once after the last [`record_run_report`].
pub fn finish_json() {
    let mut guard = JSON_SINK.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(sink) = guard.take() {
        drop(sink.file);
        let text = std::fs::read_to_string(&sink.path).unwrap_or_else(|e| {
            eprintln!("cannot read back {}: {e}", sink.path);
            std::process::exit(1);
        });
        let runs: Vec<Value> = text
            .lines()
            .map(|l| {
                json::parse(l).unwrap_or_else(|e| {
                    eprintln!("corrupt run line in {}: {e}", sink.path);
                    std::process::exit(1);
                })
            })
            .collect();
        let doc = Value::obj().set("runs", Value::Arr(runs)).render();
        if let Err(e) = std::fs::write(&sink.path, doc) {
            eprintln!("cannot write {}: {e}", sink.path);
            std::process::exit(1);
        }
    }
}

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Per-core instruction budget.
    pub insts: u64,
    /// Capacity scale factor.
    pub scale: u32,
    /// Restrict to a subset of benchmarks/mixes (empty = all).
    pub only: Vec<String>,
    /// Machine-readable export path (`--json PATH`): every run's report is
    /// collected into `{"runs":[...]}` alongside the text tables.
    pub json: Option<String>,
}

impl HarnessArgs {
    /// Parses `--insts N`, `--scale N`, `--only a,b,c` and `--json PATH`
    /// from `args`. When `--json` is given the export file is created
    /// (truncated) immediately; run reports stream into it one JSON line
    /// at a time, and [`finish_json`] folds them into the legacy
    /// `{"runs":[...]}` document at the end.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        let mut out = HarnessArgs {
            insts: 3_000_000,
            scale: 64,
            only: Vec::new(),
            json: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--insts" => {
                    out.insts = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--insts needs an integer");
                }
                "--scale" => {
                    out.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs an integer");
                }
                "--only" => {
                    out.only = args
                        .next()
                        .expect("--only needs a comma-separated list")
                        .split(',')
                        .map(str::to_string)
                        .collect();
                }
                "--json" => {
                    out.json = Some(args.next().expect("--json needs a path"));
                }
                other => {
                    panic!("unknown argument {other:?} (use --insts/--scale/--only/--json)")
                }
            }
        }
        if let Some(path) = &out.json {
            let file = std::fs::File::create(path).unwrap_or_else(|e| {
                eprintln!("cannot create {path}: {e}");
                std::process::exit(1);
            });
            *JSON_SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(JsonSink {
                path: path.clone(),
                file,
            });
        }
        out
    }

    /// The system configuration these arguments select.
    pub fn config(&self) -> SystemConfig {
        SystemConfig::scaled_by(self.scale, self.insts)
    }

    /// Filters a name list by `--only`.
    pub fn filter<'a>(&self, names: Vec<&'a str>) -> Vec<&'a str> {
        if self.only.is_empty() {
            names
        } else {
            names
                .into_iter()
                .filter(|n| self.only.iter().any(|o| o == n))
                .collect()
        }
    }
}

/// The single-programming benchmark list (Table 2 order).
pub fn single_names(args: &HarnessArgs) -> Vec<&'static str> {
    args.filter(spec::names())
}

/// The multi-programming mix list (Table 2 order).
pub fn mix_names(args: &HarnessArgs) -> Vec<&'static str> {
    args.filter(mixes::names())
}

/// Workload set for one single-programming benchmark.
pub fn single_workloads(name: &str) -> Vec<WorkloadConfig> {
    vec![spec::by_name(name)]
}

/// Workload set for one mix. Per-benchmark footprints are halved relative
/// to the single-programming episodes: the paper's multi-programming runs
/// sample a different execution point whose footprints (Fig. 7e) are
/// smaller than the single-programming ones (Fig. 7b).
pub fn mix_workloads(name: &str) -> Vec<WorkloadConfig> {
    mixes::mix(name).iter().map(|w| w.scaled(2)).collect()
}

/// Runs one simulation, terminating the process with a readable message if
/// it cannot finish — a figure harness has nothing to report without it.
pub fn must_run(cfg: &SystemConfig, design: Design, workloads: &[WorkloadConfig]) -> RunMetrics {
    let m = run_one(cfg, design, workloads).unwrap_or_else(|e| {
        let names: Vec<&str> = workloads.iter().map(|w| w.name.as_str()).collect();
        eprintln!(
            "simulation failed: {} over {}: {e}",
            design.label(),
            names.join("+")
        );
        std::process::exit(1);
    });
    record_run_report(das_sim::report::run_report(&m, None));
    m
}

/// Runs `designs` plus the Std-DRAM baseline over one workload set and
/// returns `(baseline, per-design (metrics, improvement))`.
pub fn run_with_baseline(
    cfg: &SystemConfig,
    designs: &[Design],
    workloads: &[WorkloadConfig],
) -> (RunMetrics, Vec<(Design, RunMetrics, f64)>) {
    let base = must_run(cfg, Design::Standard, workloads);
    let rows = designs
        .iter()
        .map(|&d| {
            let m = must_run(cfg, d, workloads);
            let imp = improvement(&m, &base);
            (d, m, imp)
        })
        .collect();
    (base, rows)
}

/// The non-baseline designs of Fig. 7 in paper order.
pub fn figure7_designs() -> [Design; 5] {
    [
        Design::SasDram,
        Design::Charm,
        Design::DasDram,
        Design::DasDramFm,
        Design::FsDram,
    ]
}

/// Formats a fraction as a percentage with sign.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

/// Prints one improvement table: rows = workloads, columns = designs, plus
/// a gmean row, matching the bar groups of Figs. 7a/7d.
pub fn print_improvement_table(title: &str, names: &[&str], columns: &[Design], rows: &[Vec<f64>]) {
    println!("# {title}");
    print!("{:<12}", "workload");
    for d in columns {
        print!(" {:>14}", d.label());
    }
    println!();
    for (name, row) in names.iter().zip(rows) {
        print!("{name:<12}");
        for v in row {
            print!(" {:>14}", pct(*v));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for c in 0..columns.len() {
        let col: Vec<f64> = rows.iter().map(|r| r[c]).collect();
        print!(" {:>14}", pct(gmean_improvement(&col)));
    }
    println!();
}

/// Prints the Fig. 7c/7f-style access-location distribution for one run.
pub fn print_access_mix(label: &str, m: &RunMetrics) {
    let (rb, f, s) = m.access_mix.fractions();
    println!(
        "{label:<14} slow={:5.1}%  fast={:5.1}%  row-buffer={:5.1}%",
        s * 100.0,
        f * 100.0,
        rb * 100.0
    );
}

/// Configuration for the multi-programming experiments: the paper samples
/// multi-programming at a different execution point with smaller
/// per-benchmark footprints (Fig. 7e) and runs 400 M instructions total;
/// we halve the per-core budget relative to singles.
pub fn multi_config(args: &HarnessArgs) -> SystemConfig {
    let mut cfg = args.config();
    cfg.inst_budget = (args.insts / 2).max(1);
    cfg
}

/// Shared runner for Figs. 9c/9d: fast-level ratio sweep under one
/// replacement policy, printed as an improvement table plus gmean.
pub fn ratio_sweep(
    title: &str,
    args: &HarnessArgs,
    policy: das_core::replacement::ReplacementPolicy,
) {
    use das_dram::geometry::FastRatio;
    let dens: [u32; 4] = [32, 16, 8, 4];
    let names = single_names(args);
    println!("# {title}");
    print!("{:<12}", "workload");
    for d in dens {
        print!(" {:>10}", format!("1/{d}"));
    }
    println!();
    let mut cols: Vec<Vec<f64>> = vec![Vec::new(); dens.len()];
    for name in &names {
        let wl = single_workloads(name);
        let base = must_run(&args.config(), Design::Standard, &wl);
        print!("{name:<12}");
        for (i, den) in dens.iter().enumerate() {
            let cfg = args
                .config()
                .with_fast_ratio(FastRatio::new(1, *den))
                .with_replacement(policy);
            let m = must_run(&cfg, Design::DasDram, &wl);
            let imp = improvement(&m, &base);
            cols[i].push(imp);
            print!(" {:>10}", pct(imp));
        }
        println!();
    }
    print!("{:<12}", "gmean");
    for col in &cols {
        print!(" {:>10}", pct(gmean_improvement(col)));
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(0.0725), "+7.25%");
        assert_eq!(pct(-0.01), "-1.00%");
    }

    #[test]
    fn figure7_designs_are_five() {
        assert_eq!(figure7_designs().len(), 5);
    }

    #[test]
    fn json_sink_streams_lines_and_finishes_as_legacy_doc() {
        let path = std::env::temp_dir()
            .join("das-bench-sink-test.json")
            .display()
            .to_string();
        *JSON_SINK.lock().unwrap() = Some(JsonSink {
            path: path.clone(),
            file: std::fs::File::create(&path).unwrap(),
        });
        record_run_report(Value::obj().set("design", "A"));
        record_run_report(Value::obj().set("design", "B"));
        let streamed = std::fs::read_to_string(&path).unwrap();
        assert_eq!(streamed.lines().count(), 2, "one JSON line per run");
        finish_json();
        let doc = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let runs = doc.get("runs").and_then(Value::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].get("design").and_then(Value::as_str), Some("B"));
        assert!(
            JSON_SINK.lock().unwrap().is_none(),
            "finish clears the sink"
        );
    }

    #[test]
    fn name_helpers_cover_table2() {
        let args = HarnessArgs {
            insts: 1,
            scale: 64,
            only: vec![],
            json: None,
        };
        assert_eq!(single_names(&args).len(), 10);
        assert_eq!(mix_names(&args).len(), 8);
        let only = HarnessArgs {
            insts: 1,
            scale: 64,
            only: vec!["mcf".into()],
            json: None,
        };
        assert_eq!(single_names(&only), vec!["mcf"]);
        assert_eq!(mix_workloads("M1").len(), 4);
    }
}
