//! Criterion micro-benchmarks for the substrate crates: DRAM command
//! cycling, cache hierarchy walks, translation-cache lookups, migration
//! group updates, core dispatch, and trace generation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use das_cache::hierarchy::{CacheHierarchy, HierarchyConfig};
use das_core::groups::BankGroups;
use das_core::translation::TranslationCache;
use das_cpu::core::{Core, CoreConfig};
use das_cpu::trace::TraceItem;
use das_dram::channel::ChannelDevice;
use das_dram::command::DramCommand;
use das_dram::geometry::{Arrangement, BankCoord, BankLayout, FastRatio, GlobalRowId};
use das_dram::tick::Tick;
use das_dram::timing::TimingSet;
use das_workloads::{spec, TraceGen};

fn dram_command_cycle(c: &mut Criterion) {
    c.bench_function("dram/act_rd_pre_cycle", |b| {
        let layout =
            BankLayout::build(4096, FastRatio::new(1, 8), Arrangement::default(), 128, 512);
        let mut dev = ChannelDevice::new(0, 2, 8, layout, TimingSet::asymmetric(), false);
        let bank = BankCoord::new(0, 0, 0);
        let row = dev.layout().slow_to_phys(0);
        let mut now = Tick::ZERO;
        b.iter(|| {
            let act = DramCommand::Activate {
                bank,
                phys_row: row,
            };
            let t = dev.earliest_issue(&act, now).unwrap();
            dev.issue(&act, t);
            let rd = DramCommand::Read {
                bank,
                phys_row: row,
                col: 0,
            };
            let t = dev.earliest_issue(&rd, t).unwrap();
            dev.issue(&rd, t);
            let pre = DramCommand::Precharge {
                bank,
                phys_row: row,
            };
            let t = dev.earliest_issue(&pre, t).unwrap();
            dev.issue(&pre, t);
            now = t;
            black_box(now)
        });
    });
}

fn cache_walk(c: &mut Criterion) {
    c.bench_function("cache/hierarchy_miss_fill_hit", |b| {
        let mut h = CacheHierarchy::new(HierarchyConfig::paper_scaled(64), 1);
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(64) & 0xff_ffff;
            let out = h.access(0, addr, false);
            if out.level == das_cache::hierarchy::CacheLevel::Memory {
                h.fill_from_memory(0, addr, false);
            }
            black_box(out.lookup_cycles)
        });
    });
}

fn tcache_lookup(c: &mut Criterion) {
    c.bench_function("translation/tcache_lookup_insert", |b| {
        let mut t = TranslationCache::new(2048, 8);
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1) % 4096;
            let row = GlobalRowId(n);
            if t.lookup(row) == das_core::translation::TranslationSource::TableFetch {
                t.insert(row);
            }
            black_box(n)
        });
    });
}

fn group_swap(c: &mut Criterion) {
    c.bench_function("groups/swap_logical", |b| {
        let mut g = BankGroups::new(4096, 32, FastRatio::new(1, 8));
        let mut i = 0u32;
        b.iter(|| {
            let group = i % 128;
            g.swap_logical(group * 32 + 5, group * 32 + (i % 4));
            i = i.wrapping_add(1);
            black_box(group)
        });
    });
}

fn core_dispatch(c: &mut Criterion) {
    c.bench_function("cpu/dispatch_complete_cycle", |b| {
        b.iter(|| {
            let mut core = Core::new(CoreConfig::paper_default(), 100_000);
            let mut out = Vec::new();
            let mut items = (0..500u64).map(|i| TraceItem::load(47, i * 64));
            core.dispatch_from(&mut items, &mut out);
            while !out.is_empty() {
                let pending = std::mem::take(&mut out);
                for r in pending {
                    core.complete(r.id, r.issue_at + 800, &mut out);
                }
                core.dispatch_from(&mut items, &mut out);
            }
            black_box(core.insts_retired())
        });
    });
}

fn trace_generation(c: &mut Criterion) {
    c.bench_function("workloads/mcf_trace_item", |b| {
        let mut g = TraceGen::new(spec::by_name("mcf").scaled(64), 1, 0);
        b.iter(|| black_box(g.next()));
    });
}

criterion_group!(
    benches,
    dram_command_cycle,
    cache_walk,
    tcache_lookup,
    group_swap,
    core_dispatch,
    trace_generation
);
criterion_main!(benches);
