//! Criterion timings for the figure-regeneration kernels: one benchmark per
//! table/figure, each running a reduced-budget slice of the corresponding
//! experiment so regressions in simulator throughput are caught. The actual
//! paper-shaped outputs come from the `das-bench` binaries (`fig7a`…).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use das_bench::must_run as run_one;
use das_sim::config::{Design, SystemConfig};
use das_workloads::{mixes, spec};

fn quick_cfg() -> SystemConfig {
    let mut c = SystemConfig::scaled_by(64, 120_000);
    c.refresh = false;
    c
}

fn bench_single(c: &mut Criterion, id: &str, design: Design, bench: &str) {
    let cfg = quick_cfg();
    let wl = vec![spec::by_name(bench)];
    c.bench_function(id, |b| {
        b.iter(|| black_box(run_one(&cfg, design, &wl).ipc()))
    });
}

fn table1_config_build(c: &mut Criterion) {
    c.bench_function("table1/config_and_layout_build", |b| {
        b.iter(|| {
            let cfg = SystemConfig::paper_scaled();
            black_box(cfg.bank_layout().fast_rows())
        })
    });
}

fn table2_generators(c: &mut Criterion) {
    c.bench_function("table2/all_generators_1k_items", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for w in spec::spec2006() {
                let g = das_workloads::TraceGen::new(w.scaled(64), 1, 0);
                total += g.take(100).map(|i| i.insts()).sum::<u64>();
            }
            black_box(total)
        })
    });
}

fn fig7a_single_das(c: &mut Criterion) {
    bench_single(c, "fig7a/das_mcf_slice", Design::DasDram, "mcf");
}

fn fig7b_stats_run(c: &mut Criterion) {
    bench_single(c, "fig7b/stats_omnetpp_slice", Design::DasDram, "omnetpp");
}

fn fig7c_access_mix(c: &mut Criterion) {
    bench_single(c, "fig7c/mix_sas_soplex_slice", Design::SasDram, "soplex");
}

fn fig7def_multi(c: &mut Criterion) {
    let mut cfg = quick_cfg();
    cfg.inst_budget = 60_000;
    let wl: Vec<_> = mixes::mix("M5").iter().map(|w| w.scaled(2)).collect();
    c.bench_function("fig7def/multi_m5_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).ipc_sum()))
    });
}

fn fig8_threshold(c: &mut Criterion) {
    let cfg = quick_cfg().with_threshold(4);
    let wl = vec![spec::by_name("milc")];
    c.bench_function("fig8/threshold4_milc_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).promotions))
    });
}

fn fig9a_tcache(c: &mut Criterion) {
    let cfg = quick_cfg().with_tcache_bytes(32 << 10);
    let wl = vec![spec::by_name("mcf")];
    c.bench_function("fig9a/tcache32_mcf_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).translation.misses))
    });
}

fn fig9b_groups(c: &mut Criterion) {
    let cfg = quick_cfg().with_group_size(64);
    let wl = vec![spec::by_name("astar")];
    c.bench_function("fig9b/group64_astar_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).promotions))
    });
}

fn fig9cd_ratio(c: &mut Criterion) {
    let cfg = quick_cfg().with_fast_ratio(das_dram::geometry::FastRatio::new(1, 16));
    let wl = vec![spec::by_name("milc")];
    c.bench_function("fig9cd/ratio16_milc_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).fast_activation_ratio()))
    });
}

fn power_energy(c: &mut Criterion) {
    let cfg = quick_cfg();
    let wl = vec![spec::by_name("lbm")];
    c.bench_function("power/energy_lbm_slice", |b| {
        b.iter(|| black_box(run_one(&cfg, Design::DasDram, &wl).energy.total_nj()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = table1_config_build, table2_generators, fig7a_single_das, fig7b_stats_run,
        fig7c_access_mix, fig7def_multi, fig8_threshold, fig9a_tcache, fig9b_groups,
        fig9cd_ratio, power_energy
}
criterion_main!(benches);
