//! Pluggable online migration policies for the DAS-DRAM fast level.
//!
//! The source paper manages its asymmetric subarrays with a single fixed
//! rule: promote a row into the fast level once it collects
//! `promotion_threshold` slow-level hits. This crate makes that rule a
//! first-class, swappable component. A [`MigrationPolicy`] is a *pure*
//! decision function: the controller feeds it per-access and per-epoch
//! statistics ([`PolicyEvent`]) and it answers with a list of
//! [`PolicyAction`]s. Policies never touch simulator state, never consult
//! wall-clock time, and never use randomness, so every decision is
//! deterministic and table-testable in isolation.
//!
//! Five implementations ship here:
//!
//! - [`PaperFixed`] — the paper's promote-at-threshold rule, bit-for-bit
//!   (the simulator's default path is locked byte-identical to it).
//! - [`Hysteresis`] — raises the promotion bar by a fixed margin to damp
//!   promotion ping-pong, and asks for demotions when the fast level
//!   goes cold.
//! - [`CostAware`] — promotes only when the expected residency benefit
//!   (observed reuse × per-hit latency saved, weighted by
//!   coherence-sharing hotness) covers the backend's swap cost — 146.25 ns
//!   on DAS, 48.75 ns on LISA, 2×tRC on a CLR morph-exchange — so the
//!   same policy ranks differently across timing architectures.
//! - [`PhaseAdaptive`] — watches the epoch time-series for fast-hit-ratio
//!   discontinuities and resets the threshold toward the paper default
//!   when the workload changes phase.
//! - [`Feedback`] — a bang-bang controller that nudges the promotion
//!   threshold up or down each epoch to hold a target fast-hit ratio.
//!
//! Determinism rules (binding for every implementation):
//!
//! 1. `observe` output is a function of the constructor parameters and
//!    the exact sequence of events observed so far — nothing else.
//! 2. No interior mutability, I/O, time, or randomness.
//! 3. Floating-point inputs arrive pre-computed by the caller (swap cost,
//!    benefit); policies combine them with fixed arithmetic only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Lowest value [`clamp_threshold`] will return.
pub const THRESHOLD_MIN: u32 = 1;
/// Highest value [`clamp_threshold`] will return.
pub const THRESHOLD_MAX: u32 = 1024;

/// Clamp a signed threshold adjustment result into the legal
/// `[THRESHOLD_MIN, THRESHOLD_MAX]` band.
///
/// The promotion filter panics on a zero threshold, so every adjustment
/// a policy requests is squeezed through this before it reaches the
/// filter.
pub fn clamp_threshold(raw: i64) -> u32 {
    raw.clamp(THRESHOLD_MIN as i64, THRESHOLD_MAX as i64) as u32
}

/// Identifies one of the shipped policy implementations.
///
/// The `key` form (snake_case) is the canonical wire spelling used by
/// manifest `policy:` overrides, report JSON and Prometheus labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyKind {
    /// The paper's fixed promote-at-threshold rule.
    PaperFixed,
    /// Threshold plus a fixed margin, with cold-epoch demotion requests.
    Hysteresis,
    /// Promote only when expected benefit covers the backend swap cost.
    CostAware,
    /// Phase-change detection over the epoch time-series.
    PhaseAdaptive,
    /// Online threshold feedback toward a target fast-hit ratio.
    Feedback,
}

/// Every shipped policy kind, in ranking/report order.
pub const ALL_POLICIES: [PolicyKind; 5] = [
    PolicyKind::PaperFixed,
    PolicyKind::Hysteresis,
    PolicyKind::CostAware,
    PolicyKind::PhaseAdaptive,
    PolicyKind::Feedback,
];

impl PolicyKind {
    /// Canonical snake_case key (manifest token, JSON field, metric label).
    pub fn key(self) -> &'static str {
        match self {
            PolicyKind::PaperFixed => "paper_fixed",
            PolicyKind::Hysteresis => "hysteresis",
            PolicyKind::CostAware => "cost_aware",
            PolicyKind::PhaseAdaptive => "phase_adaptive",
            PolicyKind::Feedback => "feedback",
        }
    }

    /// Human-facing label for rendered tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::PaperFixed => "paper-fixed",
            PolicyKind::Hysteresis => "hysteresis",
            PolicyKind::CostAware => "cost-aware",
            PolicyKind::PhaseAdaptive => "phase-adaptive",
            PolicyKind::Feedback => "feedback",
        }
    }

    /// Parse the canonical key back into a kind.
    pub fn parse(s: &str) -> Option<Self> {
        ALL_POLICIES.iter().copied().find(|k| k.key() == s)
    }

    /// Construct the implementation with its shipped default parameters.
    pub fn build(self) -> Box<dyn MigrationPolicy> {
        match self {
            PolicyKind::PaperFixed => Box::new(PaperFixed),
            PolicyKind::Hysteresis => Box::new(Hysteresis::default()),
            PolicyKind::CostAware => Box::new(CostAware),
            PolicyKind::PhaseAdaptive => Box::new(PhaseAdaptive::default()),
            PolicyKind::Feedback => Box::new(Feedback::default()),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Per-access inputs for a promotion decision.
///
/// Built by the controller for every *slow-level* data access (fast hits
/// and row-buffer hits never reach the policy — they are already where
/// they should be).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessStats {
    /// Promotion-filter counter value for this row, including this
    /// access. With the paper's threshold-1 filter no counters are
    /// tracked and this is always 1.
    pub count: u32,
    /// The promotion threshold currently programmed into the filter.
    pub threshold: u32,
    /// Coherence sharing-induced accesses observed for this row (0 when
    /// the run has no coherent front end). Sharing-hot rows serve
    /// several cores per residency, multiplying the benefit of a
    /// promotion.
    pub shared_count: u32,
    /// Latency saved per future fast-level hit, in nanoseconds
    /// (slow-level activation cycle minus fast-level activation cycle).
    pub benefit_ns: f64,
    /// What one promotion costs on this backend, in nanoseconds:
    /// 146.25 ns for a DAS 3-step swap, 48.75 ns for a LISA RBM swap,
    /// 97.5 ns (2×tRC) for a CLR-DRAM morph-exchange.
    pub swap_cost_ns: f64,
    /// True when the row's migration group already has a swap in flight
    /// (a promotion granted now would be deferred by the controller).
    pub group_busy: bool,
}

/// Per-epoch inputs, delivered every policy epoch (a fixed number of
/// data accesses, so epoch boundaries are deterministic and independent
/// of telemetry configuration). Counters are deltas for the epoch just
/// ended, not cumulative totals.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Zero-based index of the epoch that just ended.
    pub epoch: u64,
    /// Data accesses in the epoch (fast + slow).
    pub accesses: u64,
    /// Fast-level hits in the epoch.
    pub fast_hits: u64,
    /// Slow-level hits in the epoch.
    pub slow_hits: u64,
    /// Promotions granted in the epoch.
    pub promotions: u64,
    /// The promotion threshold in force at the epoch boundary.
    pub threshold: u32,
}

impl EpochStats {
    /// Fraction of the epoch's accesses served by the fast level
    /// (0 when the epoch saw no accesses).
    pub fn fast_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.fast_hits as f64 / self.accesses as f64
        }
    }
}

/// One event fed to [`MigrationPolicy::observe`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyEvent {
    /// A slow-level data access that is a promotion candidate.
    Access(AccessStats),
    /// A policy epoch boundary.
    Epoch(EpochStats),
}

/// One decision emitted by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PolicyAction {
    /// Promote the accessed row into the fast level (swap with the
    /// replacer's victim).
    Promote,
    /// Advisory: the fast level holds rows colder than the slow-level
    /// traffic; the controller counts these as demotion pressure.
    Demote,
    /// Leave the row where it is.
    Hold,
    /// Adjust the promotion threshold by the given signed delta; the
    /// controller clamps the result with [`clamp_threshold`].
    AdjustThreshold(i32),
}

impl PolicyAction {
    /// Stable snake_case key for report JSON and Prometheus labels.
    pub fn key(&self) -> &'static str {
        match self {
            PolicyAction::Promote => "promote",
            PolicyAction::Demote => "demote",
            PolicyAction::Hold => "hold",
            PolicyAction::AdjustThreshold(_) => "adjust_threshold",
        }
    }
}

/// A pure, deterministic migration decision function.
///
/// See the crate docs for the determinism rules every implementation
/// must obey. `Send` is required because simulations run on the
/// harness's work-stealing pool; `Debug` because the owning controller
/// derives it.
pub trait MigrationPolicy: fmt::Debug + Send {
    /// Which shipped kind this is (used for stats and report labels).
    fn kind(&self) -> PolicyKind;

    /// Observe one event and decide.
    ///
    /// For [`PolicyEvent::Access`] the controller promotes iff the
    /// returned actions contain [`PolicyAction::Promote`]; other actions
    /// are applied (threshold adjustments) or tallied (demotion
    /// pressure). An empty vector is equivalent to `[Hold]` for
    /// accounting except that `Hold` is what gets tallied.
    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction>;

    /// Clone into a fresh box (controllers that own a policy are
    /// themselves `Clone`).
    fn clone_box(&self) -> Box<dyn MigrationPolicy>;
}

impl Clone for Box<dyn MigrationPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// PaperFixed
// ---------------------------------------------------------------------------

/// The source paper's rule: promote exactly when the filter count
/// reaches the threshold. Epochs are ignored. This is the behaviour the
/// simulator's policy-free default path implements, and
/// `crates/sim/tests/policy_identity.rs` locks the two byte-identical.
#[derive(Debug, Clone, Copy, Default)]
pub struct PaperFixed;

impl MigrationPolicy for PaperFixed {
    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PaperFixed
    }

    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction> {
        match event {
            PolicyEvent::Access(a) if a.count >= a.threshold => vec![PolicyAction::Promote],
            PolicyEvent::Access(_) => vec![PolicyAction::Hold],
            PolicyEvent::Epoch(_) => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Hysteresis
// ---------------------------------------------------------------------------

/// Promote at `threshold + margin` instead of `threshold`, so a row must
/// prove itself for `margin` extra hits before paying a swap; when an
/// epoch shows the fast level serving almost nothing, request demotion
/// pressure so stale residents stop blocking hot candidates.
#[derive(Debug, Clone, Copy)]
pub struct Hysteresis {
    /// Extra hits demanded beyond the programmed threshold.
    pub margin: u32,
    /// Fast-hit ratio below which an epoch is "cold" and a demotion is
    /// requested.
    pub cold_ratio: f64,
}

impl Default for Hysteresis {
    fn default() -> Self {
        Hysteresis {
            margin: 2,
            cold_ratio: 0.05,
        }
    }
}

impl MigrationPolicy for Hysteresis {
    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Hysteresis
    }

    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction> {
        match event {
            PolicyEvent::Access(a) => {
                if a.count >= a.threshold.saturating_add(self.margin) {
                    vec![PolicyAction::Promote]
                } else {
                    vec![PolicyAction::Hold]
                }
            }
            PolicyEvent::Epoch(e) => {
                if e.accesses > 0 && e.fast_ratio() < self.cold_ratio {
                    vec![PolicyAction::Demote]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// CostAware
// ---------------------------------------------------------------------------

/// Promote only when the expected residency benefit covers the swap
/// cost. The row's observed reuse (filter count) plus its
/// coherence-sharing hotness estimate how many future fast hits a
/// residency will earn; each earns `benefit_ns`. The swap itself costs
/// `swap_cost_ns`, which differs per backend — so on LISA (48.75 ns)
/// this policy promotes on far colder rows than on DAS (146.25 ns).
#[derive(Debug, Clone, Copy, Default)]
pub struct CostAware;

impl MigrationPolicy for CostAware {
    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::CostAware
    }

    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction> {
        match event {
            PolicyEvent::Access(a) => {
                let expected_hits = (a.count + a.shared_count) as f64;
                if expected_hits * a.benefit_ns >= a.swap_cost_ns {
                    vec![PolicyAction::Promote]
                } else {
                    vec![PolicyAction::Hold]
                }
            }
            PolicyEvent::Epoch(_) => Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// PhaseAdaptive
// ---------------------------------------------------------------------------

/// Detect phase changes in the epoch time-series (the same series
/// das-telemetry exports) as jumps in the fast-hit ratio. On a phase
/// change the old fast-level contents are suspect: request demotion
/// pressure and walk the threshold back toward the paper default so the
/// new phase's hot set promotes quickly.
#[derive(Debug, Clone, Copy)]
pub struct PhaseAdaptive {
    /// Absolute fast-ratio jump that counts as a phase change.
    pub jump: f64,
    /// Threshold the policy steers toward after a phase change.
    pub reset_threshold: u32,
    /// Fast ratio of the previous epoch, once one has been seen.
    prev_ratio: Option<f64>,
}

impl Default for PhaseAdaptive {
    fn default() -> Self {
        PhaseAdaptive {
            jump: 0.2,
            reset_threshold: 1,
            prev_ratio: None,
        }
    }
}

impl MigrationPolicy for PhaseAdaptive {
    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::PhaseAdaptive
    }

    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction> {
        match event {
            PolicyEvent::Access(a) => {
                if a.count >= a.threshold {
                    vec![PolicyAction::Promote]
                } else {
                    vec![PolicyAction::Hold]
                }
            }
            PolicyEvent::Epoch(e) => {
                let ratio = e.fast_ratio();
                let prev = self.prev_ratio.replace(ratio);
                match prev {
                    Some(p) if (ratio - p).abs() > self.jump => {
                        let delta = self.reset_threshold as i64 - e.threshold as i64;
                        let mut actions = vec![PolicyAction::Demote];
                        if delta != 0 {
                            actions.push(PolicyAction::AdjustThreshold(delta as i32));
                        }
                        actions
                    }
                    _ => Vec::new(),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Feedback
// ---------------------------------------------------------------------------

/// A bang-bang feedback controller on the promotion threshold: when the
/// observed fast-hit ratio falls below the target band, lower the
/// threshold (promote more eagerly); when it overshoots, raise it
/// (promotions are being wasted on rows the fast level already covers).
#[derive(Debug, Clone, Copy)]
pub struct Feedback {
    /// Fast-hit ratio the controller tries to hold.
    pub target: f64,
    /// Half-width of the dead band around the target.
    pub band: f64,
}

impl Default for Feedback {
    fn default() -> Self {
        Feedback {
            target: 0.5,
            band: 0.05,
        }
    }
}

impl MigrationPolicy for Feedback {
    fn clone_box(&self) -> Box<dyn MigrationPolicy> {
        Box::new(*self)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Feedback
    }

    fn observe(&mut self, event: &PolicyEvent) -> Vec<PolicyAction> {
        match event {
            PolicyEvent::Access(a) => {
                if a.count >= a.threshold {
                    vec![PolicyAction::Promote]
                } else {
                    vec![PolicyAction::Hold]
                }
            }
            PolicyEvent::Epoch(e) => {
                if e.accesses == 0 {
                    return Vec::new();
                }
                let ratio = e.fast_ratio();
                if ratio < self.target - self.band {
                    vec![PolicyAction::AdjustThreshold(-1)]
                } else if ratio > self.target + self.band {
                    vec![PolicyAction::AdjustThreshold(1)]
                } else {
                    Vec::new()
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn access(count: u32, threshold: u32) -> PolicyEvent {
        PolicyEvent::Access(AccessStats {
            count,
            threshold,
            shared_count: 0,
            benefit_ns: 22.5,
            swap_cost_ns: 146.25,
            group_busy: false,
        })
    }

    fn epoch(epoch: u64, fast: u64, slow: u64, threshold: u32) -> PolicyEvent {
        PolicyEvent::Epoch(EpochStats {
            epoch,
            accesses: fast + slow,
            fast_hits: fast,
            slow_hits: slow,
            promotions: 0,
            threshold,
        })
    }

    #[test]
    fn kinds_round_trip_through_keys() {
        for kind in ALL_POLICIES {
            assert_eq!(PolicyKind::parse(kind.key()), Some(kind));
            assert_eq!(kind.build().kind(), kind);
            assert_eq!(format!("{kind}"), kind.key());
        }
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }

    #[test]
    fn threshold_clamps_at_both_rails() {
        assert_eq!(clamp_threshold(0), THRESHOLD_MIN);
        assert_eq!(clamp_threshold(-17), THRESHOLD_MIN);
        assert_eq!(clamp_threshold(7), 7);
        assert_eq!(clamp_threshold(THRESHOLD_MAX as i64 + 1), THRESHOLD_MAX);
        assert_eq!(clamp_threshold(i64::MAX), THRESHOLD_MAX);
    }

    #[test]
    fn paper_fixed_matches_the_threshold_rule() {
        let mut p = PaperFixed;
        // (count, threshold) -> promote?
        let table = [
            (1, 1, true),
            (1, 2, false),
            (2, 2, true),
            (3, 2, true),
            (7, 8, false),
        ];
        for (count, threshold, promote) in table {
            let actions = p.observe(&access(count, threshold));
            assert_eq!(
                actions.contains(&PolicyAction::Promote),
                promote,
                "count={count} threshold={threshold}"
            );
        }
        assert!(p.observe(&epoch(0, 0, 100, 1)).is_empty());
    }

    #[test]
    fn hysteresis_demands_the_margin_and_demotes_cold_epochs() {
        let mut p = Hysteresis::default();
        assert_eq!(p.observe(&access(2, 2)), vec![PolicyAction::Hold]);
        assert_eq!(p.observe(&access(3, 2)), vec![PolicyAction::Hold]);
        assert_eq!(p.observe(&access(4, 2)), vec![PolicyAction::Promote]);
        // 2% fast ratio is below the 5% cold line -> demotion pressure.
        assert_eq!(p.observe(&epoch(0, 2, 98, 2)), vec![PolicyAction::Demote]);
        assert!(p.observe(&epoch(1, 50, 50, 2)).is_empty());
        // An empty epoch must not divide by zero or demote.
        assert!(p.observe(&epoch(2, 0, 0, 2)).is_empty());
    }

    #[test]
    fn cost_aware_ranks_backends_by_swap_cost() {
        let mut p = CostAware;
        let candidate = |count: u32, shared: u32, swap_cost_ns: f64| {
            PolicyEvent::Access(AccessStats {
                count,
                threshold: 1,
                shared_count: shared,
                benefit_ns: 22.5,
                swap_cost_ns,
                group_busy: false,
            })
        };
        // DAS swap (146.25 ns) needs ceil(146.25/22.5) = 7 expected hits.
        assert_eq!(
            p.observe(&candidate(6, 0, 146.25)),
            vec![PolicyAction::Hold]
        );
        assert_eq!(
            p.observe(&candidate(7, 0, 146.25)),
            vec![PolicyAction::Promote]
        );
        // LISA (48.75 ns) breaks even at 3 hits: same row, cheaper swap.
        assert_eq!(
            p.observe(&candidate(3, 0, 48.75)),
            vec![PolicyAction::Promote]
        );
        assert_eq!(p.observe(&candidate(2, 0, 48.75)), vec![PolicyAction::Hold]);
        // Sharing-hot rows cross the DAS bar with fewer private hits.
        assert_eq!(
            p.observe(&candidate(3, 4, 146.25)),
            vec![PolicyAction::Promote]
        );
    }

    #[test]
    fn phase_adaptive_fires_only_on_a_jump() {
        let mut p = PhaseAdaptive::default();
        // First epoch establishes the baseline; no decision possible.
        assert!(p.observe(&epoch(0, 60, 40, 4)).is_empty());
        // Small drift: no phase change.
        assert!(p.observe(&epoch(1, 55, 45, 4)).is_empty());
        // 55% -> 10% is a phase change: demote + steer threshold to 1.
        assert_eq!(
            p.observe(&epoch(2, 10, 90, 4)),
            vec![PolicyAction::Demote, PolicyAction::AdjustThreshold(-3)]
        );
        // Already at the reset threshold: a jump emits only the demote.
        let mut q = PhaseAdaptive::default();
        assert!(q.observe(&epoch(0, 90, 10, 1)).is_empty());
        assert_eq!(q.observe(&epoch(1, 10, 90, 1)), vec![PolicyAction::Demote]);
    }

    #[test]
    fn feedback_steers_toward_the_target_band() {
        let mut p = Feedback::default();
        assert_eq!(
            p.observe(&epoch(0, 10, 90, 4)),
            vec![PolicyAction::AdjustThreshold(-1)]
        );
        assert_eq!(
            p.observe(&epoch(1, 90, 10, 3)),
            vec![PolicyAction::AdjustThreshold(1)]
        );
        // Inside the dead band: hold the threshold.
        assert!(p.observe(&epoch(2, 50, 50, 4)).is_empty());
        // No accesses: no evidence, no adjustment.
        assert!(p.observe(&epoch(3, 0, 0, 4)).is_empty());
    }

    #[test]
    fn access_decisions_are_pure_and_repeatable() {
        for kind in ALL_POLICIES {
            let ev = access(3, 2);
            let mut a = kind.build();
            let mut b = kind.build();
            let first = a.observe(&ev);
            assert_eq!(first, b.observe(&ev), "{kind}: same-event divergence");
            assert_eq!(first, a.observe(&ev), "{kind}: replay divergence");
        }
    }
}
