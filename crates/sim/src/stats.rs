//! Run metrics: everything the paper's figures report.

use das_coherence::CoherenceStats;
use das_core::promotion::FilterStats;
use das_core::translation::TranslationStats;
use das_memctrl::request::ServiceClass;

/// Migration-policy results of a run with an adaptive policy installed
/// (`None` when the legacy fixed-threshold path decided promotions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyMetrics {
    /// Policy key (`paper_fixed`, `hysteresis`, ...).
    pub policy: String,
    /// Promote actions emitted.
    pub promotes: u64,
    /// Demote advisories emitted.
    pub demotes: u64,
    /// Hold decisions (observed accesses that did not promote).
    pub holds: u64,
    /// Threshold adjustments applied.
    pub threshold_adjusts: u64,
    /// Policy epochs elapsed.
    pub epochs: u64,
    /// Promotion-filter threshold at the end of the run.
    pub final_threshold: u32,
}

/// Coherence results of a run with the multi-core front end mounted
/// (`None` on every classic run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherenceMetrics {
    /// Protocol label ("MESI" / "Dragon").
    pub protocol: String,
    /// Cores in the coherent cluster.
    pub cores: usize,
    /// Event counters from the cluster.
    pub stats: CoherenceStats,
}

impl CoherenceMetrics {
    /// Private-cache hit rate of the cluster.
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.stats.l1_hits + self.stats.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.stats.l1_hits as f64 / total as f64
        }
    }

    /// Invalidations per bus transaction (invalidation-protocol pressure).
    pub fn invalidations_per_tx(&self) -> f64 {
        let tx = self.stats.bus_transactions();
        if tx == 0 {
            0.0
        } else {
            self.stats.invalidations as f64 / tx as f64
        }
    }
}

/// Distribution of serviced DRAM accesses over the Fig. 7c/7f categories.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessMix {
    /// Serviced from an already-open row buffer.
    pub row_buffer: u64,
    /// Required activating a fast-subarray row.
    pub fast: u64,
    /// Required activating a slow-subarray row.
    pub slow: u64,
}

impl AccessMix {
    /// Total accesses.
    pub fn total(&self) -> u64 {
        self.row_buffer + self.fast + self.slow
    }

    /// `(row-buffer, fast, slow)` fractions; zeros when empty.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.row_buffer as f64 / t as f64,
            self.fast as f64 / t as f64,
            self.slow as f64 / t as f64,
        )
    }

    /// Records one serviced access.
    pub fn record(&mut self, service: ServiceClass) {
        match service {
            ServiceClass::RowBufferHit => self.row_buffer += 1,
            ServiceClass::FastMiss => self.fast += 1,
            ServiceClass::SlowMiss => self.slow += 1,
        }
    }

    /// Component-wise difference (for warm-up subtraction).
    pub fn since(&self, snapshot: &AccessMix) -> AccessMix {
        AccessMix {
            row_buffer: self.row_buffer - snapshot.row_buffer,
            fast: self.fast - snapshot.fast,
            slow: self.slow - snapshot.slow,
        }
    }
}

/// Per-core results over the measured (post-warm-up) window.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreMetrics {
    /// Instructions retired in the window.
    pub insts: u64,
    /// CPU cycles elapsed in the window.
    pub cycles: u64,
    /// LLC misses attributed to this core in the window.
    pub llc_misses: u64,
}

impl CoreMetrics {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insts as f64 / self.cycles as f64
        }
    }

    /// Misses per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.insts as f64
        }
    }
}

/// First-order DRAM energy model (§7.7).
///
/// Event energies are derived from the bitline-length argument of
/// CHARM/TL-DRAM: activate+precharge energy scales with the number of cells
/// per bitline, so a 128-cell fast subarray costs roughly a quarter of a
/// 512-cell slow one. Values are nominal nanojoules per event for a x8
/// DDR3-1600 device — the *relative* comparison across designs is the
/// meaningful output.
#[derive(Debug, Clone, Copy)]
pub struct EnergyModel {
    /// ACT+PRE pair on a slow subarray (nJ).
    pub act_pre_slow_nj: f64,
    /// ACT+PRE pair on a fast subarray (nJ).
    pub act_pre_fast_nj: f64,
    /// One read burst (nJ).
    pub read_nj: f64,
    /// One write burst (nJ).
    pub write_nj: f64,
    /// One row swap: four row operations across fast+slow subarrays (nJ).
    pub swap_nj: f64,
    /// Background + refresh power per channel (mW).
    pub background_mw: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            act_pre_slow_nj: 1.9,
            act_pre_fast_nj: 0.55,
            read_nj: 1.2,
            write_nj: 1.3,
            // promotee ACT(slow)+restore + victim ACT(fast)+restore, twice.
            swap_nj: 2.0 * (1.9 + 0.55),
            background_mw: 55.0,
        }
    }
}

/// Energy totals for a run window.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnergyBreakdown {
    /// Activate/precharge energy (nJ).
    pub act_pre_nj: f64,
    /// Read/write burst energy (nJ).
    pub burst_nj: f64,
    /// Migration energy (nJ).
    pub migration_nj: f64,
    /// Background energy (nJ).
    pub background_nj: f64,
}

impl EnergyBreakdown {
    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.act_pre_nj + self.burst_nj + self.migration_nj + self.background_nj
    }
}

/// Everything measured in one run (post-warm-up window).
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Design label.
    pub design: String,
    /// Workload label (benchmark or mix name).
    pub workload: String,
    /// Per-core metrics.
    pub cores: Vec<CoreMetrics>,
    /// DRAM access-location distribution.
    pub access_mix: AccessMix,
    /// Row promotions (swaps) committed.
    pub promotions: u64,
    /// Promotions abandoned after being issued (fault recovery demoted the
    /// row instead of committing the swap; whole run, not warm-up-windowed).
    pub aborted_promotions: u64,
    /// Total DRAM data accesses (reads+writes serviced).
    pub memory_accesses: u64,
    /// Total LLC misses across cores.
    pub llc_misses: u64,
    /// Distinct rows touched by demand traffic, in bytes (episode
    /// footprint).
    pub footprint_bytes: u64,
    /// Translation-cache statistics (whole run).
    pub translation: TranslationStats,
    /// Promotion-filter statistics (whole run).
    pub filter: FilterStats,
    /// DRAM reads issued solely to fetch translation-table lines.
    pub table_fetch_reads: u64,
    /// Energy totals.
    pub energy: EnergyBreakdown,
    /// Wall simulated time of the measured window, in CPU cycles (max over
    /// cores).
    pub window_cycles: u64,
    /// Subarrays that serviced at least one data access (whole run).
    pub active_subarrays: usize,
    /// Total subarrays in the system.
    pub total_subarrays: usize,
    /// Fault-injection accounting (all zeros under `FaultPlan::none()`).
    pub faults: das_faults::FaultStats,
    /// Coherence metrics when the multi-core front end is mounted.
    pub coherence: Option<CoherenceMetrics>,
    /// Migration-policy metrics when an adaptive policy is installed.
    pub policy: Option<PolicyMetrics>,
}

impl RunMetrics {
    /// Sum of per-core IPCs (multi-programming throughput).
    pub fn ipc_sum(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc()).sum()
    }

    /// Single-core IPC (first core).
    pub fn ipc(&self) -> f64 {
        self.cores.first().map_or(0.0, |c| c.ipc())
    }

    /// Aggregate MPKI over all cores.
    pub fn mpki(&self) -> f64 {
        let insts: u64 = self.cores.iter().map(|c| c.insts).sum();
        if insts == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / insts as f64
        }
    }

    /// Promotions per kilo-miss (Fig. 7b/7e "PPKM").
    pub fn ppkm(&self) -> f64 {
        if self.llc_misses == 0 {
            0.0
        } else {
            self.promotions as f64 * 1000.0 / self.llc_misses as f64
        }
    }

    /// Promotions per memory access (Fig. 8c).
    pub fn promotions_per_access(&self) -> f64 {
        if self.memory_accesses == 0 {
            0.0
        } else {
            self.promotions as f64 / self.memory_accesses as f64
        }
    }

    /// Fraction of subarrays that could have been powered down for the
    /// whole episode (no data accesses touched them) — the §1 partial
    /// power-down opportunity that row migration creates by consolidating
    /// hot rows.
    pub fn idle_subarray_fraction(&self) -> f64 {
        if self.total_subarrays == 0 {
            0.0
        } else {
            1.0 - self.active_subarrays as f64 / self.total_subarrays as f64
        }
    }

    /// Fraction of row activations that hit the fast level (fast-level
    /// utilisation; row-buffer hits excluded).
    pub fn fast_activation_ratio(&self) -> f64 {
        let acts = self.access_mix.fast + self.access_mix.slow;
        if acts == 0 {
            0.0
        } else {
            self.access_mix.fast as f64 / acts as f64
        }
    }
}

/// Geometric mean of (1 + improvement) values, expressed back as an
/// improvement — the paper's "gmean" bars.
///
/// An improvement of −100 % or worse has no geometric-mean contribution
/// (`ln(1+x)` is −∞ or undefined); each factor is floored at a tiny
/// positive value so one degenerate run drags the gmean toward −100 %
/// instead of poisoning the whole aggregate with NaN.
pub fn gmean_improvement(improvements: &[f64]) -> f64 {
    const FLOOR: f64 = 1e-9; // factor floor: ≈ −100% improvement
    if improvements.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = improvements
        .iter()
        .map(|&x| (1.0 + x).max(FLOOR).ln())
        .sum();
    (log_sum / improvements.len() as f64).exp() - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mix_fractions_sum_to_one() {
        let mut m = AccessMix::default();
        m.record(ServiceClass::RowBufferHit);
        m.record(ServiceClass::FastMiss);
        m.record(ServiceClass::SlowMiss);
        m.record(ServiceClass::SlowMiss);
        let (rb, f, s) = m.fractions();
        assert!((rb + f + s - 1.0).abs() < 1e-12);
        assert_eq!(m.total(), 4);
        assert!((s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn access_mix_since_subtracts() {
        let snap = AccessMix {
            row_buffer: 1,
            fast: 2,
            slow: 3,
        };
        let end = AccessMix {
            row_buffer: 10,
            fast: 12,
            slow: 13,
        };
        assert_eq!(
            end.since(&snap),
            AccessMix {
                row_buffer: 9,
                fast: 10,
                slow: 10
            }
        );
    }

    #[test]
    fn core_metrics_derived_quantities() {
        let c = CoreMetrics {
            insts: 4_000,
            cycles: 2_000,
            llc_misses: 80,
        };
        assert!((c.ipc() - 2.0).abs() < 1e-12);
        assert!((c.mpki() - 20.0).abs() < 1e-12);
        assert_eq!(CoreMetrics::default().ipc(), 0.0);
    }

    #[test]
    fn run_metrics_ratios() {
        let m = RunMetrics {
            cores: vec![CoreMetrics {
                insts: 1000,
                cycles: 1000,
                llc_misses: 50,
            }],
            promotions: 5,
            llc_misses: 50,
            memory_accesses: 100,
            access_mix: AccessMix {
                row_buffer: 40,
                fast: 45,
                slow: 15,
            },
            ..RunMetrics::default()
        };
        assert!((m.ppkm() - 100.0).abs() < 1e-12);
        assert!((m.promotions_per_access() - 0.05).abs() < 1e-12);
        assert!((m.fast_activation_ratio() - 0.75).abs() < 1e-12);
        assert!((m.mpki() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn gmean_of_equal_values_is_that_value() {
        assert!((gmean_improvement(&[0.1, 0.1, 0.1]) - 0.1).abs() < 1e-12);
        assert_eq!(gmean_improvement(&[]), 0.0);
        // Mixed signs behave sensibly.
        let g = gmean_improvement(&[0.2, -0.05]);
        assert!(g > -0.05 && g < 0.2);
    }

    #[test]
    fn gmean_stays_finite_for_total_regressions() {
        // A −100 % (or worse) improvement used to produce ln(0) = −∞ or
        // ln(negative) = NaN and poison the aggregate.
        for xs in [&[-1.0][..], &[-1.5][..], &[0.3, -1.0, 0.1][..]] {
            let g = gmean_improvement(xs);
            assert!(g.is_finite(), "gmean of {xs:?} must be finite, got {g}");
            assert!(g >= -1.0, "gmean of {xs:?} below −100%: {g}");
        }
        // One wrecked run drags the mean down but leaves it well-defined.
        let g = gmean_improvement(&[0.5, -1.0]);
        assert!(g < 0.0 && g.is_finite());
    }

    #[test]
    fn energy_totals_add_up() {
        let e = EnergyBreakdown {
            act_pre_nj: 1.0,
            burst_nj: 2.0,
            migration_nj: 3.0,
            background_nj: 4.0,
        };
        assert!((e.total_nj() - 10.0).abs() < 1e-12);
        let m = EnergyModel::default();
        assert!(m.act_pre_fast_nj < m.act_pre_slow_nj);
    }
}
