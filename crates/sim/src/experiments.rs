//! Experiment runners: profiling pre-pass, single runs, design suites and
//! the improvement metric used across all figures.

use std::collections::HashMap;

use das_cache::hierarchy::{CacheHierarchy, CacheLevel};
use das_cpu::trace::TraceItem;
use das_dram::geometry::GlobalRowId;
use das_workloads::config::WorkloadConfig;
use das_workloads::gen::TraceGen;

use das_telemetry::{StageReport, TelemetryReport};

use crate::config::{Design, SystemConfig};
use crate::stats::RunMetrics;
use crate::system::{recorded_workload_stubs, AddressMap, SimError, System};

/// Runs the profiling pre-pass used by the static designs (SAS/CHARM):
/// the same traces are pushed through a fresh cache hierarchy and LLC-miss
/// row access counts are collected (§7: "each workload is profiled first").
///
/// Workloads must already be scaled.
pub fn profile_row_counts(
    cfg: &SystemConfig,
    workloads: &[WorkloadConfig],
) -> HashMap<GlobalRowId, u64> {
    let addr_map = AddressMap::new(cfg, workloads).profile_view();
    let mut hierarchy = CacheHierarchy::new(cfg.hierarchy, workloads.len());
    // Profiling observes a *different run* of the program (SPEC profiles
    // are gathered on train inputs; the measured episode runs ref): phase
    // positions will not line up with the measured episode, which is what
    // limits static placement in the paper.
    let profile_seed = cfg.seed ^ 0x5052_4F46; // "PROF"
    let mut gens: Vec<TraceGen> = workloads
        .iter()
        .map(|w| TraceGen::new(w.clone(), profile_seed, 0))
        .collect();
    let mut counts = HashMap::new();
    let mut insts = vec![0u64; workloads.len()];
    let line_mask = !(cfg.hierarchy.line_bytes - 1);
    // Round-robin across cores so shared-LLC contention shapes the profile
    // as it would in the timed run.
    let horizon = cfg.inst_budget * cfg.profile_multiplier.max(1);
    let mut live = workloads.len();
    while live > 0 {
        live = 0;
        for (i, g) in gens.iter_mut().enumerate() {
            if insts[i] >= horizon {
                continue;
            }
            live += 1;
            let Some(item) = g.next() else {
                insts[i] = horizon;
                continue;
            };
            insts[i] += item.insts();
            let addr = addr_map.map(i, item.addr);
            let out = hierarchy.access(i, addr, item.is_write);
            if out.level == CacheLevel::Memory {
                let line = addr & line_mask;
                let coord = cfg.geometry.decode(line);
                *counts
                    .entry(cfg.geometry.global_row_id(coord.bank, coord.row))
                    .or_insert(0u64) += 1;
                hierarchy.fill_from_memory(i, line, item.is_write);
            }
        }
    }
    counts
}

/// Runs one full-system simulation of `design` over `workloads` (given at
/// full scale; footprints are scaled by `cfg.scale`).
///
/// # Errors
///
/// Returns the [`SimError`] if the run could not finish (deadlock, runaway
/// event count, stalled controller, unrecoverable consistency violation).
pub fn run_one(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
) -> Result<RunMetrics, SimError> {
    run_one_with_profile(cfg, design, workloads, None)
}

/// Like [`run_one`], but accepts a precomputed profiling pre-pass (as
/// returned by [`profile_row_counts`] over the **scaled** workload set
/// under the same configuration). The experiment harness memoizes the
/// pre-pass across jobs this way: every static-design run over the same
/// (workload set, seed, scale) shares one profile instead of recomputing
/// it. `None` falls back to computing the profile in-line when the design
/// needs one, which is exactly [`run_one`].
///
/// # Errors
///
/// Returns the [`SimError`] if the run could not finish.
pub fn run_one_with_profile(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
    profile: Option<&HashMap<GlobalRowId, u64>>,
) -> Result<RunMetrics, SimError> {
    let scaled: Vec<WorkloadConfig> = workloads
        .iter()
        .map(|w| w.scaled(cfg.scale as u64))
        .collect();
    let computed;
    let profile = match profile {
        Some(p) => design.needs_profile().then_some(p),
        None if design.needs_profile() => {
            computed = profile_row_counts(cfg, &scaled);
            Some(&computed)
        }
        None => None,
    };
    System::new(cfg.clone(), design, &scaled, profile).run()
}

/// Like [`run_one`], but also returns the telemetry report (`None` when
/// `cfg.telemetry` is off). On a failed run the telemetry collected up to
/// the failure is still returned.
pub fn run_one_instrumented(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
) -> (Result<RunMetrics, SimError>, Option<TelemetryReport>) {
    run_one_instrumented_with_profile(cfg, design, workloads, None)
}

/// Like [`run_one_instrumented`] with an optional precomputed profiling
/// pre-pass (see [`run_one_with_profile`] for the contract).
pub fn run_one_instrumented_with_profile(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
    profile: Option<&HashMap<GlobalRowId, u64>>,
) -> (Result<RunMetrics, SimError>, Option<TelemetryReport>) {
    let scaled: Vec<WorkloadConfig> = workloads
        .iter()
        .map(|w| w.scaled(cfg.scale as u64))
        .collect();
    let computed;
    let profile = match profile {
        Some(p) => design.needs_profile().then_some(p),
        None if design.needs_profile() => {
            computed = profile_row_counts(cfg, &scaled);
            Some(&computed)
        }
        None => None,
    };
    System::new(cfg.clone(), design, &scaled, profile).run_instrumented()
}

/// Like [`run_one_instrumented`], but also returns the stage-profiler
/// report (`None` when `cfg.stage_profile` is off). The stage report
/// measures host wall-clock time — it is perf-diagnostic only and never
/// alters or accompanies the run's simulated results.
pub fn run_one_profiled(
    cfg: &SystemConfig,
    design: Design,
    workloads: &[WorkloadConfig],
) -> (
    Result<RunMetrics, SimError>,
    Option<TelemetryReport>,
    Option<StageReport>,
) {
    let scaled: Vec<WorkloadConfig> = workloads
        .iter()
        .map(|w| w.scaled(cfg.scale as u64))
        .collect();
    let computed;
    let profile = if design.needs_profile() {
        computed = profile_row_counts(cfg, &scaled);
        Some(&computed)
    } else {
        None
    };
    System::new(cfg.clone(), design, &scaled, profile).run_profiled()
}

/// Runs one simulation over **recorded traces** (one per core), e.g. loaded
/// with [`das_workloads::trace_file::read_trace`]. For the static designs
/// the profile is derived by replaying the same traces through a fresh
/// cache hierarchy (an oracle profile: recorded traces *are* the measured
/// execution).
///
/// # Errors
///
/// Returns the [`SimError`] if the run could not finish.
pub fn run_recorded(
    cfg: &SystemConfig,
    design: Design,
    traces: Vec<Vec<TraceItem>>,
) -> Result<RunMetrics, SimError> {
    let profile = if design.needs_profile() {
        // Trace addresses are workload-local and go through the same
        // physical placement as the timed run (no reallocation: a recorded
        // trace profiles its own execution, so static placement is oracle
        // here — document accordingly when comparing).
        let mut dcfg = cfg.clone();
        design.apply_overrides(&mut dcfg);
        let stubs = recorded_workload_stubs(&dcfg, &traces);
        let addr_map = AddressMap::new(&dcfg, &stubs);
        let mut hierarchy = CacheHierarchy::new(dcfg.hierarchy, traces.len());
        let mut counts = HashMap::new();
        let line_mask = !(dcfg.hierarchy.line_bytes - 1);
        for (core, t) in traces.iter().enumerate() {
            for item in t {
                let addr = addr_map.map(core, item.addr);
                let out = hierarchy.access(core, addr, item.is_write);
                if out.level == CacheLevel::Memory {
                    let line = addr & line_mask;
                    let coord = dcfg.geometry.decode(line);
                    *counts
                        .entry(dcfg.geometry.global_row_id(coord.bank, coord.row))
                        .or_insert(0u64) += 1;
                    hierarchy.fill_from_memory(core, line, item.is_write);
                }
            }
        }
        Some(counts)
    } else {
        None
    };
    System::from_recorded(cfg.clone(), design, traces, profile.as_ref()).run()
}

/// Runs one full-system simulation with the coherent multi-core front end
/// mounted: `spec.cores` trace-fed cores with private L1s kept coherent by
/// `protocol` over a snooping bus, sharing the LLC → memctrl → DRAM path.
/// The workload streams are generated from `spec` (shared-footprint
/// producer/consumer, lock, or frontier traffic); `spec` should already be
/// scaled (see [`das_workloads::shared::SharedSpec::scaled`]).
///
/// # Errors
///
/// Returns the [`SimError`] if the run could not finish.
///
/// # Panics
///
/// Panics if `design` needs a profiling pre-pass (static designs are not
/// supported under the coherent front end).
pub fn run_one_coherent(
    cfg: &SystemConfig,
    design: Design,
    spec: &das_workloads::shared::SharedSpec,
    protocol: das_coherence::ProtocolKind,
) -> Result<RunMetrics, SimError> {
    let scaled = spec.scaled(cfg.scale as u64);
    System::with_coherence(cfg.clone(), design, &scaled, protocol).run()
}

/// Like [`run_one_coherent`], but also returns the telemetry report
/// (`None` when `cfg.telemetry` is off).
///
/// # Panics
///
/// Panics if `design` needs a profiling pre-pass.
pub fn run_one_coherent_instrumented(
    cfg: &SystemConfig,
    design: Design,
    spec: &das_workloads::shared::SharedSpec,
    protocol: das_coherence::ProtocolKind,
) -> (Result<RunMetrics, SimError>, Option<TelemetryReport>) {
    let scaled = spec.scaled(cfg.scale as u64);
    System::with_coherence(cfg.clone(), design, &scaled, protocol).run_instrumented()
}

/// Like [`run_one_coherent`], but additionally returns the stage-profiler
/// report (`None` when `cfg.stage_profile` is off) — the bench-mode entry
/// point.
///
/// # Panics
///
/// Panics if `design` needs a profiling pre-pass.
pub fn run_one_coherent_profiled(
    cfg: &SystemConfig,
    design: Design,
    spec: &das_workloads::shared::SharedSpec,
    protocol: das_coherence::ProtocolKind,
) -> (
    Result<RunMetrics, SimError>,
    Option<TelemetryReport>,
    Option<StageReport>,
) {
    let scaled = spec.scaled(cfg.scale as u64);
    System::with_coherence(cfg.clone(), design, &scaled, protocol).run_profiled()
}

/// Runs `designs` over the same workload set, returning results in order.
///
/// # Errors
///
/// Returns the first [`SimError`] encountered.
pub fn run_suite(
    cfg: &SystemConfig,
    designs: &[Design],
    workloads: &[WorkloadConfig],
) -> Result<Vec<RunMetrics>, SimError> {
    designs
        .iter()
        .map(|&d| run_one(cfg, d, workloads))
        .collect()
}

/// The paper's performance-improvement metric against the Std-DRAM
/// baseline: for single-programming the IPC ratio; for multi-programming
/// the mean per-core speedup (weighted speedup normalised by core count).
///
/// # Panics
///
/// Panics if the two runs have different core counts.
pub fn improvement(run: &RunMetrics, base: &RunMetrics) -> f64 {
    assert_eq!(run.cores.len(), base.cores.len(), "mismatched systems");
    let speedups: Vec<f64> = run
        .cores
        .iter()
        .zip(&base.cores)
        .map(|(r, b)| {
            let bi = b.ipc();
            if bi == 0.0 {
                1.0
            } else {
                r.ipc() / bi
            }
        })
        .collect();
    speedups.iter().sum::<f64>() / speedups.len() as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_workloads::spec;

    fn quick_cfg() -> SystemConfig {
        SystemConfig::test_small()
    }

    fn libq() -> Vec<WorkloadConfig> {
        vec![spec::by_name("libquantum")]
    }

    #[test]
    fn standard_run_completes_and_reports() {
        let m = run_one(&quick_cfg(), Design::Standard, &libq()).unwrap();
        assert!(m.ipc() > 0.0, "IPC must be positive: {m:?}");
        assert!(m.llc_misses > 0, "libquantum must miss");
        assert_eq!(m.access_mix.fast, 0, "standard DRAM has no fast level");
        assert_eq!(m.promotions, 0);
        assert!(m.footprint_bytes > 0);
    }

    #[test]
    fn fs_dram_beats_standard() {
        let cfg = quick_cfg();
        let base = run_one(&cfg, Design::Standard, &libq()).unwrap();
        let fs = run_one(&cfg, Design::FsDram, &libq()).unwrap();
        let imp = improvement(&fs, &base);
        assert!(imp > 0.0, "FS-DRAM must improve on Std-DRAM: {imp}");
        assert_eq!(fs.access_mix.slow, 0, "FS-DRAM has no slow level");
    }

    #[test]
    fn das_promotes_and_lands_between_std_and_fs() {
        // mcf: phase-drifting pointer chase — promotions keep happening
        // after warm-up, unlike a stream that settles into the fast level.
        let cfg = quick_cfg();
        let wl = vec![spec::by_name("mcf")];
        let base = run_one(&cfg, Design::Standard, &wl).unwrap();
        let das = run_one(&cfg, Design::DasDram, &wl).unwrap();
        let fs = run_one(&cfg, Design::FsDram, &wl).unwrap();
        assert!(das.promotions > 0, "DAS must migrate rows");
        let das_imp = improvement(&das, &base);
        let fs_imp = improvement(&fs, &base);
        assert!(das_imp > 0.0, "DAS must beat Std: {das_imp}");
        assert!(
            das_imp <= fs_imp + 0.02,
            "DAS cannot beat FS by more than noise"
        );
    }

    #[test]
    fn precomputed_profile_matches_inline_computation() {
        let cfg = quick_cfg();
        let scaled: Vec<_> = libq().iter().map(|w| w.scaled(cfg.scale as u64)).collect();
        let profile = profile_row_counts(&cfg, &scaled);
        let inline = run_one(&cfg, Design::SasDram, &libq()).unwrap();
        let shared = run_one_with_profile(&cfg, Design::SasDram, &libq(), Some(&profile)).unwrap();
        assert_eq!(inline.promotions, shared.promotions);
        assert_eq!(inline.memory_accesses, shared.memory_accesses);
        assert_eq!(inline.llc_misses, shared.llc_misses);
        assert_eq!(inline.window_cycles, shared.window_cycles);
        assert_eq!(inline.access_mix, shared.access_mix);
    }

    #[test]
    fn tiny_event_budget_is_reported_as_runaway() {
        let cfg = quick_cfg().with_event_budget(1_000);
        match run_one(&cfg, Design::Standard, &libq()) {
            Err(SimError::EventBudgetExceeded { events, .. }) => assert!(events >= 1_000),
            other => panic!("expected EventBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn profile_counts_cover_the_footprint() {
        let cfg = quick_cfg();
        let scaled: Vec<_> = libq().iter().map(|w| w.scaled(cfg.scale as u64)).collect();
        let counts = profile_row_counts(&cfg, &scaled);
        assert!(!counts.is_empty());
        let total: u64 = counts.values().sum();
        assert!(total > 100, "plenty of misses profiled: {total}");
    }

    #[test]
    fn coherent_run_completes_and_reports_coherence() {
        use das_coherence::ProtocolKind;
        use das_workloads::shared::{SharedKind, SharedSpec, Sharing};
        // Lock: a hot shared set small enough to live in the private L1s,
        // so write contention actually invalidates peers (Ring's streaming
        // sweep evicts lines before the consumer reaches them).
        let cfg = quick_cfg();
        let spec = SharedSpec::new(SharedKind::Lock, 2, Sharing::Mid);
        let m = run_one_coherent(&cfg, Design::Standard, &spec, ProtocolKind::Mesi).unwrap();
        assert_eq!(m.cores.len(), 2);
        assert!(m.ipc_sum() > 0.0, "coherent run must retire: {m:?}");
        let coh = m.coherence.as_ref().expect("coherence metrics present");
        assert_eq!(coh.protocol, "MESI");
        assert_eq!(coh.cores, 2);
        assert!(coh.stats.bus_transactions() > 0, "bus must see traffic");
        assert!(
            coh.stats.invalidations > 0,
            "lock contention must invalidate: {:?}",
            coh.stats
        );
        assert!(
            coh.stats.interventions > 0,
            "dirty hot lines must be supplied cache-to-cache: {:?}",
            coh.stats
        );
        assert!(coh.stats.l1_hits > 0 && coh.stats.l1_misses > 0);
    }

    #[test]
    fn coherent_run_is_deterministic() {
        use das_coherence::ProtocolKind;
        use das_workloads::shared::{SharedKind, SharedSpec, Sharing};
        let cfg = quick_cfg();
        let spec = SharedSpec::new(SharedKind::Lock, 2, Sharing::High);
        let a = run_one_coherent(&cfg, Design::DasDram, &spec, ProtocolKind::Mesi).unwrap();
        let b = run_one_coherent(&cfg, Design::DasDram, &spec, ProtocolKind::Mesi).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "rebuild must replay");
    }

    #[test]
    fn dragon_updates_instead_of_invalidating() {
        use das_coherence::ProtocolKind;
        use das_workloads::shared::{SharedKind, SharedSpec, Sharing};
        let cfg = quick_cfg();
        let spec = SharedSpec::new(SharedKind::Lock, 2, Sharing::Mid);
        let m = run_one_coherent(&cfg, Design::Standard, &spec, ProtocolKind::Dragon).unwrap();
        let coh = m.coherence.as_ref().unwrap();
        assert_eq!(coh.protocol, "Dragon");
        assert_eq!(coh.stats.invalidations, 0, "Dragon never invalidates");
        assert!(coh.stats.bus_upd > 0, "Dragon updates on shared writes");
    }

    #[test]
    fn classic_runs_carry_no_coherence_metrics() {
        let m = run_one(&quick_cfg(), Design::Standard, &libq()).unwrap();
        assert!(m.coherence.is_none(), "single-core path must be untouched");
    }

    #[test]
    fn sas_uses_fast_level_without_promotions() {
        let cfg = quick_cfg();
        let sas = run_one(&cfg, Design::SasDram, &libq()).unwrap();
        assert_eq!(sas.promotions, 0, "static design never migrates");
        assert!(sas.access_mix.fast > 0, "profiled placement must hit fast");
    }
}
