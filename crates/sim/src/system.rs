//! The full-system simulator: cores + cache hierarchy + management +
//! per-channel memory controllers, driven by a global event queue.
//!
//! Event kinds:
//! * `CoreIssue` — a core's memory reference enters the cache hierarchy;
//! * `CtrlEnqueue` — a translated DRAM request reaches its channel's
//!   controller (delayed by translation-fetch latency when applicable);
//! * `CtrlWake` — a controller should try to issue commands.
//!
//! Cache lookups are resolved synchronously (their latency added to the
//! completion time); only DRAM-bound traffic is event-scheduled. The
//! translation flow of §5.2 is modelled faithfully: a translation-cache hit
//! costs nothing (overlapped with the LLC lookup); a miss costs an LLC
//! access for the table line; an LLC miss on the table line costs a real
//! DRAM read that precedes the data access.

use core::fmt;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};

use das_cache::hierarchy::{CacheHierarchy, CacheLevel};
use das_cache::mshr::Mshr;
use das_coherence::{ClusterConfig, CoherentCluster, ProtocolKind};
use das_core::inclusive::{FillRequest, InclusiveManager};
use das_core::management::{ConsistencyError, DasManager, SwapRequest};
use das_core::translation::TranslationSource;
use das_cpu::core::{Core, MemRequest};
use das_cpu::trace::TraceItem;
pub use das_cpu::TraceSource;
use das_dram::channel::ChannelDevice;
use das_dram::geometry::{BankCoord, GlobalRowId, MemCoord};
use das_dram::tick::Tick;
use das_faults::{FaultInjector, FaultSite};
use das_memctrl::controller::{ControllerError, MemoryController};
use das_memctrl::request::{Completion, Request, ServiceClass, SwapOp};
use das_telemetry::{
    EpochCounters, LatencyClass, Stage, StageProfiler, StageReport, Telemetry, TelemetryReport,
};
use das_workloads::config::WorkloadConfig;
use das_workloads::gen::TraceGen;
use das_workloads::shared::{SharedGen, SharedSpec};

use crate::config::{Design, SystemConfig};
use crate::stats::{AccessMix, CoreMetrics, EnergyBreakdown, EnergyModel, RunMetrics};

/// Capacity of the controller's recently-translated-row registers (a few
/// per bank, matching the set of rows plausibly open or in the queues).
const RECENT_TRANSLATIONS: usize = 64;

/// Default event budget after which a run is declared runaway (the
/// `SystemConfig::event_budget` default; long harness sweeps and stress
/// manifests can raise it per run without recompiling).
pub const DEFAULT_EVENT_BUDGET: u64 = 50_000_000;

/// Default number of same-tick controller wakes tolerated before the
/// watchdog declares the event loop stalled (the
/// `SystemConfig::watchdog_same_tick_wakes` default).
pub const DEFAULT_WATCHDOG_SAME_TICK_WAKES: u32 = 10_000;

/// A fatal simulation error. [`System::run`] returns this instead of
/// panicking so callers (experiment sweeps, the CLI, fault-injection
/// harnesses) can report and continue.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The event queue drained while cores were still unfinished.
    Deadlock {
        /// Simulated time of the stall.
        clock: Tick,
        /// Queued demand requests per channel.
        queued: Vec<usize>,
        /// Queued migrations per channel.
        swaps: Vec<usize>,
        /// Overflowed (not-yet-accepted) requests per channel.
        overflow: Vec<usize>,
    },
    /// The event budget was exceeded — a runaway simulation.
    EventBudgetExceeded {
        /// Simulated time when the budget ran out.
        clock: Tick,
        /// Events processed.
        events: u64,
        /// Queued demand requests per channel.
        queued: Vec<usize>,
        /// Queued migrations per channel.
        swaps: Vec<usize>,
    },
    /// The watchdog saw a same-tick wake storm: a controller was woken
    /// repeatedly at one tick without the clock advancing.
    Stalled {
        /// Simulated time of the stall.
        clock: Tick,
        /// Channel whose controller is stuck.
        channel: usize,
        /// Demand requests queued on that controller.
        queued: usize,
        /// Migrations queued on that controller.
        swaps: usize,
        /// Same-tick wakes observed.
        wakes: u32,
    },
    /// A completion arrived for a request id the simulator does not know.
    UnknownCompletion {
        /// Completion kind ("read", "write" or "swap").
        kind: &'static str,
        /// The unknown request id or swap token.
        id: u64,
    },
    /// A completion's recorded context does not match its kind (e.g. a
    /// write context attached to a read completion).
    ContextMismatch {
        /// Completion kind that found the wrong context.
        kind: &'static str,
        /// The request id or swap token involved.
        id: u64,
    },
    /// The MSHR rejected a registration despite being sized above any
    /// legal concurrency.
    MshrSaturated {
        /// Line address that could not be registered.
        line: u64,
    },
    /// The memory controller reported an error.
    Controller(ControllerError),
    /// The periodic consistency check failed and a translation-cache
    /// rebuild could not repair it.
    BrokenInvariant(ConsistencyError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock {
                clock,
                queued,
                swaps,
                overflow,
            } => write!(
                f,
                "event queue drained with unfinished cores at {clock} \
                 (queued {queued:?}, swaps {swaps:?}, overflow {overflow:?})"
            ),
            SimError::EventBudgetExceeded {
                clock,
                events,
                queued,
                swaps,
            } => write!(
                f,
                "event budget exceeded after {events} events at {clock} \
                 (queued {queued:?}, swaps {swaps:?})"
            ),
            SimError::Stalled {
                clock,
                channel,
                queued,
                swaps,
                wakes,
            } => write!(
                f,
                "controller {channel} stalled at {clock}: {wakes} same-tick wakes \
                 ({queued} requests, {swaps} swaps queued)"
            ),
            SimError::UnknownCompletion { kind, id } => {
                write!(f, "unknown {kind} completion for id {id}")
            }
            SimError::ContextMismatch { kind, id } => {
                write!(f, "mismatched context on {kind} completion for id {id}")
            }
            SimError::MshrSaturated { line } => {
                write!(f, "MSHR rejected line {line:#x}")
            }
            SimError::Controller(e) => write!(f, "controller error: {e}"),
            SimError::BrokenInvariant(e) => {
                write!(f, "unrecoverable consistency violation: {e}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ControllerError> for SimError {
    fn from(e: ControllerError) -> Self {
        SimError::Controller(e)
    }
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::large_enum_variant)]
enum EventKind {
    CoreIssue {
        core: usize,
        id: u64,
        addr: u64,
        is_write: bool,
    },
    CtrlEnqueue {
        req: Request,
    },
    CtrlWake {
        ch: usize,
    },
    /// A migration whose hand-off to the controller was delayed (fault-
    /// injected latency spike).
    SwapEnqueue {
        op: SwapOp,
    },
}

#[derive(Debug, Clone, Copy)]
struct Ev {
    at: Tick,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
enum ReqCtx {
    /// A demand line fill (DRAM read, possibly on behalf of a store miss).
    DemandRead {
        line: u64,
        bank: BankCoord,
        logical_row: u32,
        fill_core: usize,
    },
    /// A posted write-back.
    DemandWrite { bank: BankCoord, logical_row: u32 },
    /// A translation-table line fetch; on completion the deferred demand
    /// request (if any) is released.
    TableRead { then: Option<Request> },
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    core: usize,
    id: u64,
    is_load: bool,
}

/// The management flavour in force: the paper's adopted exclusive scheme
/// or the §5 inclusive alternative.
#[derive(Debug)]
enum Management {
    Exclusive(DasManager),
    Inclusive(InclusiveManager),
}

#[derive(Debug, Clone, Copy)]
enum PendingMigration {
    Swap(SwapRequest),
    Fill(FillRequest),
}

/// Reconstructs the controller-level migration op for a pending migration —
/// used to re-enqueue a swap whose data movement step failed.
fn swap_op_for(req: &PendingMigration, token: u64, arrival: Tick) -> SwapOp {
    match req {
        PendingMigration::Swap(swap) => SwapOp {
            token,
            bank: swap.bank,
            phys_a: swap.promotee_phys,
            phys_b: swap.victim_phys,
            kind: das_dram::command::MigrationKind::Swap,
            arrival,
        },
        PendingMigration::Fill(fill) => SwapOp {
            token,
            bank: fill.bank,
            phys_a: fill.promotee_phys,
            phys_b: fill.slot_phys,
            kind: fill.kind,
            arrival,
        },
    }
}

impl Management {
    fn peek(&self, bank: BankCoord, row: u32) -> (u32, bool) {
        match self {
            Management::Exclusive(m) => m.peek(bank, row),
            Management::Inclusive(m) => m.peek(bank, row),
        }
    }

    fn translate(&mut self, bank: BankCoord, row: u32) -> das_core::management::Translation {
        match self {
            Management::Exclusive(m) => m.translate(bank, row),
            Management::Inclusive(m) => m.translate(bank, row),
        }
    }

    fn promotions(&self) -> u64 {
        match self {
            Management::Exclusive(m) => m.stats().promotions,
            Management::Inclusive(m) => m.stats().promotions,
        }
    }

    fn translation_stats(&self) -> das_core::translation::TranslationStats {
        match self {
            Management::Exclusive(m) => m.translation_stats(),
            Management::Inclusive(m) => m.translation_stats(),
        }
    }

    fn filter_stats(&self) -> das_core::promotion::FilterStats {
        match self {
            Management::Exclusive(m) => m.filter_stats(),
            Management::Inclusive(m) => m.filter_stats(),
        }
    }

    fn stats(&self) -> das_core::management::ManagementStats {
        match self {
            Management::Exclusive(m) => m.stats(),
            Management::Inclusive(m) => m.stats(),
        }
    }

    /// The installed migration policy's kind, action tallies and current
    /// threshold (exclusive management only; `None` when no policy runs).
    fn policy_stats(
        &self,
    ) -> Option<(
        das_policy::PolicyKind,
        das_core::management::PolicyStats,
        u32,
    )> {
        match self {
            Management::Exclusive(m) => m.policy_stats(),
            Management::Inclusive(_) => None,
        }
    }
}

/// Maps the controller's service classification onto telemetry's
/// dependency-free mirror.
fn latency_class(s: ServiceClass) -> LatencyClass {
    match s {
        ServiceClass::RowBufferHit => LatencyClass::RowBufferHit,
        ServiceClass::FastMiss => LatencyClass::FastMiss,
        ServiceClass::SlowMiss => LatencyClass::SlowMiss,
    }
}

/// OS-like physical page placement: each workload's row-granular pages are
/// scattered pseudo-randomly across the *whole* usable row space, with
/// per-workload interleaving keeping co-scheduled workloads disjoint.
///
/// This mirrors how a real OS allocates physical frames: a workload's hot
/// pages end up spread over all banks and migration groups, so (as in the
/// paper) the entire fast level — 1/8 of total memory, not 1/8 of the
/// workload's own footprint — is available to hold its hot rows.
#[derive(Debug, Clone)]
pub struct AddressMap {
    row_bytes: u64,
    slots_per_core: u64,
    ncores: u64,
    muls: Vec<u64>,
    alt_muls: Vec<u64>,
    /// When set, a `realloc_fraction` of pages see the alternate mapping —
    /// the profile run's view (see [`AddressMap::profile_view`]).
    profile_view: bool,
    realloc_fraction: f64,
}

impl AddressMap {
    /// Builds the placement for `workloads` under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if any workload's footprint exceeds its share of the usable
    /// row space (everything below the reserved translation-table region).
    pub fn new(cfg: &SystemConfig, workloads: &[WorkloadConfig]) -> Self {
        let row = cfg.geometry.row_bytes as u64;
        let usable_rows = (cfg.geometry.total_bytes() - cfg.geometry.total_rows()) / row;
        Self::with_usable_rows(cfg, workloads, usable_rows)
    }

    /// Like [`AddressMap::new`] with an explicit usable-row budget — the
    /// inclusive design loses the duplicated fast-level capacity (§5's
    /// argument for the exclusive scheme).
    ///
    /// # Panics
    ///
    /// Panics if any workload's footprint exceeds its share.
    pub fn with_usable_rows(
        cfg: &SystemConfig,
        workloads: &[WorkloadConfig],
        usable_rows: u64,
    ) -> Self {
        let row = cfg.geometry.row_bytes as u64;
        let n = workloads.len() as u64;
        let slots_per_core = usable_rows / n;
        for w in workloads {
            assert!(
                w.footprint_rows() <= slots_per_core,
                "{}'s footprint ({} rows) exceeds its share of memory ({} rows)",
                w.name,
                w.footprint_rows(),
                slots_per_core
            );
        }
        let coprime = |start: u64| {
            let mut m = start | 1;
            while gcd(m, slots_per_core) != 1 {
                m += 2;
            }
            m
        };
        let muls = (0..workloads.len() as u64)
            .map(|i| coprime((slots_per_core as f64 * 0.618_033_9) as u64 + 2 * i + 1))
            .collect();
        let alt_muls = (0..workloads.len() as u64)
            .map(|i| coprime((slots_per_core as f64 * 0.414_213_5) as u64 + 2 * i + 1))
            .collect();
        AddressMap {
            row_bytes: row,
            slots_per_core,
            ncores: n,
            muls,
            alt_muls,
            profile_view: false,
            realloc_fraction: cfg.profile_realloc,
        }
    }

    /// The mapping as seen by the *profiling* execution: the paper's static
    /// designs profile a separate run of the workload, and the OS does not
    /// reproduce physical page placement across executions — a
    /// `profile_realloc` fraction of pages land in different frames. Static
    /// placement by physical row is only correct for pages whose frames
    /// happened to survive.
    pub fn profile_view(&self) -> AddressMap {
        AddressMap {
            profile_view: true,
            ..self.clone()
        }
    }

    /// Maps a workload-local address of `core` to its physical address.
    pub fn map(&self, core: usize, addr: u64) -> u64 {
        let vrow = addr / self.row_bytes;
        let off = addr % self.row_bytes;
        debug_assert!(
            vrow < self.slots_per_core,
            "address outside footprint share"
        );
        let v = vrow % self.slots_per_core;
        let reallocated = self.profile_view
            && (mix64(v ^ 0x72_6561_6c6c_6f63) as f64 / u64::MAX as f64) < self.realloc_fraction;
        let mul = if reallocated {
            self.alt_muls[core]
        } else {
            self.muls[core]
        };
        let slot = v.wrapping_mul(mul) % self.slots_per_core;
        (slot * self.ncores + core as u64) * self.row_bytes + off
    }
}

/// SplitMix64 finaliser.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds placeholder workload descriptors for recorded traces: only the
/// name and footprint (from the maximum address) matter to the placement
/// machinery.
pub(crate) fn recorded_workload_stubs(
    cfg: &SystemConfig,
    traces: &[Vec<TraceItem>],
) -> Vec<WorkloadConfig> {
    assert!(!traces.is_empty(), "need at least one trace");
    traces
        .iter()
        .enumerate()
        .map(|(i, t)| {
            assert!(!t.is_empty(), "trace {i} is empty");
            let max_addr = t.iter().map(|r| r.addr).max().unwrap_or(0);
            let row = cfg.geometry.row_bytes as u64;
            WorkloadConfig {
                name: format!("trace-{i}"),
                mpki: 1.0,
                footprint_bytes: (max_addr / row + 1) * row,
                write_frac: 0.0,
                dep_frac: 0.0,
                pattern: das_workloads::config::Pattern::stream(),
                run_lines: 1,
                phase_insts: None,
            }
        })
        .collect()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// The coherent multi-core front end, mounted by
/// [`System::with_coherence`]: per-core private L1s kept coherent over a
/// snooping bus, between the trace-fed cores and the shared LLC. Always
/// `None` on the classic constructors, whose behaviour is bit-identical to
/// before the front end existed (locked by report tests and the CI golden
/// journals).
struct CoherentFrontEnd {
    cluster: CoherentCluster,
    /// Bytes of the shared prefix of each core's virtual footprint: those
    /// addresses map through core 0's placement for every core.
    shared_bytes: u64,
    /// Logical `(bank, row)` coordinates of the shared region — DAS
    /// promotions of these rows count as sharing-induced.
    shared_rows: HashSet<(BankCoord, u32)>,
}

/// One full-system simulation of `workloads` (one per core) on `design`.
pub struct System {
    cfg: SystemConfig,
    design: Design,
    addr_map: AddressMap,
    cores: Vec<Core>,
    traces: Vec<TraceSource>,
    hierarchy: CacheHierarchy,
    ctrls: Vec<MemoryController>,
    manager: Option<Management>,
    mshr: Mshr<Waiter>,
    /// Coherent front end; `None` for every classic (single-address-space)
    /// run.
    coherence: Option<CoherentFrontEnd>,
    /// Per-row sharing-induced access heat, aggregated from the cluster's
    /// per-line counts as accesses happen; feeds the migration policy's
    /// `shared_count` input. Always empty without a coherent front end.
    shared_row_heat: HashMap<(BankCoord, u32), u32>,
    line_dirty: HashMap<u64, bool>,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    clock: Tick,
    next_req_id: u64,
    ctxs: HashMap<u64, ReqCtx>,
    overflow: Vec<VecDeque<Request>>,
    next_wake: Vec<Tick>,
    pending_swaps: HashMap<u64, PendingMigration>,
    next_swap_token: u64,
    /// Deterministic fault injector (inert under `FaultPlan::none()`).
    injector: FaultInjector,
    /// Failed attempts per in-flight swap token.
    swap_attempts: HashMap<u64, u32>,
    /// Re-read count per in-flight retention-flip retry request id.
    read_retries: HashMap<u64, u32>,
    /// Recently translated rows (the controller holds a handful of live row
    /// translations — one per open row — so a burst of misses to one row
    /// pays the translation lookup once).
    recent_translations: VecDeque<(BankCoord, u32)>,
    // --- statistics ---
    workload_label: String,
    access_mix: AccessMix,
    memory_accesses: u64,
    table_fetch_reads: u64,
    core_misses: Vec<u64>,
    footprint_rows: HashSet<u64>,
    /// Activations per (flat bank, subarray) — drives the §1 partial
    /// power-down analysis (idle subarrays could be powered down).
    subarray_activity: HashMap<(usize, usize), u64>,
    warm_core: Vec<Option<(u64, u64, u64)>>, // (insts, retire_ticks, misses)
    warm_global: Option<(AccessMix, u64, u64, u64)>, // (mix, promos, accesses, table reads)
    events_processed: u64,
    same_tick_wakes: u32,
    // --- telemetry ---
    /// The telemetry sink; every hook is a single-branch no-op when off.
    tel: Telemetry,
    /// Simulated time of the next epoch boundary (`Tick::MAX` when off, so
    /// the run-loop check is one always-false comparison).
    next_epoch_at: Tick,
    /// Epoch length in ticks.
    epoch_ticks: Tick,
    /// Epoch boundaries sampled so far.
    epochs_sampled: u64,
    // --- perf profiling ---
    /// Wall-clock stage profiler; every probe is a single-branch no-op when
    /// off, and its output never enters [`RunMetrics`] or the telemetry
    /// report, so an off-profiler run is bit-identical (locked by test).
    prof: StageProfiler,
}

impl System {
    /// Builds the system. `profile` carries per-row access counts for the
    /// static designs (SAS/CHARM); it must be `Some` exactly when
    /// [`Design::needs_profile`] holds.
    ///
    /// # Panics
    ///
    /// Panics on configuration mismatches (wrong workload count, missing or
    /// spurious profile, footprints exceeding memory).
    pub fn new(
        cfg: SystemConfig,
        design: Design,
        workloads: &[WorkloadConfig],
        profile: Option<&HashMap<GlobalRowId, u64>>,
    ) -> Self {
        let traces: Vec<TraceSource> = workloads
            .iter()
            .map(|w| TraceSource::streaming(TraceGen::new(w.clone(), cfg.seed, 0)))
            .collect();
        Self::assemble(cfg, design, workloads, traces, profile)
    }

    /// Builds the system over explicit per-core sources paired with the
    /// *real* workload descriptors — the store-served replay path. Using
    /// the same scaled [`WorkloadConfig`]s as [`System::new`] keeps the
    /// address map, footprints and labels identical, so a source that
    /// yields the generator's exact item sequence produces a bit-identical
    /// run (locked by tests in `das-harness`).
    ///
    /// # Panics
    ///
    /// Panics on the same configuration mismatches as [`System::new`], or
    /// if `sources.len() != workloads.len()`.
    pub fn with_sources(
        cfg: SystemConfig,
        design: Design,
        workloads: &[WorkloadConfig],
        sources: Vec<TraceSource>,
        profile: Option<&HashMap<GlobalRowId, u64>>,
    ) -> Self {
        assert_eq!(
            sources.len(),
            workloads.len(),
            "one source per workload required"
        );
        Self::assemble(cfg, design, workloads, sources, profile)
    }

    /// Builds the system over pre-recorded reference streams (one per
    /// core), e.g. parsed with [`das_workloads::trace_file::read_trace`].
    /// Footprints are inferred from the traces' maximum addresses.
    ///
    /// # Panics
    ///
    /// Panics if `design` needs a profile (use
    /// [`crate::experiments::run_recorded`], which derives one) without one
    /// being supplied, or if a trace is empty.
    pub fn from_recorded(
        cfg: SystemConfig,
        design: Design,
        traces: Vec<Vec<TraceItem>>,
        profile: Option<&HashMap<GlobalRowId, u64>>,
    ) -> Self {
        let workloads = recorded_workload_stubs(&cfg, &traces);
        let sources = traces.into_iter().map(TraceSource::recorded).collect();
        Self::assemble(cfg, design, &workloads, sources, profile)
    }

    /// Builds a coherent multi-core system: `spec.cores` cores running the
    /// shared-footprint workload, their private L1s kept coherent by
    /// `protocol` over a snooping bus, in front of the shared LLC and the
    /// `design` memory system.
    ///
    /// The first [`SharedSpec::shared_bytes`] of every core's virtual
    /// footprint map through core 0's placement, so all cores name the
    /// same physical rows there; the private remainder keeps the per-core
    /// scatter. The mapping stays injective because the shared prefix only
    /// ever occupies core-0 row slots.
    ///
    /// # Panics
    ///
    /// Panics if `design` needs a profile (the coherent front end only
    /// runs dynamic designs: a per-core profile of a shared footprint is
    /// ill-defined), or on the usual configuration mismatches.
    pub fn with_coherence(
        cfg: SystemConfig,
        design: Design,
        spec: &SharedSpec,
        protocol: ProtocolKind,
    ) -> Self {
        assert!(
            !design.needs_profile(),
            "coherent runs support dynamic designs only"
        );
        let workloads = spec.workload_configs();
        let sources: Vec<TraceSource> = (0..spec.cores)
            .map(|c| TraceSource::streaming(SharedGen::new(spec.clone(), cfg.seed, c)))
            .collect();
        let mut sys = Self::assemble(cfg, design, &workloads, sources, None);
        let h = sys.cfg.hierarchy;
        let cluster = CoherentCluster::new(
            protocol,
            ClusterConfig {
                cores: spec.cores,
                l1_lines: (h.l1_bytes / h.line_bytes) as usize,
                line_bytes: h.line_bytes,
                hit_cycles: h.l1_latency,
            },
        );
        let shared_bytes = spec.shared_bytes();
        let row_bytes = sys.cfg.geometry.row_bytes as u64;
        let shared_rows = (0..shared_bytes / row_bytes)
            .map(|vrow| {
                let coord = sys
                    .cfg
                    .geometry
                    .decode(sys.addr_map.map(0, vrow * row_bytes));
                (coord.bank, coord.row)
            })
            .collect();
        sys.coherence = Some(CoherentFrontEnd {
            cluster,
            shared_bytes,
            shared_rows,
        });
        // `ring x4 @mid` reads better than `ring/c0+ring/c1+…`.
        sys.workload_label = spec.name();
        sys
    }

    fn assemble(
        cfg: SystemConfig,
        design: Design,
        workloads: &[WorkloadConfig],
        traces: Vec<TraceSource>,
        profile: Option<&HashMap<GlobalRowId, u64>>,
    ) -> Self {
        assert!(!workloads.is_empty(), "need at least one workload");
        assert_eq!(
            design.needs_profile(),
            profile.is_some(),
            "static designs need a profile; dynamic designs must not get one"
        );
        let mut cfg = cfg;
        design.apply_overrides(&mut cfg);
        let n = workloads.len();
        let addr_map = if design.is_inclusive() {
            // Fast rows duplicate slow rows: the OS-visible space shrinks
            // to the slow capacity (minus the reserved table region).
            let layout = cfg.bank_layout();
            let usable = layout.slow_rows() as u64 * cfg.geometry.total_banks() as u64
                - cfg
                    .geometry
                    .total_rows()
                    .div_ceil(cfg.geometry.row_bytes as u64);
            AddressMap::with_usable_rows(&cfg, workloads, usable)
        } else if let Some(per_bank) = design.usable_rows_per_bank(&cfg.bank_layout()) {
            // Capacity-trading backends (CLR-DRAM): morphed rows couple
            // with neighbours whose storage is lost, shrinking the
            // OS-visible space without inclusive-cache management.
            let usable = per_bank * cfg.geometry.total_banks() as u64;
            AddressMap::with_usable_rows(&cfg, workloads, usable)
        } else {
            AddressMap::new(&cfg, workloads)
        };
        let cores = (0..n)
            .map(|_| Core::new(cfg.core, cfg.inst_budget))
            .collect();
        let hierarchy = CacheHierarchy::new(cfg.hierarchy, n);
        let timing = cfg.timing_override.unwrap_or_else(|| design.timing());
        let layout = cfg.bank_layout();
        let ctrls: Vec<MemoryController> = (0..cfg.geometry.channels)
            .map(|ch| {
                let dev = ChannelDevice::with_salp(
                    ch,
                    cfg.geometry.ranks_per_channel,
                    cfg.geometry.banks_per_rank,
                    layout.clone(),
                    timing,
                    cfg.refresh,
                    cfg.salp,
                );
                MemoryController::new(cfg.controller, dev)
            })
            .collect();
        let manager = if design.is_inclusive() {
            let mcfg = cfg.scaled_management(false);
            Some(Management::Inclusive(InclusiveManager::new(
                mcfg,
                cfg.geometry.clone(),
                cfg.bank_layout(),
            )))
        } else if design.is_asymmetric() {
            let mcfg = cfg.scaled_management(design.needs_profile());
            let mut m = DasManager::new(mcfg, cfg.geometry.clone(), layout);
            if let Some(counts) = profile {
                m.static_place(counts);
            }
            if let Some(kind) = cfg.policy.filter(|_| !design.needs_profile()) {
                // Promotion economics from this backend's timing set: the
                // per-hit benefit is the activation-cycle gap, the swap
                // cost is what the backend charges for one promotion
                // (146.25 ns DAS, 48.75 ns LISA, 97.5 ns CLR morph).
                m.install_policy(
                    kind.build(),
                    das_core::management::PolicyCosts {
                        benefit_ns: timing.slow.trc().as_ns() - timing.fast.trc().as_ns(),
                        swap_cost_ns: timing.swap.as_ns(),
                    },
                );
            }
            Some(Management::Exclusive(m))
        } else {
            None
        };
        let channels = cfg.geometry.channels as usize;
        let label = workloads
            .iter()
            .map(|w| w.name.as_str())
            .collect::<Vec<_>>()
            .join("+");
        let injector = FaultInjector::new(cfg.faults.clone());
        let ticks_per_us = das_dram::tick::TICKS_PER_NS as f64 * 1_000.0;
        let tel = Telemetry::new(cfg.telemetry, channels, ticks_per_us);
        let epoch_ticks = cfg.cycles_to_ticks(cfg.telemetry.epoch_cycles);
        let next_epoch_at = if cfg.telemetry.enabled() {
            epoch_ticks
        } else {
            Tick::MAX
        };
        let prof = StageProfiler::new(cfg.stage_profile);
        System {
            cfg,
            design,
            addr_map,
            cores,
            traces,
            hierarchy,
            ctrls,
            manager,
            mshr: Mshr::new(1 << 16),
            coherence: None,
            shared_row_heat: HashMap::new(),
            line_dirty: HashMap::new(),
            events: BinaryHeap::new(),
            seq: 0,
            clock: Tick::ZERO,
            next_req_id: 0,
            ctxs: HashMap::new(),
            overflow: (0..channels).map(|_| VecDeque::new()).collect(),
            next_wake: vec![Tick::MAX; channels],
            pending_swaps: HashMap::new(),
            next_swap_token: 0,
            injector,
            swap_attempts: HashMap::new(),
            read_retries: HashMap::new(),
            recent_translations: VecDeque::with_capacity(RECENT_TRANSLATIONS + 1),
            workload_label: label,
            access_mix: AccessMix::default(),
            memory_accesses: 0,
            table_fetch_reads: 0,
            core_misses: vec![0; n],
            footprint_rows: HashSet::new(),
            subarray_activity: HashMap::new(),
            warm_core: vec![None; n],
            warm_global: None,
            events_processed: 0,
            same_tick_wakes: 0,
            prof,
            tel,
            next_epoch_at,
            epoch_ticks,
            epochs_sampled: 0,
        }
    }

    fn push(&mut self, at: Tick, kind: EventKind) {
        let at = at.max(self.clock);
        self.seq += 1;
        self.events.push(Reverse(Ev {
            at,
            seq: self.seq,
            kind,
        }));
    }

    /// Runs the simulation to completion and returns the measured metrics,
    /// or a [`SimError`] describing why the run could not finish (deadlock,
    /// runaway event count, wake storm, or an unrecoverable consistency
    /// violation). The simulation never panics on these paths.
    pub fn run(self) -> Result<RunMetrics, SimError> {
        self.run_instrumented().0
    }

    /// Like [`System::run`], but also returns the telemetry report (`None`
    /// when the sink is off — see
    /// [`crate::config::SystemConfig::with_telemetry`]). On a failed run the
    /// telemetry collected up to the failure is still returned: the event
    /// trace of a wedged controller is exactly what one wants to look at.
    pub fn run_instrumented(self) -> (Result<RunMetrics, SimError>, Option<TelemetryReport>) {
        let (metrics, tel, _) = self.run_profiled();
        (metrics, tel)
    }

    /// Like [`System::run_instrumented`], but also returns the stage
    /// profiler's report (`None` when profiling is off — see
    /// [`crate::config::SystemConfig::with_stage_profile`]). The stage
    /// report measures *host* wall-clock time and is perf-diagnostic only;
    /// it never feeds back into [`RunMetrics`] or the telemetry report.
    pub fn run_profiled(
        mut self,
    ) -> (
        Result<RunMetrics, SimError>,
        Option<TelemetryReport>,
        Option<StageReport>,
    ) {
        let outcome = self.run_loop();
        let tel = std::mem::replace(&mut self.tel, Telemetry::off());
        let report = tel.into_report();
        let prof = std::mem::replace(&mut self.prof, StageProfiler::off());
        let stages = prof.into_report();
        match outcome {
            Ok(()) => (Ok(self.finalize()), report, stages),
            Err(e) => (Err(e), report, stages),
        }
    }

    fn run_loop(&mut self) -> Result<(), SimError> {
        for i in 0..self.cores.len() {
            self.dispatch_core(i);
        }
        while !self.all_finished() {
            let Some(Reverse(ev)) = self.events.pop() else {
                return Err(SimError::Deadlock {
                    clock: self.clock,
                    queued: self.ctrls.iter().map(|c| c.queued()).collect(),
                    swaps: self.ctrls.iter().map(|c| c.queued_swaps()).collect(),
                    overflow: self.overflow.iter().map(|o| o.len()).collect(),
                });
            };
            self.events_processed += 1;
            // Watchdog: a controller woken over and over at one tick is
            // wedged; surface its queue state instead of spinning forever.
            if ev.at == self.clock && matches!(ev.kind, EventKind::CtrlWake { .. }) {
                self.same_tick_wakes += 1;
                if self.same_tick_wakes > self.cfg.watchdog_same_tick_wakes {
                    let EventKind::CtrlWake { ch } = ev.kind else {
                        unreachable!()
                    };
                    self.tel
                        .instant("watchdog_fire", "recovery", self.clock.raw());
                    return Err(SimError::Stalled {
                        clock: self.clock,
                        channel: ch,
                        queued: self.ctrls[ch].queued(),
                        swaps: self.ctrls[ch].queued_swaps(),
                        wakes: self.same_tick_wakes,
                    });
                }
            } else {
                self.same_tick_wakes = 0;
            }
            if self.events_processed >= self.cfg.event_budget {
                return Err(SimError::EventBudgetExceeded {
                    clock: self.clock,
                    events: self.events_processed,
                    queued: self.ctrls.iter().map(|c| c.queued()).collect(),
                    swaps: self.ctrls.iter().map(|c| c.queued_swaps()).collect(),
                });
            }
            self.clock = ev.at;
            // Epoch sampling is tick-driven: boundaries land at fixed
            // simulated times, so the series is deterministic. Off-sink
            // runs pay one always-false comparison (`next_epoch_at` is
            // `Tick::MAX`).
            while self.clock >= self.next_epoch_at {
                self.sample_epoch();
            }
            match ev.kind {
                EventKind::CoreIssue {
                    core,
                    id,
                    addr,
                    is_write,
                } => self.handle_core_issue(core, id, addr, is_write)?,
                EventKind::CtrlEnqueue { req } => self.handle_enqueue(req)?,
                EventKind::CtrlWake { ch } => self.handle_wake(ch)?,
                EventKind::SwapEnqueue { op } => {
                    let ch = op.bank.channel as usize;
                    self.ctrls[ch].enqueue_swap(op);
                    self.schedule_wake(ch);
                }
            }
            let cadence = self.cfg.invariant_check_events;
            if cadence > 0 && self.events_processed.is_multiple_of(cadence) {
                self.check_management_invariants()?;
            }
        }
        Ok(())
    }

    /// Snapshots the cumulative run counters at the epoch boundary the
    /// clock just crossed and feeds them to the telemetry sink (which
    /// differences them into per-epoch deltas).
    fn sample_epoch(&mut self) {
        let boundary = self.next_epoch_at;
        self.next_epoch_at = boundary + self.epoch_ticks;
        self.epochs_sampled += 1;
        let mut reads = 0u64;
        let mut writes = 0u64;
        let mut read_queue = 0u64;
        let mut write_queue = 0u64;
        for c in &self.ctrls {
            let s = c.stats();
            reads += s.reads;
            writes += s.writes;
            read_queue += c.queued_reads() as u64;
            write_queue += c.queued_writes() as u64;
        }
        for o in &self.overflow {
            for r in o {
                if r.is_write {
                    write_queue += 1;
                } else {
                    read_queue += 1;
                }
            }
        }
        let mstats = self
            .manager
            .as_ref()
            .map(Management::stats)
            .unwrap_or_default();
        let fstats = self.injector.stats();
        let cum = EpochCounters {
            cycle: self.epochs_sampled * self.tel.epoch_cycles(),
            insts: self.cores.iter().map(Core::insts_retired).sum(),
            reads,
            writes,
            row_hits: self.access_mix.row_buffer,
            fast_acts: self.access_mix.fast,
            slow_acts: self.access_mix.slow,
            promotions: mstats.promotions,
            aborted: mstats.aborted,
            faults_injected: fstats.total_injected(),
            tcache_rebuilds: fstats.tcache_rebuilds,
            read_queue,
            write_queue,
        };
        self.tel.epoch_boundary(boundary.raw(), cum);
    }

    /// Runs the management-layer consistency checker. Translation-cache
    /// damage is repaired by rebuilding from the authoritative per-group
    /// state; a violation that survives the rebuild (or any permutation
    /// break) is unrecoverable.
    fn check_management_invariants(&mut self) -> Result<(), SimError> {
        let Some(Management::Exclusive(m)) = self.manager.as_mut() else {
            return Ok(());
        };
        match m.check_invariants() {
            Ok(()) => {
                self.injector.note_invariant_pass();
                Ok(())
            }
            Err(e @ ConsistencyError::BrokenPermutation { .. }) => {
                Err(SimError::BrokenInvariant(e))
            }
            Err(_) => {
                m.rebuild_translation_cache();
                self.injector.note_tcache_rebuild();
                self.tel
                    .instant("tcache_rebuild", "recovery", self.clock.raw());
                self.recent_translations.clear();
                match m.check_invariants() {
                    Ok(()) => {
                        self.injector.note_recovered(FaultSite::TranslationCorrupt);
                        self.injector.note_invariant_pass();
                        Ok(())
                    }
                    Err(e) => Err(SimError::BrokenInvariant(e)),
                }
            }
        }
    }

    fn all_finished(&self) -> bool {
        self.cores.iter().all(|c| c.is_finished())
    }

    // ---- core side -------------------------------------------------------

    fn dispatch_core(&mut self, i: usize) {
        let mut out: Vec<MemRequest> = Vec::new();
        let probe = self.prof.begin(Stage::TraceDecode);
        self.cores[i].dispatch_from(&mut self.traces[i], &mut out);
        self.prof.end(Stage::TraceDecode, probe);
        self.schedule_core_requests(i, out);
        self.check_warm(i);
    }

    fn complete_core(&mut self, i: usize, id: u64, at: Tick) {
        let mut out: Vec<MemRequest> = Vec::new();
        let probe = self.prof.begin(Stage::RobRetire);
        self.cores[i].complete(id, at.raw(), &mut out);
        self.prof.end(Stage::RobRetire, probe);
        if probe.is_some() {
            self.prof
                .note_depth(Stage::RobRetire, self.cores[i].in_flight() as u64);
        }
        self.schedule_core_requests(i, out);
        self.check_warm(i);
        self.dispatch_core(i);
    }

    fn schedule_core_requests(&mut self, i: usize, reqs: Vec<MemRequest>) {
        for r in reqs {
            self.push(
                Tick::new(r.issue_at),
                EventKind::CoreIssue {
                    core: i,
                    id: r.id,
                    addr: r.addr,
                    is_write: r.is_write,
                },
            );
        }
    }

    fn check_warm(&mut self, i: usize) {
        if self.warm_core[i].is_none() && self.cores[i].insts_retired() >= self.cfg.warmup_insts() {
            self.warm_core[i] = Some((
                self.cores[i].insts_retired(),
                self.cores[i].finish_time(),
                self.core_misses[i],
            ));
            if self.warm_core.iter().all(Option::is_some) && self.warm_global.is_none() {
                self.warm_global = Some((
                    self.access_mix,
                    self.manager.as_ref().map_or(0, |m| m.promotions()),
                    self.memory_accesses,
                    self.table_fetch_reads,
                ));
            }
        }
    }

    fn handle_core_issue(
        &mut self,
        core: usize,
        id: u64,
        addr: u64,
        is_write: bool,
    ) -> Result<(), SimError> {
        if self.coherence.is_some() {
            return self.handle_coherent_issue(core, id, addr, is_write);
        }
        let t = self.clock;
        // OS-style physical placement: scatter the workload-local address
        // over the whole usable row space.
        let addr = self.addr_map.map(core, addr);
        self.footprint_rows
            .insert(addr / self.cfg.geometry.row_bytes as u64);
        let outcome = self.hierarchy.access(core, addr, is_write);
        let wbs = outcome.dram_writebacks.clone();
        for wb in wbs {
            self.issue_writeback(wb);
        }
        if outcome.level != CacheLevel::Memory {
            let done = t + self.cfg.cycles_to_ticks(outcome.lookup_cycles);
            if !is_write {
                self.complete_core(core, id, done);
            }
            return Ok(());
        }
        // LLC miss.
        self.core_misses[core] += 1;
        let line = addr & !(self.cfg.hierarchy.line_bytes - 1);
        let waiter = Waiter {
            core,
            id,
            is_load: !is_write,
        };
        let dirty = self.line_dirty.entry(line).or_insert(false);
        *dirty |= is_write;
        match self.mshr.register(line, waiter) {
            Some(true) => {
                let t_found = t + self.cfg.cycles_to_ticks(outcome.lookup_cycles);
                self.start_demand_read(line, t_found, core);
            }
            Some(false) => {} // merged
            None => return Err(SimError::MshrSaturated { line }),
        }
        Ok(())
    }

    /// The coherent front end's issue path: the access first resolves in
    /// the private-cache cluster, which may satisfy it entirely (hit, or a
    /// peer's cache-to-cache transfer); only cluster misses that no peer
    /// supplies consult the shared LLC and, below it, DRAM.
    fn handle_coherent_issue(
        &mut self,
        core: usize,
        id: u64,
        vaddr: u64,
        is_write: bool,
    ) -> Result<(), SimError> {
        let t = self.clock;
        let shared_bytes = self
            .coherence
            .as_ref()
            .expect("coherent path without front end")
            .shared_bytes;
        // Shared prefix: every core names the same physical rows (core 0's
        // placement); the private remainder keeps the per-core scatter.
        let addr = if vaddr < shared_bytes {
            self.addr_map.map(0, vaddr)
        } else {
            self.addr_map.map(core, vaddr)
        };
        self.footprint_rows
            .insert(addr / self.cfg.geometry.row_bytes as u64);
        let now_cycles = t.raw() / self.cfg.core.ticks_per_cycle;
        let line = addr & !(self.cfg.hierarchy.line_bytes - 1);
        let row_coord = self.cfg.geometry.decode(addr);
        let coh = self.coherence.as_mut().expect("checked above");
        let shared_before = coh.cluster.shared_accesses(line);
        let before = coh.cluster.stats().clone();
        let out = coh.cluster.access(core, line, is_write, now_cycles);
        if coh.cluster.shared_accesses(line) > shared_before {
            // The line was valid in another core's L1: sharing-induced
            // heat for its DRAM row, surfaced to the migration policy.
            let heat = self
                .shared_row_heat
                .entry((row_coord.bank, row_coord.row))
                .or_insert(0);
            *heat = heat.saturating_add(1);
        }
        let after = coh.cluster.stats();
        let deltas = [
            after.bus_rd - before.bus_rd,
            after.bus_rdx - before.bus_rdx,
            after.bus_upgr - before.bus_upgr,
            after.bus_upd - before.bus_upd,
            after.invalidations - before.invalidations,
            after.interventions - before.interventions,
            after.writeback_flushes - before.writeback_flushes,
        ];
        let wait_delta = after.bus_wait_cycles - before.bus_wait_cycles;
        self.tel.coh_access(deltas, wait_delta);
        // Dirty lines flushed out of the cluster land in the LLC when it
        // holds them; otherwise they go to DRAM.
        for wb in out.writebacks {
            if !self.hierarchy.llc_write_back(wb) {
                self.issue_writeback_at(wb, t);
            }
        }
        let done = t + self.cfg.cycles_to_ticks(out.cycles);
        if !out.fetch_below {
            if !is_write {
                self.complete_core(core, id, done);
            }
            return Ok(());
        }
        // Cluster miss with no peer supplier: consult the shared LLC. The
        // LLC allocates at lookup time (as the table-fetch path does); the
        // DRAM round trip still gates this requester's completion.
        let llc_lat = self.cfg.cycles_to_ticks(self.cfg.hierarchy.llc_latency);
        let (hit, wbs) = self.hierarchy.llc_side_access(line);
        for wb in wbs {
            self.issue_writeback_at(wb, done);
        }
        if hit {
            if !is_write {
                self.complete_core(core, id, done + llc_lat);
            }
            return Ok(());
        }
        // LLC miss: a real DRAM read fetches the line.
        self.core_misses[core] += 1;
        let waiter = Waiter {
            core,
            id,
            is_load: !is_write,
        };
        match self.mshr.register(line, waiter) {
            Some(true) => self.start_demand_read(line, done + llc_lat, core),
            Some(false) => {} // merged
            None => return Err(SimError::MshrSaturated { line }),
        }
        Ok(())
    }

    // ---- DRAM request construction ---------------------------------------

    fn new_req_id(&mut self) -> u64 {
        self.next_req_id += 1;
        self.next_req_id
    }

    /// Translates `(bank, logical row)`; returns the physical row plus any
    /// extra latency (LLC lookup) and, when the table line missed the LLC,
    /// the table-read request that must precede the access.
    fn translate(
        &mut self,
        bank: BankCoord,
        logical_row: u32,
        now: Tick,
    ) -> (u32, Tick, Option<Request>) {
        // A row translated moments ago is still held in the controller's
        // per-row registers: no lookup needed.
        if self.recent_translations.contains(&(bank, logical_row)) {
            if let Some(m) = self.manager.as_ref() {
                let (phys, _) = m.peek(bank, logical_row);
                return (phys, now, None);
            }
        }
        let Some(manager) = self.manager.as_mut() else {
            return (logical_row, now, None);
        };
        let tr = manager.translate(bank, logical_row);
        self.note_recent(bank, logical_row);
        // Soft-error injection on the translation cache: flip a tag bit in
        // some occupied entry. The damage is latent — caught by the
        // periodic audit (which rebuilds) or surfaced as extra misses.
        if self.injector.roll(FaultSite::TranslationCorrupt) {
            let hint = self.events_processed;
            if let Some(Management::Exclusive(m)) = self.manager.as_mut() {
                let _ = m.corrupt_translation_entry(hint);
            }
        }
        match tr.source {
            TranslationSource::Cache => (tr.phys_row, now, None),
            TranslationSource::TableFetch => {
                let llc_lat = self.cfg.cycles_to_ticks(self.cfg.hierarchy.llc_latency);
                let (hit, wbs) = self.hierarchy.llc_side_access(tr.table_line);
                for wb in wbs {
                    self.issue_writeback_at(wb, now);
                }
                if hit {
                    (tr.phys_row, now + llc_lat, None)
                } else {
                    // The table line must be read from DRAM first.
                    let coord = self.cfg.geometry.decode(tr.table_line);
                    let id = self.new_req_id();
                    let table_req = Request {
                        id,
                        coord, // identity mapping: the table region is not permuted
                        is_write: false,
                        arrival: now + llc_lat,
                    };
                    self.table_fetch_reads += 1;
                    (tr.phys_row, now + llc_lat, Some(table_req))
                }
            }
        }
    }

    fn start_demand_read(&mut self, line: u64, t: Tick, fill_core: usize) {
        let coord = self.cfg.geometry.decode(line);
        let (phys_row, ready, table_req) = self.translate(coord.bank, coord.row, t);
        let id = self.new_req_id();
        let demand = Request {
            id,
            coord: MemCoord {
                bank: coord.bank,
                row: phys_row,
                col: coord.col,
            },
            is_write: false,
            arrival: ready,
        };
        self.ctxs.insert(
            id,
            ReqCtx::DemandRead {
                line,
                bank: coord.bank,
                logical_row: coord.row,
                fill_core,
            },
        );
        match table_req {
            Some(tr) => {
                self.ctxs
                    .insert(tr.id, ReqCtx::TableRead { then: Some(demand) });
                self.push(tr.arrival, EventKind::CtrlEnqueue { req: tr });
            }
            None => self.push(ready, EventKind::CtrlEnqueue { req: demand }),
        }
    }

    fn note_recent(&mut self, bank: BankCoord, logical_row: u32) {
        self.recent_translations.push_back((bank, logical_row));
        if self.recent_translations.len() > RECENT_TRANSLATIONS {
            self.recent_translations.pop_front();
        }
    }

    fn forget_recent(&mut self, bank: BankCoord, logical_row: u32) {
        self.recent_translations
            .retain(|&e| e != (bank, logical_row));
    }

    fn issue_writeback(&mut self, line: u64) {
        self.issue_writeback_at(line, self.clock);
    }

    fn issue_writeback_at(&mut self, line: u64, t: Tick) {
        // Write-backs carry a physical-location hint with the dirty line
        // (recorded at fill time), so no translation lookup is needed: the
        // manager's authoritative mapping stands in for the hint. The
        // paper does not specify write-back translation; hint forwarding is
        // the natural implementation and keeps the translation overhead at
        // the §7 level (see DESIGN.md).
        let coord = self.cfg.geometry.decode(line);
        let phys_row = match self.manager.as_ref() {
            Some(m) => m.peek(coord.bank, coord.row).0,
            None => coord.row,
        };
        let id = self.new_req_id();
        let req = Request {
            id,
            coord: MemCoord {
                bank: coord.bank,
                row: phys_row,
                col: coord.col,
            },
            is_write: true,
            arrival: t,
        };
        self.ctxs.insert(
            id,
            ReqCtx::DemandWrite {
                bank: coord.bank,
                logical_row: coord.row,
            },
        );
        self.push(t, EventKind::CtrlEnqueue { req });
    }

    // ---- controller side ---------------------------------------------------

    fn handle_enqueue(&mut self, req: Request) -> Result<(), SimError> {
        let probe = self.prof.begin(Stage::QueueService);
        let ch = req.coord.bank.channel as usize;
        let accept = if req.is_write {
            self.ctrls[ch].can_accept_write()
        } else {
            self.ctrls[ch].can_accept_read()
        };
        let result = if accept {
            self.ctrls[ch].enqueue(req).map(|()| self.schedule_wake(ch))
        } else {
            self.overflow[ch].push_back(req);
            Ok(())
        };
        self.prof.end(Stage::QueueService, probe);
        if probe.is_some() {
            let depth = self.ctrls[ch].queued() + self.overflow[ch].len();
            self.prof.note_depth(Stage::QueueService, depth as u64);
        }
        result.map_err(SimError::from)
    }

    fn handle_wake(&mut self, ch: usize) -> Result<(), SimError> {
        // Only the event matching the currently scheduled wake is live;
        // anything else was superseded by an earlier push (processing it
        // would multiplicatively re-spawn wake events).
        if self.next_wake[ch] != self.clock {
            return Ok(());
        }
        self.next_wake[ch] = Tick::MAX;
        let probe = self.prof.begin(Stage::DramTiming);
        if probe.is_some() {
            self.prof
                .note_depth(Stage::DramTiming, self.ctrls[ch].backlog() as u64);
        }
        let advanced = self.ctrls[ch].advance(self.clock);
        self.prof.end(Stage::DramTiming, probe);
        let completions = advanced?;
        for c in completions {
            self.handle_completion(ch, c)?;
        }
        // Drain overflow into freed queue slots (FIFO, reads and writes
        // interleaved as they arrived).
        let probe = self.prof.begin(Stage::QueueService);
        let mut drain = Ok(());
        while let Some(req) = self.overflow[ch].front().copied() {
            let ok = if req.is_write {
                self.ctrls[ch].can_accept_write()
            } else {
                self.ctrls[ch].can_accept_read()
            };
            if !ok {
                break;
            }
            self.overflow[ch].pop_front();
            if let Err(e) = self.ctrls[ch].enqueue(req) {
                drain = Err(e);
                break;
            }
        }
        self.schedule_wake(ch);
        self.prof.end(Stage::QueueService, probe);
        drain?;
        Ok(())
    }

    fn schedule_wake(&mut self, ch: usize) {
        if let Some(t) = self.ctrls[ch].next_action_time(self.clock) {
            let t = t.max(self.clock);
            if t < self.next_wake[ch] {
                self.next_wake[ch] = t;
                self.push(t, EventKind::CtrlWake { ch });
            }
        }
    }

    fn record_subarray(&mut self, bank: BankCoord, logical_row: u32) {
        let table_rows_start = self.table_region_first_row(bank);
        if logical_row >= table_rows_start {
            return;
        }
        let phys = match self.manager.as_ref() {
            Some(m) => m.peek(bank, logical_row).0,
            None => logical_row,
        };
        let layout = self.ctrls[bank.channel as usize].channel().layout();
        let (sub, _) = layout.classify(phys);
        let key = (self.cfg.geometry.bank_index(bank), sub);
        *self.subarray_activity.entry(key).or_insert(0) += 1;
    }

    fn record_mix(&mut self, service: ServiceClass) {
        // Homogeneous designs report their single kind regardless of the
        // layout's nominal classification.
        let adjusted = match (self.design, service) {
            (_, ServiceClass::RowBufferHit) => ServiceClass::RowBufferHit,
            (Design::Standard | Design::Salp, _) => ServiceClass::SlowMiss,
            (Design::FsDram, _) => ServiceClass::FastMiss,
            (_, s) => s,
        };
        self.access_mix.record(adjusted);
        self.memory_accesses += 1;
    }

    fn handle_completion(&mut self, ch: usize, c: Completion) -> Result<(), SimError> {
        match c {
            Completion::ReadDone {
                id,
                at,
                service,
                latency,
            } => {
                self.tel
                    .record_latency(ch, latency_class(service), latency.raw());
                let Some(ctx) = self.ctxs.remove(&id) else {
                    return Err(SimError::UnknownCompletion { kind: "read", id });
                };
                match ctx {
                    ReqCtx::DemandRead {
                        line,
                        bank,
                        logical_row,
                        fill_core,
                    } => {
                        // Weak-retention model: a fast-resident row may
                        // return flipped bits; ECC detects the flip and the
                        // controller re-reads, up to a bounded budget.
                        let flipped = self.row_is_fast(bank, logical_row)
                            && self.injector.roll(FaultSite::RetentionFlip);
                        if flipped {
                            let retries = self.read_retries.remove(&id).unwrap_or(0);
                            if retries < self.injector.plan().max_read_retries {
                                self.injector.note_retry(FaultSite::RetentionFlip);
                                self.reissue_read(
                                    line,
                                    bank,
                                    logical_row,
                                    fill_core,
                                    at,
                                    retries + 1,
                                );
                                return Ok(());
                            }
                            // Budget exhausted: the access is counted fatal
                            // (served through the slow ECC-correction path)
                            // and completes so the simulation can proceed.
                            self.injector.note_fatal(FaultSite::RetentionFlip);
                        } else if self.read_retries.remove(&id).is_some() {
                            self.injector.note_recovered(FaultSite::RetentionFlip);
                        }
                        self.record_mix(service);
                        self.record_subarray(bank, logical_row);
                        self.after_data_access(bank, logical_row, false, at);
                        if self.coherence.is_none() {
                            // Coherent runs skip this: the private copy
                            // lives in the cluster and the LLC already
                            // allocated at lookup time.
                            let dirty = self.line_dirty.remove(&line).unwrap_or(false);
                            let wbs = self.hierarchy.fill_from_memory(fill_core, line, dirty);
                            for wb in wbs {
                                self.issue_writeback_at(wb, at);
                            }
                        }
                        let waiters = self.mshr.complete(line);
                        let mut touched = HashSet::new();
                        for w in &waiters {
                            if w.is_load {
                                let mut out = Vec::new();
                                self.cores[w.core].complete(w.id, at.raw(), &mut out);
                                self.schedule_core_requests(w.core, out);
                            }
                            touched.insert(w.core);
                        }
                        for core in touched {
                            self.check_warm(core);
                            self.dispatch_core(core);
                        }
                    }
                    ReqCtx::TableRead { then } => {
                        if let Some(mut demand) = then {
                            demand.arrival = at;
                            self.push(at, EventKind::CtrlEnqueue { req: demand });
                        }
                    }
                    ReqCtx::DemandWrite { .. } => {
                        return Err(SimError::ContextMismatch { kind: "read", id });
                    }
                }
            }
            Completion::WriteDone {
                id,
                at,
                service,
                latency,
            } => {
                self.tel
                    .record_latency(ch, latency_class(service), latency.raw());
                let Some(ctx) = self.ctxs.remove(&id) else {
                    return Err(SimError::UnknownCompletion { kind: "write", id });
                };
                match ctx {
                    ReqCtx::DemandWrite { bank, logical_row } => {
                        self.record_mix(service);
                        self.record_subarray(bank, logical_row);
                        // The managers decide internally what a write may
                        // trigger (exclusive: gated by `promote_on_writes`;
                        // inclusive: dirty tracking, never allocation).
                        self.after_data_access(bank, logical_row, true, at);
                    }
                    _ => return Err(SimError::ContextMismatch { kind: "write", id }),
                }
            }
            Completion::SwapDone { token, at: _ } => {
                let Some(req) = self.pending_swaps.remove(&token) else {
                    return Err(SimError::UnknownCompletion {
                        kind: "swap",
                        id: token,
                    });
                };
                // Migration-step fault: the swap's data movement failed and
                // nothing was committed. Retry within the bounded budget;
                // past it, demote — abandon the promotion, which keeps the
                // exclusive mapping exactly as it was.
                if self.injector.roll(FaultSite::SwapStep) {
                    let attempts = self.swap_attempts.remove(&token).unwrap_or(0) + 1;
                    if attempts < self.injector.plan().max_swap_attempts {
                        self.injector.note_retry(FaultSite::SwapStep);
                        self.tel.swap_retry(token);
                        self.swap_attempts.insert(token, attempts);
                        let op = swap_op_for(&req, token, self.clock);
                        self.pending_swaps.insert(token, req);
                        let ch = op.bank.channel as usize;
                        self.ctrls[ch].enqueue_swap(op);
                        self.schedule_wake(ch);
                        return Ok(());
                    }
                    match (self.manager.as_mut(), &req) {
                        (Some(Management::Exclusive(m)), PendingMigration::Swap(swap)) => {
                            m.abort_swap(swap)
                        }
                        (Some(Management::Inclusive(m)), PendingMigration::Fill(fill)) => {
                            m.abort_fill(fill)
                        }
                        _ => {
                            return Err(SimError::ContextMismatch {
                                kind: "swap",
                                id: token,
                            })
                        }
                    }
                    self.injector.note_recovered(FaultSite::SwapStep);
                    self.tel.swap_abort(token, self.clock.raw());
                    return Ok(());
                }
                if self.swap_attempts.remove(&token).is_some() {
                    self.injector.note_recovered(FaultSite::SwapStep);
                }
                self.tel.swap_commit(token, self.clock.raw());
                let now = self.clock.raw();
                match req {
                    PendingMigration::Swap(swap) => {
                        self.forget_recent(swap.bank, swap.promotee);
                        self.forget_recent(swap.bank, swap.victim);
                        match self.manager.as_mut() {
                            Some(Management::Exclusive(m)) => m.commit_swap(&swap, now),
                            _ => {
                                return Err(SimError::ContextMismatch {
                                    kind: "swap",
                                    id: token,
                                })
                            }
                        }
                    }
                    PendingMigration::Fill(fill) => {
                        // The fill moves the promotee and displaces an
                        // unknown-to-us victim: drop all held translations.
                        self.recent_translations.clear();
                        match self.manager.as_mut() {
                            Some(Management::Inclusive(m)) => m.commit_fill(&fill, now),
                            _ => {
                                return Err(SimError::ContextMismatch {
                                    kind: "swap",
                                    id: token,
                                })
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether `logical_row` currently resides in a fast subarray (the
    /// weak-retention fault site: short bitlines hold less charge). In
    /// homogeneous fast DRAM every row qualifies.
    fn row_is_fast(&self, bank: BankCoord, logical_row: u32) -> bool {
        if self.design == Design::FsDram {
            return true;
        }
        self.manager
            .as_ref()
            .is_some_and(|m| m.peek(bank, logical_row).1)
    }

    /// Re-issues a demand read whose data failed the retention check. The
    /// re-read targets the row's current physical location; `retries` is
    /// carried on the fresh request id.
    fn reissue_read(
        &mut self,
        line: u64,
        bank: BankCoord,
        logical_row: u32,
        fill_core: usize,
        at: Tick,
        retries: u32,
    ) {
        let coord = self.cfg.geometry.decode(line);
        let (phys, _) = match self.manager.as_ref() {
            Some(m) => m.peek(bank, logical_row),
            None => (logical_row, false),
        };
        let id = self.new_req_id();
        self.read_retries.insert(id, retries);
        self.ctxs.insert(
            id,
            ReqCtx::DemandRead {
                line,
                bank,
                logical_row,
                fill_core,
            },
        );
        let req = Request {
            id,
            coord: MemCoord {
                bank,
                row: phys,
                col: coord.col,
            },
            is_write: false,
            arrival: at,
        };
        self.push(at, EventKind::CtrlEnqueue { req });
    }

    fn after_data_access(&mut self, bank: BankCoord, logical_row: u32, is_write: bool, at: Tick) {
        // Table-region traffic is not subject to management.
        let table_rows_start = self.table_region_first_row(bank);
        if logical_row >= table_rows_start {
            return;
        }
        let op = match self.manager.as_mut() {
            None => return,
            Some(Management::Exclusive(m)) => {
                if is_write && !self.cfg.promote_on_writes {
                    return;
                }
                // Sharing-induced heat for this row (0 without a coherent
                // front end); only adaptive policies read it.
                let shared = self
                    .shared_row_heat
                    .get(&(bank, logical_row))
                    .copied()
                    .unwrap_or(0);
                m.on_data_access_shared(bank, logical_row, at.raw(), shared)
                    .map(|swap| {
                        (
                            PendingMigration::Swap(swap),
                            SwapOp {
                                token: 0,
                                bank,
                                phys_a: swap.promotee_phys,
                                phys_b: swap.victim_phys,
                                kind: das_dram::command::MigrationKind::Swap,
                                arrival: at,
                            },
                        )
                    })
            }
            Some(Management::Inclusive(m)) => {
                // The inclusive manager always observes writes (dirty
                // tracking) even though they never allocate.
                m.on_data_access(bank, logical_row, is_write, at.raw())
                    .map(|fill| {
                        (
                            PendingMigration::Fill(fill),
                            SwapOp {
                                token: 0,
                                bank,
                                phys_a: fill.promotee_phys,
                                phys_b: fill.slot_phys,
                                kind: fill.kind,
                                arrival: at,
                            },
                        )
                    })
            }
        };
        if let Some((pending, mut op)) = op {
            // Sharing-induced promotion accounting: a promoted row inside
            // the coherent shared footprint got hot because multiple cores
            // hammered it.
            if let Some(coh) = self.coherence.as_mut() {
                if coh.shared_rows.contains(&(bank, logical_row)) {
                    coh.cluster.note_shared_promotion();
                }
            }
            self.next_swap_token += 1;
            op.token = self.next_swap_token;
            self.pending_swaps.insert(op.token, pending);
            self.tel.swap_begin(op.token, at.raw(), bank.channel as u32);
            // Latency-spike fault: the migration's hand-off to the
            // controller is delayed (e.g. a refresh collision on the
            // migration cells), not lost.
            if self.injector.roll(FaultSite::SwapLatency) {
                let spike = Tick::new(self.injector.plan().swap_latency_spike_ticks);
                op.arrival = at + spike;
                self.push(at + spike, EventKind::SwapEnqueue { op });
                return;
            }
            let ch = bank.channel as usize;
            self.ctrls[ch].enqueue_swap(op);
            self.schedule_wake(ch);
        }
    }

    /// First logical row of `bank` that belongs to the reserved table
    /// region (rows at the very top of the address space).
    fn table_region_first_row(&self, _bank: BankCoord) -> u32 {
        // The table occupies the top `total_rows` bytes; with row-
        // interleaved mapping those bytes are the final rows of every bank.
        let g = &self.cfg.geometry;
        let table_rows_total = g.total_rows().div_ceil(g.row_bytes as u64);
        let per_bank = table_rows_total.div_ceil(g.total_banks() as u64) as u32;
        g.rows_per_bank - per_bank.min(g.rows_per_bank)
    }

    // ---- finalisation ------------------------------------------------------

    fn finalize(self) -> RunMetrics {
        let warm_global = self.warm_global.unwrap_or((AccessMix::default(), 0, 0, 0));
        let tpc = self.cfg.core.ticks_per_cycle;
        let cores: Vec<CoreMetrics> = self
            .cores
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (wi, wt, wm) = self.warm_core[i].unwrap_or((0, 0, 0));
                CoreMetrics {
                    insts: c.insts_retired() - wi,
                    cycles: (c.finish_time() - wt) / tpc,
                    llc_misses: self.core_misses[i] - wm,
                }
            })
            .collect();
        let promotions_total = self.manager.as_ref().map_or(0, |m| m.promotions());
        let mix = self.access_mix.since(&warm_global.0);
        let promotions = promotions_total - warm_global.1;
        let accesses = self.memory_accesses - warm_global.2;
        let table_reads = self.table_fetch_reads - warm_global.3;
        let llc_misses = cores.iter().map(|c| c.llc_misses).sum();
        let window_cycles = cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        let model = EnergyModel::default();
        let energy = EnergyBreakdown {
            act_pre_nj: mix.fast as f64 * model.act_pre_fast_nj
                + mix.slow as f64 * model.act_pre_slow_nj,
            burst_nj: accesses as f64 * (model.read_nj + model.write_nj) / 2.0,
            migration_nj: promotions as f64 * model.swap_nj,
            background_nj: {
                let ns = window_cycles as f64 / 3.0; // 3 GHz
                self.ctrls.len() as f64 * model.background_mw * 1e-3 * ns
            },
        };
        let total_subarrays = {
            let per_bank = self.ctrls[0].channel().layout().subarrays().len();
            per_bank * self.cfg.geometry.total_banks() as usize
        };
        RunMetrics {
            design: self.design.label().to_string(),
            workload: self.workload_label,
            cores,
            access_mix: mix,
            promotions,
            aborted_promotions: self.manager.as_ref().map_or(0, |m| m.stats().aborted),
            memory_accesses: accesses,
            llc_misses,
            footprint_bytes: self.footprint_rows.len() as u64 * self.cfg.geometry.row_bytes as u64,
            translation: self
                .manager
                .as_ref()
                .map(|m| m.translation_stats())
                .unwrap_or_default(),
            filter: self
                .manager
                .as_ref()
                .map(|m| m.filter_stats())
                .unwrap_or_default(),
            table_fetch_reads: table_reads,
            energy,
            window_cycles,
            active_subarrays: self.subarray_activity.len(),
            total_subarrays,
            faults: *self.injector.stats(),
            coherence: self
                .coherence
                .as_ref()
                .map(|c| crate::stats::CoherenceMetrics {
                    protocol: c.cluster.protocol_kind().label().to_string(),
                    cores: c.cluster.config().cores,
                    stats: c.cluster.stats().clone(),
                }),
            policy: self.manager.as_ref().and_then(|m| m.policy_stats()).map(
                |(kind, stats, threshold)| crate::stats::PolicyMetrics {
                    policy: kind.key().to_string(),
                    promotes: stats.promotes,
                    demotes: stats.demotes,
                    holds: stats.holds,
                    threshold_adjusts: stats.threshold_adjusts,
                    epochs: stats.epochs,
                    final_threshold: threshold,
                },
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_workloads::spec;

    fn cfg() -> SystemConfig {
        SystemConfig::test_small()
    }

    fn workloads4() -> Vec<WorkloadConfig> {
        ["astar", "omnetpp", "soplex", "leslie3d"]
            .iter()
            .map(|n| spec::by_name(n).scaled(64))
            .collect()
    }

    #[test]
    fn address_map_is_injective_and_disjoint_across_cores() {
        let cfg = cfg();
        let wls = workloads4();
        let map = AddressMap::new(&cfg, &wls);
        let mut seen = std::collections::HashSet::new();
        for (core, w) in wls.iter().enumerate() {
            for vrow in 0..w.footprint_rows().min(500) {
                let p = map.map(core, vrow * cfg.geometry.row_bytes as u64);
                assert_eq!(p % cfg.geometry.row_bytes as u64, 0);
                assert!(
                    p < cfg.geometry.total_bytes() - cfg.geometry.total_rows(),
                    "must stay below the table region"
                );
                assert!(seen.insert(p), "core {core} row {vrow} collided");
            }
        }
    }

    #[test]
    fn address_map_preserves_offsets_within_rows() {
        let cfg = cfg();
        let wls = vec![spec::by_name("libquantum").scaled(64)];
        let map = AddressMap::new(&cfg, &wls);
        let a = map.map(0, 3 * 8192 + 128);
        let b = map.map(0, 3 * 8192 + 256);
        assert_eq!(a % 8192, 128);
        assert_eq!(b - a, 128, "same row, consecutive offsets");
    }

    #[test]
    fn profile_view_differs_for_some_rows_only() {
        let cfg = cfg();
        let wls = vec![spec::by_name("mcf").scaled(64)];
        let map = AddressMap::new(&cfg, &wls);
        let prof = map.profile_view();
        let rows = wls[0].footprint_rows();
        let moved = (0..rows)
            .filter(|&v| map.map(0, v * 8192) != prof.map(0, v * 8192))
            .count();
        let frac = moved as f64 / rows as f64;
        assert!(
            (frac - cfg.profile_realloc).abs() < 0.1,
            "≈{} of pages should be reallocated, got {frac}",
            cfg.profile_realloc
        );
    }

    #[test]
    #[should_panic(expected = "exceeds its share")]
    fn oversized_footprints_are_rejected() {
        let cfg = cfg();
        let mut w = spec::by_name("mcf");
        w.footprint_bytes = cfg.geometry.total_bytes() * 2;
        let _ = AddressMap::new(&cfg, &[w]);
    }

    #[test]
    fn recorded_stubs_capture_footprints() {
        let cfg = cfg();
        let traces = vec![vec![
            das_cpu::trace::TraceItem::load(1, 0),
            das_cpu::trace::TraceItem::load(1, 100 * 8192 + 64),
        ]];
        let stubs = recorded_workload_stubs(&cfg, &traces);
        assert_eq!(stubs.len(), 1);
        assert_eq!(stubs[0].footprint_bytes, 101 * 8192);
    }

    #[test]
    fn trace_source_recorded_drains() {
        let items = vec![das_cpu::trace::TraceItem::load(1, 0); 3];
        let mut src = TraceSource::Recorded(items.into_iter());
        assert_eq!(src.by_ref().count(), 3);
        assert!(src.next().is_none());
    }

    #[test]
    fn table_region_occupies_top_rows() {
        let sys = System::new(cfg(), Design::Standard, &workloads4(), None);
        let bank = BankCoord::new(0, 0, 0);
        let first = sys.table_region_first_row(bank);
        assert!(first < sys.cfg.geometry.rows_per_bank);
        assert!(
            first >= sys.cfg.geometry.rows_per_bank - 2,
            "table needs only the very top rows at this scale: {first}"
        );
    }
}
