//! Machine-readable run reports.
//!
//! [`run_report`] assembles one run's [`RunMetrics`] — and, when the
//! telemetry sink was on, its latency histograms and epoch time-series —
//! into a [`das_telemetry::json::Value`] tree; [`run_report_json`] renders
//! it. The schema is flat and stable: top-level `design`/`workload`
//! identification, a `metrics` object mirroring [`RunMetrics`], and an
//! optional `telemetry` object (see
//! [`das_telemetry::TelemetryReport::to_value`]).

use das_telemetry::json::Value;
use das_telemetry::TelemetryReport;

use crate::stats::RunMetrics;

/// Serialises one run's metrics as a JSON object.
pub fn metrics_to_value(m: &RunMetrics) -> Value {
    let coherence = m.coherence.as_ref().map(|c| {
        Value::obj()
            .set("protocol", c.protocol.as_str())
            .set("cores", c.cores as u64)
            .set("bus_rd", c.stats.bus_rd)
            .set("bus_rdx", c.stats.bus_rdx)
            .set("bus_upgr", c.stats.bus_upgr)
            .set("bus_upd", c.stats.bus_upd)
            .set("bus_transactions", c.stats.bus_transactions())
            .set("invalidations", c.stats.invalidations)
            .set("interventions", c.stats.interventions)
            .set("writeback_flushes", c.stats.writeback_flushes)
            .set("bus_wait_cycles", c.stats.bus_wait_cycles)
            .set("bus_busy_cycles", c.stats.bus_busy_cycles)
            .set("l1_hits", c.stats.l1_hits)
            .set("l1_misses", c.stats.l1_misses)
            .set("l1_hit_rate", c.l1_hit_rate())
            .set("invalidations_per_tx", c.invalidations_per_tx())
            .set("shared_promotions", c.stats.shared_promotions)
    });
    let cores = Value::Arr(
        m.cores
            .iter()
            .map(|c| {
                Value::obj()
                    .set("insts", c.insts)
                    .set("cycles", c.cycles)
                    .set("llc_misses", c.llc_misses)
                    .set("ipc", c.ipc())
                    .set("mpki", c.mpki())
            })
            .collect(),
    );
    let (rb, fast, slow) = m.access_mix.fractions();
    let v = Value::obj()
        .set("ipc_sum", m.ipc_sum())
        .set("mpki", m.mpki())
        .set("cores", cores)
        .set(
            "access_mix",
            Value::obj()
                .set("row_buffer", m.access_mix.row_buffer)
                .set("fast", m.access_mix.fast)
                .set("slow", m.access_mix.slow)
                .set("row_buffer_frac", rb)
                .set("fast_frac", fast)
                .set("slow_frac", slow),
        )
        .set("fast_activation_ratio", m.fast_activation_ratio())
        .set("promotions", m.promotions)
        .set("aborted_promotions", m.aborted_promotions)
        .set("ppkm", m.ppkm())
        .set("memory_accesses", m.memory_accesses)
        .set("llc_misses", m.llc_misses)
        .set("footprint_bytes", m.footprint_bytes)
        .set("table_fetch_reads", m.table_fetch_reads)
        .set(
            "translation",
            Value::obj()
                .set("hits", m.translation.hits)
                .set("misses", m.translation.misses)
                .set("fills", m.translation.fills)
                .set("invalidations", m.translation.invalidations),
        )
        .set(
            "energy_nj",
            Value::obj()
                .set("act_pre", m.energy.act_pre_nj)
                .set("burst", m.energy.burst_nj)
                .set("migration", m.energy.migration_nj)
                .set("background", m.energy.background_nj)
                .set("total", m.energy.total_nj()),
        )
        .set("window_cycles", m.window_cycles)
        .set("active_subarrays", m.active_subarrays)
        .set("total_subarrays", m.total_subarrays)
        .set(
            "faults",
            Value::obj()
                .set("injected", m.faults.total_injected())
                .set(
                    "retried",
                    das_faults::FaultSite::ALL
                        .iter()
                        .map(|&s| m.faults.site(s).retried)
                        .sum::<u64>(),
                )
                .set("recovered", m.faults.total_recovered())
                .set("fatal", m.faults.total_fatal())
                .set("invariant_checks_passed", m.faults.invariant_checks_passed)
                .set("tcache_rebuilds", m.faults.tcache_rebuilds),
        );
    // The keys are absent (not null) on classic runs so their reports stay
    // byte-identical to pre-coherence / pre-policy builds.
    let v = match coherence {
        Some(c) => v.set("coherence", c),
        None => v,
    };
    match m.policy.as_ref() {
        Some(p) => v.set(
            "policy",
            Value::obj()
                .set("policy", p.policy.as_str())
                .set("promotes", p.promotes)
                .set("demotes", p.demotes)
                .set("holds", p.holds)
                .set("threshold_adjusts", p.threshold_adjusts)
                .set("epochs", p.epochs)
                .set("final_threshold", p.final_threshold as u64),
        ),
        None => v,
    }
}

/// Builds the full run report: identification, metrics, and (when the sink
/// was on) the telemetry block with per-class latency percentiles and the
/// epoch series.
pub fn run_report(m: &RunMetrics, tel: Option<&TelemetryReport>) -> Value {
    let mut report = Value::obj()
        .set("design", m.design.as_str())
        .set("workload", m.workload.as_str())
        .set("metrics", metrics_to_value(m));
    report = match tel {
        Some(t) => report.set("telemetry", t.to_value()),
        None => report.set("telemetry", Value::Null),
    };
    report
}

/// Renders [`run_report`] as a compact JSON document.
pub fn run_report_json(m: &RunMetrics, tel: Option<&TelemetryReport>) -> String {
    run_report(m, tel).render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{AccessMix, CoreMetrics};
    use das_telemetry::json::validate;

    fn metrics() -> RunMetrics {
        RunMetrics {
            design: "DAS-DRAM".into(),
            workload: "mcf".into(),
            cores: vec![CoreMetrics {
                insts: 1_000,
                cycles: 2_000,
                llc_misses: 50,
            }],
            access_mix: AccessMix {
                row_buffer: 40,
                fast: 45,
                slow: 15,
            },
            promotions: 7,
            aborted_promotions: 1,
            memory_accesses: 100,
            llc_misses: 50,
            ..RunMetrics::default()
        }
    }

    #[test]
    fn report_without_telemetry_validates() {
        let json = run_report_json(&metrics(), None);
        validate(&json).unwrap();
        assert!(json.contains("\"design\":\"DAS-DRAM\""));
        assert!(json.contains("\"telemetry\":null"));
        assert!(json.contains("\"aborted_promotions\":1"));
        assert!(
            !json.contains("coherence"),
            "classic reports must not grow a coherence key"
        );
        assert!(
            !json.contains("\"policy\""),
            "classic reports must not grow a policy key"
        );
    }

    #[test]
    fn coherence_block_appears_when_front_end_was_mounted() {
        use crate::stats::CoherenceMetrics;
        let mut m = metrics();
        m.coherence = Some(CoherenceMetrics {
            protocol: "MESI".into(),
            cores: 4,
            stats: das_coherence::CoherenceStats {
                bus_rd: 10,
                bus_rdx: 5,
                invalidations: 3,
                l1_hits: 90,
                l1_misses: 15,
                ..Default::default()
            },
        });
        let json = run_report_json(&m, None);
        validate(&json).unwrap();
        assert!(json.contains("\"coherence\":{\"protocol\":\"MESI\""));
        assert!(json.contains("\"bus_transactions\":15"));
        assert!(json.contains("\"invalidations_per_tx\":0.2"));
    }

    #[test]
    fn policy_block_appears_when_a_policy_was_installed() {
        use crate::stats::PolicyMetrics;
        let mut m = metrics();
        m.policy = Some(PolicyMetrics {
            policy: "feedback".into(),
            promotes: 12,
            demotes: 0,
            holds: 88,
            threshold_adjusts: 2,
            epochs: 3,
            final_threshold: 6,
        });
        let json = run_report_json(&m, None);
        validate(&json).unwrap();
        assert!(json.contains("\"policy\":{\"policy\":\"feedback\""));
        assert!(json.contains("\"final_threshold\":6"));
    }

    #[test]
    fn report_with_telemetry_embeds_percentiles() {
        use das_telemetry::{LatencyClass, Telemetry, TelemetryConfig};
        let mut t = Telemetry::new(TelemetryConfig::on(1_000), 1, 24_000.0);
        t.record_latency(0, LatencyClass::FastMiss, 500);
        t.record_latency(0, LatencyClass::SlowMiss, 900);
        let rep = t.into_report().unwrap();
        let json = run_report_json(&metrics(), Some(&rep));
        validate(&json).unwrap();
        assert!(
            json.contains("\"p99\""),
            "per-class percentiles present: {json}"
        );
        assert!(json.contains("\"epochs\":[]"));
    }
}
