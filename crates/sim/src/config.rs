//! Full-system configuration (Table 1) with the scaling mechanism described
//! in `DESIGN.md`.
//!
//! The paper simulates 100 M/400 M instructions against 8 GB of DRAM and a
//! 4 MB LLC. To keep the whole figure suite regenerable in minutes, the
//! default configuration divides every *capacity* (DRAM, LLC, workload
//! footprints, translation cache) by a common `scale` factor (default 8)
//! while leaving all *latencies* untouched — the capacity ratios that drive
//! the paper's results (footprint : fast level : LLC) are preserved.

use das_backends::{backend, BackendKind, DramBackend, FastLevelManagement};
use das_cache::hierarchy::HierarchyConfig;
use das_core::management::ManagementConfig;
use das_core::replacement::ReplacementPolicy;
use das_cpu::core::CoreConfig;
use das_dram::geometry::{Arrangement, BankLayout, DramGeometry, FastRatio};
use das_dram::tick::Tick;
use das_memctrl::controller::{ControllerConfig, SchedulerKind};
use das_telemetry::{StageProfilerConfig, TelemetryConfig};

/// The five DRAM designs compared in §7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Traditional homogeneous DRAM (the baseline everything is measured
    /// against).
    Standard,
    /// Static Asymmetric-Subarray DRAM: profiled pre-placement, no
    /// migration.
    SasDram,
    /// SAS-DRAM with an optimised fast-region column path.
    Charm,
    /// The paper's proposal: dynamic management with lightweight migration.
    DasDram,
    /// DAS-DRAM with free (zero-latency) migration — the overhead probe.
    DasDramFm,
    /// Homogeneous fast-subarray DRAM — the latency upper bound.
    FsDram,
    /// The §5 inclusive-cache management alternative: fast subarrays cache
    /// the slow level (capacity lost to duplication, copy-based fills).
    DasInclusive,
    /// TL-DRAM (§3.1): segmented bitlines — near segments cache the far
    /// segments of their own subarray; the far segment pays the isolation-
    /// transistor restore penalty, and the area overhead is ~24 %.
    TlDram,
    /// CLR-DRAM (ISCA 2020): rows morph in place into a coupled
    /// low-latency mode; the partner row's capacity is lost.
    ClrDram,
    /// LISA (HPCA 2016): the asymmetric device with linked subarrays —
    /// row swaps cost a third of the migration-cell path.
    Lisa,
    /// SALP (ISCA 2012): commodity timings with subarray-level
    /// parallelism only — no fast level.
    Salp,
}

impl Design {
    /// All designs in the paper's presentation order.
    pub fn all() -> [Design; 6] {
        [
            Design::Standard,
            Design::SasDram,
            Design::Charm,
            Design::DasDram,
            Design::DasDramFm,
            Design::FsDram,
        ]
    }

    /// The six backend architectures of the cross-architecture family, in
    /// catalog order (baseline first).
    pub fn backends() -> [Design; 6] {
        [
            Design::Standard,
            Design::DasDram,
            Design::TlDram,
            Design::ClrDram,
            Design::Lisa,
            Design::Salp,
        ]
    }

    /// The `das-backends` kind this design corresponds to, if any. The
    /// paper's intermediate probes (SAS/CHARM/FM/FS/inclusive-DAS) are not
    /// standalone architectures and keep their bespoke timing paths.
    pub fn backend_kind(self) -> Option<BackendKind> {
        match self {
            Design::Standard => Some(BackendKind::Ddr3Baseline),
            Design::DasDram => Some(BackendKind::Das),
            Design::TlDram => Some(BackendKind::TlDram),
            Design::ClrDram => Some(BackendKind::ClrDram),
            Design::Lisa => Some(BackendKind::Lisa),
            Design::Salp => Some(BackendKind::Salp),
            _ => None,
        }
    }

    /// The backend implementation behind this design, if it has one.
    pub fn backend(self) -> Option<&'static dyn DramBackend> {
        self.backend_kind().map(backend)
    }

    /// Display label matching the paper's legends.
    pub fn label(self) -> &'static str {
        match self {
            Design::Standard => "Std-DRAM",
            Design::SasDram => "SAS-DRAM",
            Design::Charm => "CHARM",
            Design::DasDram => "DAS-DRAM",
            Design::DasDramFm => "DAS-DRAM (FM)",
            Design::FsDram => "FS-DRAM",
            Design::DasInclusive => "DAS-incl",
            Design::TlDram => "TL-DRAM",
            Design::ClrDram => "CLR-DRAM",
            Design::Lisa => "LISA",
            Design::Salp => "SALP",
        }
    }

    /// The device timing set for this design. Backend designs take their
    /// latency classes and copy costs from the `das-backends` registry; the
    /// paper's probe designs keep their bespoke sets.
    pub fn timing(self) -> das_dram::timing::TimingSet {
        use das_dram::timing::TimingSet;
        if let Some(b) = self.backend() {
            // The per-level refresh hook is applied here so a backend whose
            // fast level refreshes on its own cadence reaches the channel's
            // rank schedules; the default derives from `timing()` itself,
            // leaving stock backends bit-identical.
            let mut t = b.timing();
            b.refresh().apply(&mut t);
            return t;
        }
        match self {
            Design::SasDram => TimingSet::asymmetric(),
            Design::Charm => TimingSet::charm(),
            Design::DasDramFm => TimingSet::asymmetric_free_migration(),
            Design::FsDram => TimingSet::homogeneous_fast(),
            Design::DasInclusive => TimingSet::asymmetric(),
            _ => unreachable!("backend designs handled above"),
        }
    }

    /// Whether the design manages an asymmetric fast level at all.
    pub fn is_asymmetric(self) -> bool {
        match self.backend() {
            Some(b) => !matches!(b.management(), FastLevelManagement::None),
            None => !matches!(self, Design::FsDram),
        }
    }

    /// Whether the design migrates rows dynamically.
    pub fn is_dynamic(self) -> bool {
        match self.backend() {
            Some(b) => !matches!(b.management(), FastLevelManagement::None),
            None => matches!(self, Design::DasDramFm | Design::DasInclusive),
        }
    }

    /// Whether the design manages the fast level as an inclusive cache.
    pub fn is_inclusive(self) -> bool {
        match self.backend() {
            Some(b) => matches!(b.management(), FastLevelManagement::Inclusive),
            None => matches!(self, Design::DasInclusive),
        }
    }

    /// Usable data rows per bank when the architecture trades capacity for
    /// latency (CLR-DRAM); `None` means full capacity.
    pub fn usable_rows_per_bank(self, layout: &BankLayout) -> Option<u64> {
        self.backend().and_then(|b| b.usable_rows(layout))
    }

    /// Adjusts a configuration for designs with non-Table-1 organisations
    /// (e.g. TL-DRAM's 128-row near / 384-row far segments at ratio 1/4),
    /// applying the backend's placement spec where one exists.
    pub fn apply_overrides(self, cfg: &mut SystemConfig) {
        let Some(b) = self.backend() else { return };
        let p = b.placement();
        if let Some(r) = p.fast_ratio {
            cfg.management.fast_ratio = r;
        }
        if let Some(g) = p.group_size {
            cfg.management.group_size = g;
        }
        if let Some(a) = p.arrangement {
            cfg.arrangement = a;
        }
        if let Some(s) = p.slow_subarray_rows {
            cfg.slow_subarray_rows = s;
        }
        if p.salp {
            cfg.salp = true;
        }
    }

    /// Whether the design needs a profiling pre-pass (static placement).
    pub fn needs_profile(self) -> bool {
        matches!(self, Design::SasDram | Design::Charm)
    }
}

/// Complete system configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Capacity scale factor relative to the paper's Table 1 (see module
    /// docs). 1 = full scale.
    pub scale: u32,
    /// DRAM organisation.
    pub geometry: DramGeometry,
    /// Cache hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// Core shape.
    pub core: CoreConfig,
    /// Memory-controller shape.
    pub controller: ControllerConfig,
    /// Management mechanism configuration (group size, ratio, tcache,
    /// threshold, replacement). `tcache_bytes` here is the **full-scale**
    /// value; it is divided by `scale` when the manager is built.
    pub management: ManagementConfig,
    /// Physical arrangement of fast subarrays.
    pub arrangement: Arrangement,
    /// Rows per fast subarray (128 in the paper).
    pub fast_subarray_rows: u32,
    /// Rows per slow subarray (512 in the paper; 384 for TL-DRAM far
    /// segments so each [near, far] pair tiles one 512-row subarray).
    pub slow_subarray_rows: u32,
    /// Instructions each core executes.
    pub inst_budget: u64,
    /// Fraction of instructions treated as warm-up (paper: 0.2).
    pub warmup_frac: f64,
    /// Horizon multiplier for the SAS/CHARM profiling pre-pass: the static
    /// profile covers `profile_multiplier x inst_budget` instructions. The
    /// paper profiles whole workloads, far longer than the measured
    /// episode, which is why static placement cannot track phases.
    pub profile_multiplier: u64,
    /// Fraction of pages whose physical frames differ between the profiling
    /// execution and the measured run (OS reallocation across executions);
    /// limits how well the static designs' pre-placement can perform.
    pub profile_realloc: f64,
    /// Whether write-backs count as slow-level hits for the promotion
    /// trigger (§5.3's "every hit on the slow level" is read as demand
    /// hits; write-back-triggered promotions only churn streams).
    pub promote_on_writes: bool,
    /// Overrides the design's device timing set (used by the migration
    /// ablation to study naive 3x1.5 tRC swaps, untightened 2 tRC
    /// migrations, or hop-dependent costs).
    pub timing_override: Option<das_dram::timing::TimingSet>,
    /// Enable refresh modelling.
    pub refresh: bool,
    /// Subarray-level parallelism (one local row buffer per subarray —
    /// the SALP composition of §8). Off in the paper's evaluation.
    pub salp: bool,
    /// Master seed (workloads, replacement randomness).
    pub seed: u64,
    /// Deterministic fault-injection plan (see `das-faults`). The default
    /// (`FaultPlan::none()`) injects nothing and draws nothing, leaving
    /// fault-free runs bit-identical to a build without the fault layer.
    pub faults: das_faults::FaultPlan,
    /// Run the management-layer consistency checker (exclusive-cache
    /// invariant + translation-cache/device agreement) every this many
    /// events; 0 disables periodic checking. A failed check triggers a
    /// translation-cache rebuild; an unrecoverable one ends the run with
    /// [`crate::system::SimError::BrokenInvariant`].
    pub invariant_check_events: u64,
    /// Telemetry sink configuration (latency histograms, epoch time-series,
    /// event trace). The default is off, which leaves the run bit-identical
    /// to a build without the telemetry layer.
    pub telemetry: TelemetryConfig,
    /// Stage-profiler configuration (wall-clock sampling of the event
    /// loop's major phases). The default is off, which leaves the run
    /// bit-identical to a build without the profiling layer; unlike the
    /// telemetry sinks this measures *host* time, so its output is
    /// perf-diagnostic only and never enters RunMetrics or any artifact.
    pub stage_profile: StageProfilerConfig,
    /// Event budget after which a run is declared runaway
    /// ([`crate::system::SimError::EventBudgetExceeded`]). The default
    /// covers the paper's figure suite; long harness sweeps and stress
    /// manifests raise it per run instead of recompiling.
    pub event_budget: u64,
    /// Same-tick controller wakes tolerated before the watchdog declares
    /// the event loop stalled ([`crate::system::SimError::Stalled`]).
    pub watchdog_same_tick_wakes: u32,
    /// Online migration policy installed into the exclusive-cache manager
    /// (see `das-policy`). `None` — the default — runs the paper's fixed
    /// promote-at-threshold path, byte-identical to a build without the
    /// policy layer; `Some(PaperFixed)` makes the same decisions through
    /// the policy trait (locked by `tests/policy_identity.rs`). Only
    /// meaningful for designs with dynamic exclusive management.
    pub policy: Option<das_policy::PolicyKind>,
}

impl SystemConfig {
    /// The paper's Table 1 system at full scale.
    pub fn paper_full() -> Self {
        SystemConfig {
            scale: 1,
            geometry: DramGeometry::paper_full(),
            hierarchy: HierarchyConfig::paper_default(),
            core: CoreConfig::paper_default(),
            controller: ControllerConfig::paper_default(),
            management: ManagementConfig::paper_default(),
            arrangement: Arrangement::ReducedInterleaving,
            fast_subarray_rows: 128,
            slow_subarray_rows: 512,
            inst_budget: 100_000_000,
            warmup_frac: 0.2,
            profile_multiplier: 4,
            profile_realloc: 0.7,
            promote_on_writes: false,
            timing_override: None,
            refresh: true,
            salp: false,
            seed: 42,
            faults: das_faults::FaultPlan::none(),
            invariant_check_events: 0,
            telemetry: TelemetryConfig::default(),
            stage_profile: StageProfilerConfig::default(),
            event_budget: crate::system::DEFAULT_EVENT_BUDGET,
            watchdog_same_tick_wakes: crate::system::DEFAULT_WATCHDOG_SAME_TICK_WAKES,
            policy: None,
        }
    }

    /// The default experiment configuration: capacities scaled by 64,
    /// 3 M instructions per core. The uniform factor keeps every capacity
    /// ratio of the paper (footprint : fast level : LLC) while making the
    /// episode-length-to-footprint ratio (~3 insts/byte for libquantum)
    /// match the paper's 100 M-instruction runs, so temporal row reuse —
    /// the effect DAS exploits — appears at the paper's rates.
    pub fn paper_scaled() -> Self {
        Self::scaled_by(64, 3_000_000)
    }

    /// A smaller configuration for unit/integration tests.
    pub fn test_small() -> Self {
        let mut c = Self::scaled_by(64, 400_000);
        c.refresh = false;
        c
    }

    /// Scales every capacity of the paper system by `factor` and sets the
    /// per-core instruction budget.
    pub fn scaled_by(factor: u32, inst_budget: u64) -> Self {
        let mut c = Self::paper_full();
        c.scale = factor;
        c.geometry = DramGeometry::paper_scaled(factor);
        c.hierarchy = HierarchyConfig::paper_scaled(factor as u64);
        c.inst_budget = inst_budget;
        c
    }

    /// The effective (scaled) translation cache capacity in bytes.
    pub fn scaled_tcache_bytes(&self) -> u64 {
        (self.management.tcache_bytes / self.scale as u64).max(self.management.tcache_ways as u64)
    }

    /// Builds the per-bank layout for an asymmetric design.
    pub fn bank_layout(&self) -> BankLayout {
        BankLayout::build(
            self.geometry.rows_per_bank,
            self.management.fast_ratio,
            self.arrangement,
            self.fast_subarray_rows,
            self.slow_subarray_rows,
        )
    }

    /// A homogeneous (all one kind) layout for Standard/FS designs, built
    /// as "all slow" — the timing set decides the actual speed.
    pub fn homogeneous_layout(&self) -> BankLayout {
        // The same layout machinery; a homogeneous TimingSet makes fast ==
        // slow, so the nominal classification is inert.
        self.bank_layout()
    }

    /// Instructions after which measurement starts.
    pub fn warmup_insts(&self) -> u64 {
        (self.inst_budget as f64 * self.warmup_frac) as u64
    }

    /// Management configuration with the scaled translation cache.
    pub fn scaled_management(&self, static_mapping: bool) -> ManagementConfig {
        ManagementConfig {
            tcache_bytes: self.scaled_tcache_bytes(),
            static_mapping,
            seed: self.seed,
            ..self.management
        }
    }

    /// Convenience: install an online migration policy.
    pub fn with_policy(mut self, kind: das_policy::PolicyKind) -> Self {
        self.policy = Some(kind);
        self
    }

    /// Convenience: set the replacement policy.
    pub fn with_replacement(mut self, p: ReplacementPolicy) -> Self {
        self.management.replacement = p;
        self
    }

    /// Convenience: set the fast-level ratio.
    pub fn with_fast_ratio(mut self, r: FastRatio) -> Self {
        self.management.fast_ratio = r;
        self
    }

    /// Convenience: set the promotion threshold.
    pub fn with_threshold(mut self, t: u32) -> Self {
        self.management.promotion_threshold = t;
        self
    }

    /// Convenience: set the migration group size.
    pub fn with_group_size(mut self, g: u32) -> Self {
        self.management.group_size = g;
        self
    }

    /// Convenience: set the full-scale translation-cache capacity.
    pub fn with_tcache_bytes(mut self, b: u64) -> Self {
        self.management.tcache_bytes = b;
        self
    }

    /// Convenience: set the scheduler kind.
    pub fn with_scheduler(mut self, s: SchedulerKind) -> Self {
        self.controller.scheduler = s;
        self
    }

    /// Convenience: set the fault-injection plan.
    pub fn with_faults(mut self, plan: das_faults::FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Convenience: run the consistency checker every `n` events (0 = off).
    pub fn with_invariant_checks(mut self, n: u64) -> Self {
        self.invariant_check_events = n;
        self
    }

    /// Convenience: set the telemetry sink configuration.
    pub fn with_telemetry(mut self, t: TelemetryConfig) -> Self {
        self.telemetry = t;
        self
    }

    /// Convenience: set the stage-profiler configuration.
    pub fn with_stage_profile(mut self, p: StageProfilerConfig) -> Self {
        self.stage_profile = p;
        self
    }

    /// Convenience: set the runaway-event budget.
    pub fn with_event_budget(mut self, events: u64) -> Self {
        self.event_budget = events;
        self
    }

    /// Convenience: set the same-tick-wake watchdog threshold.
    pub fn with_watchdog_wakes(mut self, wakes: u32) -> Self {
        self.watchdog_same_tick_wakes = wakes;
        self
    }

    /// Ticks per CPU cycle under this configuration.
    pub fn ticks_per_cycle(&self) -> u64 {
        self.core.ticks_per_cycle
    }

    /// Converts CPU cycles to ticks.
    pub fn cycles_to_ticks(&self, cycles: u64) -> Tick {
        Tick::new(cycles * self.core.ticks_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_full_matches_table1() {
        let c = SystemConfig::paper_full();
        assert_eq!(c.geometry.total_bytes(), 8 << 30);
        assert_eq!(c.hierarchy.llc_bytes, 4 << 20);
        assert_eq!(c.core.rob_entries, 192);
        assert_eq!(c.controller.read_queue, 32);
        assert_eq!(c.management.group_size, 32);
        assert_eq!(c.management.tcache_bytes, 128 << 10);
        assert_eq!(c.inst_budget, 100_000_000);
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = SystemConfig::paper_scaled();
        assert_eq!(c.scale, 64);
        assert_eq!(c.geometry.total_bytes(), 128 << 20);
        assert_eq!(c.hierarchy.llc_bytes, 64 << 10);
        // tcache still covers the whole fast level after scaling:
        // 128 MB / 8 KB rows / 8 = 2 Ki fast rows; 128 KB / 64 = 2 KiB.
        assert_eq!(c.scaled_tcache_bytes(), 2 << 10);
        let fast_rows = c.geometry.total_rows() / 8;
        assert_eq!(c.scaled_tcache_bytes(), fast_rows);
    }

    #[test]
    fn design_properties() {
        assert!(!Design::Standard.is_asymmetric());
        assert!(Design::SasDram.is_asymmetric() && !Design::SasDram.is_dynamic());
        assert!(Design::Charm.needs_profile());
        assert!(Design::DasDram.is_dynamic() && !Design::DasDram.needs_profile());
        assert!(Design::DasDramFm.timing().swap == Tick::ZERO);
        assert_eq!(Design::all().len(), 6);
        assert_eq!(Design::DasDram.label(), "DAS-DRAM");
    }

    #[test]
    fn backend_designs_delegate_to_the_registry() {
        use das_dram::timing::TimingSet;
        assert_eq!(Design::backends().len(), 6);
        assert_eq!(Design::backends()[0], Design::Standard);
        // The refactor lock: backend-backed designs produce the exact
        // timing sets the hard-wired match used to.
        assert_eq!(Design::Standard.timing(), TimingSet::homogeneous_slow());
        assert_eq!(Design::DasDram.timing(), TimingSet::asymmetric());
        assert_eq!(Design::TlDram.timing(), TimingSet::tl_dram());
        assert_eq!(Design::ClrDram.timing(), TimingSet::clr_dram());
        assert_eq!(Design::Lisa.timing(), TimingSet::lisa());
        assert_eq!(Design::Salp.timing(), TimingSet::homogeneous_slow());
        // Probe designs have no backend.
        for d in [
            Design::SasDram,
            Design::Charm,
            Design::DasDramFm,
            Design::FsDram,
            Design::DasInclusive,
        ] {
            assert!(d.backend_kind().is_none());
        }
        // Management classification.
        assert!(Design::Lisa.is_asymmetric() && Design::Lisa.is_dynamic());
        assert!(Design::ClrDram.is_dynamic() && !Design::ClrDram.is_inclusive());
        assert!(!Design::Salp.is_asymmetric() && !Design::Salp.is_dynamic());
        assert!(Design::TlDram.is_inclusive());
        for d in Design::backends() {
            assert!(!d.needs_profile());
        }
    }

    #[test]
    fn overrides_follow_backend_placement() {
        let mut cfg = SystemConfig::test_small();
        Design::Salp.apply_overrides(&mut cfg);
        assert!(cfg.salp);
        assert_eq!(cfg.management.fast_ratio, FastRatio::PAPER_DEFAULT);
        let mut cfg = SystemConfig::test_small();
        Design::TlDram.apply_overrides(&mut cfg);
        assert_eq!(cfg.management.fast_ratio, FastRatio::new(1, 4));
        assert_eq!(cfg.management.group_size, 64);
        assert_eq!(cfg.arrangement, Arrangement::Interleaving);
        assert_eq!(cfg.slow_subarray_rows, 384);
        // CLR and LISA leave the geometry free for sweeps.
        let before = SystemConfig::test_small();
        let mut cfg = SystemConfig::test_small();
        Design::ClrDram.apply_overrides(&mut cfg);
        Design::Lisa.apply_overrides(&mut cfg);
        assert_eq!(cfg.management.fast_ratio, before.management.fast_ratio);
        assert!(!cfg.salp);
    }

    #[test]
    fn clr_capacity_loss_is_the_fast_share() {
        let cfg = SystemConfig::test_small();
        let layout = cfg.bank_layout();
        let usable = Design::ClrDram.usable_rows_per_bank(&layout).unwrap();
        assert_eq!(usable, layout.slow_rows() as u64);
        assert!(Design::DasDram.usable_rows_per_bank(&layout).is_none());
        assert!(Design::Standard.usable_rows_per_bank(&layout).is_none());
    }

    #[test]
    fn watchdog_and_event_budget_are_configurable() {
        let c = SystemConfig::paper_full();
        assert_eq!(c.event_budget, crate::system::DEFAULT_EVENT_BUDGET);
        assert_eq!(
            c.watchdog_same_tick_wakes,
            crate::system::DEFAULT_WATCHDOG_SAME_TICK_WAKES
        );
        let raised = c.with_event_budget(500_000_000).with_watchdog_wakes(50_000);
        assert_eq!(raised.event_budget, 500_000_000);
        assert_eq!(raised.watchdog_same_tick_wakes, 50_000);
    }

    #[test]
    fn layouts_build_for_all_sweeps() {
        for den in [4u32, 8, 16, 32] {
            let c = SystemConfig::test_small().with_fast_ratio(FastRatio::new(1, den));
            let l = c.bank_layout();
            assert_eq!(l.fast_rows(), c.geometry.rows_per_bank / den);
        }
    }
}
