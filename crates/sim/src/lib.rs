//! # das-sim — full-system simulator and experiment runners
//!
//! Ties every substrate of the DAS-DRAM reproduction together: trace-driven
//! out-of-order cores (`das-cpu`), the Table 1 cache hierarchy
//! (`das-cache`), the §5 management mechanism (`das-core`), per-channel
//! FR-FCFS memory controllers (`das-memctrl`) and the command-level DRAM
//! device (`das-dram`), driven by a global event queue.
//!
//! * [`config`] — [`config::SystemConfig`] (Table 1) and the six
//!   [`config::Design`]s of §7;
//! * [`system`] — the event-driven [`system::System`];
//! * [`experiments`] — profiling pre-pass, suite runners and the
//!   improvement metric;
//! * [`stats`] — everything the paper's figures report;
//! * [`report`] — machine-readable JSON run reports (metrics + telemetry).
//!
//! Telemetry (latency histograms, the epoch time-series and the Chrome
//! trace export) lives in `das-telemetry`; enable it per run with
//! [`config::SystemConfig::with_telemetry`] and collect it through
//! [`system::System::run_instrumented`] or
//! [`experiments::run_one_instrumented`].
//!
//! # Examples
//!
//! ```no_run
//! use das_sim::config::{Design, SystemConfig};
//! use das_sim::experiments::{improvement, run_one};
//! use das_workloads::spec;
//!
//! let cfg = SystemConfig::test_small();
//! let wl = vec![spec::by_name("mcf")];
//! let base = run_one(&cfg, Design::Standard, &wl).expect("baseline run");
//! let das = run_one(&cfg, Design::DasDram, &wl).expect("DAS run");
//! println!("DAS-DRAM improvement: {:+.2}%", improvement(&das, &base) * 100.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod experiments;
pub mod report;
pub mod stats;
pub mod system;

pub use config::{Design, SystemConfig};
pub use experiments::{
    improvement, profile_row_counts, run_one, run_one_instrumented, run_recorded, run_suite,
};
pub use report::{metrics_to_value, run_report, run_report_json};
pub use stats::{AccessMix, CoreMetrics, EnergyBreakdown, EnergyModel, RunMetrics};
pub use system::{AddressMap, SimError, System, TraceSource};
