use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{improvement, run_one};
use das_workloads::spec;

fn main() {
    let mut cfg = SystemConfig::paper_scaled();
    cfg.inst_budget = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3_000_000);
    for bench in [
        "astar",
        "cactusADM",
        "GemsFDTD",
        "lbm",
        "leslie3d",
        "libquantum",
        "mcf",
        "milc",
        "omnetpp",
        "soplex",
    ] {
        let wl = vec![spec::by_name(bench)];
        let base = run_one(&cfg, Design::Standard, &wl).expect("baseline run");
        for d in [
            Design::SasDram,
            Design::DasDram,
            Design::DasDramFm,
            Design::FsDram,
        ] {
            let m = run_one(&cfg, d, &wl).expect("design run");
            let (rb, f, s) = m.access_mix.fractions();
            println!(
                "{bench:12} {:14} imp={:+6.2}% ipc={:.3} mpki={:5.1} promos={:6} ppkm={:7.1} rb/f/s={:.2}/{:.2}/{:.2} tfetch={} tc_hit={} tc_miss={}",
                m.design, improvement(&m, &base) * 100.0, m.ipc(), m.mpki(), m.promotions,
                m.ppkm(), rb, f, s, m.table_fetch_reads, m.translation.hits, m.translation.misses,
            );
        }
        let (rb, f, s) = base.access_mix.fractions();
        println!(
            "{bench:12} {:14} ipc={:.3} mpki={:5.1} rb/f/s={:.2}/{:.2}/{:.2}\n",
            base.design,
            base.ipc(),
            base.mpki(),
            rb,
            f,
            s
        );
    }
}
