//! Stage-profiler behaviour of the full system: an Off profiler leaves
//! runs bit-identical to unprofiled ones (including the serialized run
//! report), an On profiler never perturbs the simulated results, and the
//! report it produces covers every probed stage with shares summing to
//! one.

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{run_one, run_one_profiled};
use das_sim::report::run_report_json;
use das_sim::stats::RunMetrics;
use das_telemetry::{json, Stage, StageProfilerConfig, TelemetryConfig};
use das_workloads::spec;

fn mcf() -> Vec<das_workloads::config::WorkloadConfig> {
    vec![spec::by_name("mcf")]
}

fn fingerprint(m: &RunMetrics) -> impl PartialEq + std::fmt::Debug {
    (
        m.access_mix,
        m.promotions,
        m.memory_accesses,
        m.llc_misses,
        m.table_fetch_reads,
        m.window_cycles,
        m.cores
            .iter()
            .map(|c| (c.insts, c.cycles, c.llc_misses))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn off_profiler_is_bit_identical_and_reports_nothing() {
    let cfg = SystemConfig::test_small();
    let base = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let (res, tel, stages) = run_one_profiled(&cfg, Design::DasDram, &mcf());
    let off = res.unwrap();
    assert!(stages.is_none(), "Off profiler must not produce a report");
    assert_eq!(fingerprint(&base), fingerprint(&off));
    // The serialized run report is the artifact downstream consumers hash;
    // it must be byte-identical with the profiler compiled in but off.
    assert_eq!(
        run_report_json(&base, None),
        run_report_json(&off, tel.as_ref()),
        "run report bytes must not change when profiling is off"
    );
}

#[test]
fn on_profiler_does_not_perturb_the_simulation_or_its_report() {
    // The profiler measures host time; it must never steer simulated
    // behaviour, and its data must never leak into the run report.
    let cfg = SystemConfig::test_small();
    let prof = cfg
        .clone()
        .with_stage_profile(StageProfilerConfig::on(16))
        .with_telemetry(TelemetryConfig::on(50_000));
    let base = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let (res, tel, stages) = run_one_profiled(&prof, Design::DasDram, &mcf());
    let on = res.unwrap();
    assert_eq!(fingerprint(&base), fingerprint(&on));
    let stages = stages.expect("On profiler must produce a report");
    let report = run_report_json(&on, tel.as_ref());
    for stage in Stage::ALL {
        assert!(
            stages.occurrences[stage as usize] > 0,
            "stage {} never ran",
            stage.label()
        );
        assert!(
            !report.contains(stage.label()),
            "stage data must not leak into the run report"
        );
    }
    let shares: f64 = stages.shares().iter().sum();
    assert!(
        (shares - 1.0).abs() < 1e-9,
        "stage shares must sum to 1, got {shares}"
    );
    let exported = stages.to_value().render();
    json::validate(&exported).expect("stage export must be valid JSON");
}

#[test]
fn profiled_runs_reproduce_their_simulated_results() {
    // Wall-clock samples differ run to run; everything simulated must not.
    let cfg = SystemConfig::test_small().with_stage_profile(StageProfilerConfig::on(16));
    let (r1, _, s1) = run_one_profiled(&cfg, Design::DasDram, &mcf());
    let (r2, _, s2) = run_one_profiled(&cfg, Design::DasDram, &mcf());
    assert_eq!(fingerprint(&r1.unwrap()), fingerprint(&r2.unwrap()));
    let (s1, s2) = (s1.unwrap(), s2.unwrap());
    // Occurrence counts are event-loop facts, not timings: deterministic.
    assert_eq!(s1.occurrences, s2.occurrences);
    assert_eq!(s1.sample_every, s2.sample_every);
}
