//! Telemetry behaviour of the full system: an Off sink leaves runs
//! bit-identical to uninstrumented ones, an On sink produces deterministic
//! histograms/series/traces whose exports parse, and the epoch series shows
//! DAS-DRAM's fast-activation ratio rising as the warm-up promotes rows.

use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{run_one, run_one_instrumented};
use das_sim::report::run_report_json;
use das_sim::stats::RunMetrics;
use das_telemetry::{json, LatencyClass, TelemetryConfig};
use das_workloads::spec;

fn mcf() -> Vec<das_workloads::config::WorkloadConfig> {
    vec![spec::by_name("mcf")]
}

fn fingerprint(m: &RunMetrics) -> impl PartialEq + std::fmt::Debug {
    (
        m.access_mix,
        m.promotions,
        m.memory_accesses,
        m.llc_misses,
        m.table_fetch_reads,
        m.window_cycles,
        m.cores
            .iter()
            .map(|c| (c.insts, c.cycles, c.llc_misses))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn off_sink_is_bit_identical_and_reports_nothing() {
    let cfg = SystemConfig::test_small();
    let base = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let (res, report) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    let off = res.unwrap();
    assert!(report.is_none(), "Off sink must not produce a report");
    assert_eq!(fingerprint(&base), fingerprint(&off));
}

#[test]
fn on_sink_does_not_perturb_the_simulation() {
    // The sink observes; it must never steer. Metrics with telemetry on are
    // bit-identical to metrics with it off.
    let cfg = SystemConfig::test_small();
    let inst = cfg.clone().with_telemetry(TelemetryConfig::on(50_000));
    let base = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let (res, report) = run_one_instrumented(&inst, Design::DasDram, &mcf());
    let on = res.unwrap();
    assert_eq!(fingerprint(&base), fingerprint(&on));
    let report = report.expect("On sink must produce a report");
    assert!(
        report.merged.total_count() > 0,
        "latencies must be recorded"
    );
    assert!(
        !report.series.samples().is_empty(),
        "epochs must be sampled"
    );
}

#[test]
fn instrumented_runs_are_deterministic() {
    let cfg = SystemConfig::test_small().with_telemetry(TelemetryConfig::on(50_000));
    let (r1, t1) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    let (r2, t2) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    assert_eq!(fingerprint(&r1.unwrap()), fingerprint(&r2.unwrap()));
    let (t1, t2) = (t1.unwrap(), t2.unwrap());
    assert_eq!(
        t1.series.samples(),
        t2.series.samples(),
        "epoch series must reproduce"
    );
    assert_eq!(
        t1.trace.events(),
        t2.trace.events(),
        "event traces must reproduce"
    );
    for class in LatencyClass::ALL {
        assert_eq!(
            t1.merged.class(class).nonzero_buckets(),
            t2.merged.class(class).nonzero_buckets(),
            "histograms must reproduce ({})",
            class.label()
        );
    }
}

#[test]
fn das_warmup_raises_the_fast_activation_ratio() {
    let cfg = SystemConfig::test_small().with_telemetry(TelemetryConfig::on(50_000));
    let (res, report) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    let m = res.unwrap();
    assert!(m.promotions > 0, "DAS must promote rows");
    let report = report.unwrap();
    let samples = report.series.samples();
    assert!(samples.len() >= 4, "need several epochs: {}", samples.len());
    // Promotions fill the fast level over time: the average fast ratio of
    // the later half of the run must exceed the first epoch's.
    let first = samples[0].fast_ratio;
    let later: Vec<f64> = samples[samples.len() / 2..]
        .iter()
        .map(|s| s.fast_ratio)
        .collect();
    let later_avg = later.iter().sum::<f64>() / later.len() as f64;
    assert!(
        later_avg > first,
        "fast ratio must rise during warm-up: first {first:.3}, later avg {later_avg:.3}"
    );
    // Swap spans must appear in the trace once promotions happened.
    assert!(
        report.trace.count_named("swap") > 0,
        "committed swaps must be traced"
    );
}

#[test]
fn exports_parse_and_carry_percentiles() {
    let cfg = SystemConfig::test_small().with_telemetry(TelemetryConfig::on(50_000));
    let (res, report) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    let m = res.unwrap();
    let report = report.unwrap();

    let trace_json = report.chrome_trace_json();
    json::validate(&trace_json).unwrap();
    assert!(trace_json.contains("\"traceEvents\""));
    assert!(
        trace_json.contains("\"ph\":\"C\""),
        "epoch counters exported"
    );

    let report_json = run_report_json(&m, Some(&report));
    json::validate(&report_json).unwrap();
    for label in ["row_buffer", "fast", "slow"] {
        assert!(
            report_json.contains(&format!("\"{label}\":{{\"count\"")),
            "class {label}"
        );
    }
    for p in ["\"p50\"", "\"p95\"", "\"p99\""] {
        assert!(report_json.contains(p), "percentile {p} present");
    }
    // Slow activations pay the longer restore: their median latency cannot
    // be below the fast median on an asymmetric design.
    let fast = report.merged.class(LatencyClass::FastMiss);
    let slow = report.merged.class(LatencyClass::SlowMiss);
    if fast.count() > 100 && slow.count() > 100 {
        assert!(
            slow.percentile(50.0) >= fast.percentile(50.0),
            "slow p50 {} < fast p50 {}",
            slow.percentile(50.0),
            fast.percentile(50.0)
        );
    }
}

#[test]
fn faulted_instrumented_run_traces_recovery() {
    let cfg = SystemConfig::test_small()
        .with_faults(das_faults::FaultPlan::uniform(42, 0.02))
        .with_invariant_checks(5_000)
        .with_telemetry(TelemetryConfig::on(50_000));
    let (res, report) = run_one_instrumented(&cfg, Design::DasDram, &mcf());
    let m = res.unwrap();
    assert!(m.faults.total_injected() > 0);
    let report = report.unwrap();
    // Fault counters must surface in the epoch series.
    let total_faults: u64 = report
        .series
        .samples()
        .iter()
        .map(|s| s.counters.faults_injected)
        .sum();
    assert!(total_faults > 0, "epoch series must carry fault deltas");
    json::validate(&report.chrome_trace_json()).unwrap();
}
