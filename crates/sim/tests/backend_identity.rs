//! Refactor lock for the `das-backends` family: routing the paper's
//! designs through the `DramBackend` trait must not change a single output
//! byte.
//!
//! The pre-refactor path is still reachable: `cfg.timing_override`
//! bypasses `Design::timing()` (and therefore the backend registry)
//! entirely, feeding the constraint engine the hand-constructed
//! `TimingSet` exactly as the old hard-wired match did. Every comparison
//! here pins the trait-resolved run against that bypass, byte for byte,
//! over a pinned job set.

use das_dram::timing::TimingSet;
use das_faults::FaultPlan;
use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::{run_one, run_one_instrumented};
use das_sim::report::run_report;
use das_telemetry::TelemetryConfig;
use das_workloads::{config::WorkloadConfig, spec};

/// The pinned job set: one streaming and one pointer-chasing benchmark.
const PINNED: [&str; 2] = ["libquantum", "mcf"];

fn wl(name: &str) -> Vec<WorkloadConfig> {
    vec![spec::by_name(name)]
}

/// Full report bytes — every metric, mix counter, energy figure and core
/// stat the harness ever journals.
fn report_bytes(cfg: &SystemConfig, design: Design, name: &str) -> String {
    let m = run_one(cfg, design, &wl(name)).expect("run completes");
    run_report(&m, None).render()
}

#[test]
fn backend_timing_sets_match_the_pre_refactor_constants() {
    // The constants the hard-wired match used to return, asserted against
    // the trait path for every design that now resolves through it.
    assert_eq!(Design::Standard.timing(), TimingSet::homogeneous_slow());
    assert_eq!(Design::DasDram.timing(), TimingSet::asymmetric());
    assert_eq!(Design::TlDram.timing(), TimingSet::tl_dram());
    // Probe designs kept their bespoke sets.
    assert_eq!(Design::SasDram.timing(), TimingSet::asymmetric());
    assert_eq!(Design::Charm.timing(), TimingSet::charm());
    assert_eq!(
        Design::DasDramFm.timing(),
        TimingSet::asymmetric_free_migration()
    );
    assert_eq!(Design::FsDram.timing(), TimingSet::homogeneous_fast());
    assert_eq!(Design::DasInclusive.timing(), TimingSet::asymmetric());
}

#[test]
fn das_through_the_trait_is_byte_identical() {
    let cfg = SystemConfig::test_small();
    for name in PINNED {
        // Trait-resolved run vs. the pre-refactor bypass.
        let trait_path = report_bytes(&cfg, Design::DasDram, name);
        let mut bypass_cfg = cfg.clone();
        bypass_cfg.timing_override = Some(TimingSet::asymmetric());
        let bypass = report_bytes(&bypass_cfg, Design::DasDram, name);
        assert_eq!(
            trait_path, bypass,
            "{name}: DAS through DramBackend must reproduce the hard-wired \
             timing path byte for byte"
        );
    }
}

#[test]
fn das_telemetry_through_the_trait_is_byte_identical() {
    let cfg = SystemConfig::test_small().with_telemetry(TelemetryConfig::on(50_000));
    let mut bypass_cfg = cfg.clone();
    bypass_cfg.timing_override = Some(TimingSet::asymmetric());
    for name in PINNED {
        let (m, tel) = run_one_instrumented(&cfg, Design::DasDram, &wl(name));
        let (bm, btel) = run_one_instrumented(&bypass_cfg, Design::DasDram, &wl(name));
        let a = run_report(&m.expect("run completes"), tel.as_ref()).render();
        let b = run_report(&bm.expect("run completes"), btel.as_ref()).render();
        assert_eq!(
            a, b,
            "{name}: telemetry (histograms, epochs, trace counts) must be \
             unchanged by the backend refactor"
        );
    }
}

#[test]
fn rate_zero_faults_stay_bit_identical_through_the_trait() {
    let clean = SystemConfig::test_small();
    // A rate-0 plan with a live seed draws nothing; through the trait it
    // must still be indistinguishable from no plan at all.
    let zeroed = clean.clone().with_faults(FaultPlan {
        seed: 0xdead_beef,
        ..FaultPlan::none()
    });
    for design in [Design::DasDram, Design::ClrDram, Design::Lisa] {
        let a = report_bytes(&clean, design, "mcf");
        let b = report_bytes(&zeroed, design, "mcf");
        assert_eq!(a, b, "{design:?}: rate-0 faults must not perturb output");
    }
}

#[test]
fn new_backends_complete_with_coherent_metrics() {
    let cfg = SystemConfig::test_small();
    for design in [Design::ClrDram, Design::Lisa, Design::Salp] {
        let m = run_one(&cfg, design, &wl("libquantum")).expect("run completes");
        assert!(m.cores[0].ipc() > 0.0, "{design:?} makes progress");
        assert!(m.memory_accesses > 0);
        match design {
            // LISA's cheap copies promote aggressively.
            Design::Lisa => assert!(m.promotions > 0, "LISA promotes rows"),
            // SALP has no fast level: nothing to promote, every miss slow.
            Design::Salp => {
                assert_eq!(m.promotions, 0);
                assert_eq!(m.access_mix.fast, 0);
                assert!(m.access_mix.slow > 0);
            }
            _ => assert!(m.promotions > 0, "{design:?} promotes rows"),
        }
    }
}

#[test]
fn lisa_is_das_machinery_with_a_cheaper_cost_model() {
    // LISA reuses the DAS migration machinery wholesale; only the copy
    // cost differs. Running the DAS design with LISA's TimingSet forced
    // through the override must reproduce the LISA backend byte for byte —
    // proving the backend changed the cost model and nothing else.
    let cfg = SystemConfig::test_small();
    let mut das_as_lisa_cfg = cfg.clone();
    das_as_lisa_cfg.timing_override = Some(TimingSet::lisa());
    // The reports differ only in the leading design label; everything
    // after the workload key (all metrics, mixes, energy) must be equal.
    let body = |report: String| {
        let at = report.find("\"workload\"").expect("report has a workload");
        report[at..].to_string()
    };
    for name in PINNED {
        let lisa = body(report_bytes(&cfg, Design::Lisa, name));
        let das_as_lisa = body(report_bytes(&das_as_lisa_cfg, Design::DasDram, name));
        assert_eq!(
            lisa, das_as_lisa,
            "{name}: LISA == DAS + linked-bitline copy cost"
        );
    }
    // And the cost model really is different: same device, cheaper swaps.
    let das = TimingSet::asymmetric();
    let lisa = TimingSet::lisa();
    assert_eq!(lisa.slow, das.slow);
    assert_eq!(lisa.fast, das.fast);
    assert!(lisa.swap < das.swap);
}

#[test]
fn clr_dram_shrinks_the_visible_address_space() {
    // CLR-DRAM's capacity hook: the same workload must still fit (the
    // address map packs it into fewer usable rows) and the run completes
    // with a fast-class share, unlike the baseline.
    let cfg = SystemConfig::test_small();
    let m = run_one(&cfg, Design::ClrDram, &wl("mcf")).expect("clr run");
    assert!(m.access_mix.fast > 0, "morphed rows serve fast accesses");
    let std = run_one(&cfg, Design::Standard, &wl("mcf")).expect("std run");
    assert_eq!(std.access_mix.fast, 0);
}
