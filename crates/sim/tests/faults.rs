//! Fault-injection behaviour of the full system: rate-0 plans are
//! bit-identical to no injection, nonzero plans complete without panicking
//! and account every injected fault, and equal plans reproduce equal runs.

use das_faults::{FaultPlan, FaultSite};
use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::run_one;
use das_sim::stats::RunMetrics;
use das_workloads::spec;

fn mcf() -> Vec<das_workloads::config::WorkloadConfig> {
    vec![spec::by_name("mcf")]
}

/// The deterministic fields worth comparing across runs (RunMetrics holds
/// floats only in derived/energy form, all computed from these).
fn fingerprint(m: &RunMetrics) -> impl PartialEq + std::fmt::Debug {
    (
        m.access_mix,
        m.promotions,
        m.memory_accesses,
        m.llc_misses,
        m.table_fetch_reads,
        m.window_cycles,
        m.cores
            .iter()
            .map(|c| (c.insts, c.cycles, c.llc_misses))
            .collect::<Vec<_>>(),
    )
}

#[test]
fn rate_zero_plan_is_bit_identical_to_no_injection() {
    let cfg = SystemConfig::test_small();
    // A zeroed plan with a nonzero seed must not perturb anything: rate-0
    // sites never draw from their streams.
    let zeroed = cfg.clone().with_faults(FaultPlan {
        seed: 0xdead_beef,
        ..FaultPlan::none()
    });
    let base = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let faulted = run_one(&zeroed, Design::DasDram, &mcf()).unwrap();
    assert_eq!(fingerprint(&base), fingerprint(&faulted));
    assert_eq!(faulted.faults.total_injected(), 0);
}

#[test]
fn nonzero_plan_completes_and_accounts_faults() {
    let cfg = SystemConfig::test_small()
        .with_faults(FaultPlan::uniform(42, 0.02))
        .with_invariant_checks(5_000);
    let m = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    assert!(m.ipc() > 0.0, "faulted run must still make progress");
    assert!(
        m.faults.total_injected() > 0,
        "2% uniform rate must fire: {:?}",
        m.faults
    );
    // The demand-read path is the hottest site; retention flips must both
    // fire and be masked by the bounded re-read policy.
    let flips = m.faults.site(FaultSite::RetentionFlip);
    assert!(flips.injected > 0, "retention flips must fire on fast rows");
    assert!(flips.retried > 0, "flips must trigger re-reads");
    assert!(
        m.faults.invariant_checks_passed > 0,
        "periodic audits must run"
    );
}

#[test]
fn equal_plans_reproduce_equal_runs() {
    let cfg = SystemConfig::test_small()
        .with_faults(FaultPlan::uniform(7, 0.01))
        .with_invariant_checks(10_000);
    let a = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let b = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.faults, b.faults);
}

#[test]
fn swap_failures_are_retried_or_demoted_without_losing_consistency() {
    // Hammer the swap path specifically: every swap completion rolls the
    // failure dice, so a high rate exercises both the bounded-retry and the
    // demote-on-exhaustion branches.
    let plan = FaultPlan {
        seed: 11,
        swap_failure_rate: 0.5,
        ..FaultPlan::none()
    };
    let cfg = SystemConfig::test_small()
        .with_faults(plan)
        .with_invariant_checks(2_000);
    let m = run_one(&cfg, Design::DasDram, &mcf()).unwrap();
    let swaps = m.faults.site(FaultSite::SwapStep);
    assert!(
        swaps.injected > 0,
        "swap failures must fire: {:?}",
        m.faults
    );
    assert!(swaps.retried > 0, "failed swaps must be retried");
    assert!(
        m.faults.invariant_checks_passed > 0,
        "audits must pass throughout"
    );
}

#[test]
fn inclusive_design_survives_fault_injection() {
    let cfg = SystemConfig::test_small().with_faults(FaultPlan::uniform(3, 0.02));
    let m = run_one(&cfg, Design::DasInclusive, &mcf()).unwrap();
    assert!(m.ipc() > 0.0);
}
