//! Refactor lock for the `das-policy` family: routing promotion decisions
//! through the `MigrationPolicy` trait must not change paper behaviour.
//!
//! Two locks, in decreasing strictness:
//!
//! * the **default** path (`cfg.policy == None`) never constructs a policy
//!   at all — its reports must be byte-identical to pre-policy builds,
//!   which here means "no `policy` key ever appears";
//! * the **PaperFixed** policy re-derives the paper's fixed-threshold
//!   filter decision through the trait — every metric must match the
//!   policy-free run exactly, with the report differing only by the
//!   appended `policy` accounting block.

use das_policy::PolicyKind;
use das_sim::config::{Design, SystemConfig};
use das_sim::experiments::run_one;
use das_sim::report::run_report;
use das_workloads::{config::WorkloadConfig, spec};

/// The pinned job set: one streaming and one pointer-chasing benchmark.
const PINNED: [&str; 2] = ["libquantum", "mcf"];

fn wl(name: &str) -> Vec<WorkloadConfig> {
    vec![spec::by_name(name)]
}

fn report_bytes(cfg: &SystemConfig, design: Design, name: &str) -> String {
    let m = run_one(cfg, design, &wl(name)).expect("run completes");
    run_report(&m, None).render()
}

/// The report with its `policy` accounting block spliced out (unchanged
/// when no policy ran). The block holds no nested objects, so it ends at
/// the first `}` after its opening brace.
fn sans_policy(report: &str) -> String {
    match report.find(",\"policy\":{") {
        Some(at) => {
            let end = report[at..].find('}').expect("block closes") + at + 1;
            format!("{}{}", &report[..at], &report[end..])
        }
        None => report.to_string(),
    }
}

#[test]
fn default_runs_never_grow_a_policy_key() {
    let cfg = SystemConfig::test_small();
    for design in [Design::Standard, Design::DasDram, Design::Lisa] {
        let report = report_bytes(&cfg, design, "mcf");
        assert!(
            !report.contains("\"policy\""),
            "{design:?}: policy-free runs must keep the pre-policy schema"
        );
    }
}

#[test]
fn paper_fixed_through_the_trait_is_byte_identical() {
    let cfg = SystemConfig::test_small();
    let ruled_cfg = cfg.clone().with_policy(PolicyKind::PaperFixed);
    for design in [Design::DasDram, Design::Lisa, Design::ClrDram] {
        for name in PINNED {
            let bare = report_bytes(&cfg, design, name);
            let ruled = report_bytes(&ruled_cfg, design, name);
            assert_eq!(
                bare,
                sans_policy(&ruled),
                "{design:?}/{name}: PaperFixed through MigrationPolicy must \
                 reproduce the fixed-threshold filter byte for byte"
            );
            assert!(
                ruled.contains("\"policy\":{\"policy\":\"paper_fixed\""),
                "{design:?}/{name}: the accounting block is appended"
            );
        }
    }
}

#[test]
fn adaptive_policies_actually_change_decisions() {
    // The trait is not a pass-through: at least one adaptive policy must
    // diverge from the paper's fixed filter on the pinned set (cost-aware
    // demands more reuse before paying a 3 tRC swap).
    let cfg = SystemConfig::test_small();
    let cost_cfg = cfg.clone().with_policy(PolicyKind::CostAware);
    let mut diverged = false;
    for name in PINNED {
        let bare = report_bytes(&cfg, Design::DasDram, name);
        let ruled = report_bytes(&cost_cfg, Design::DasDram, name);
        if bare != sans_policy(&ruled) {
            diverged = true;
        }
    }
    assert!(
        diverged,
        "CostAware must change at least one pinned run, else the policy \
         plumbing is dead code"
    );
}

#[test]
fn coherent_runs_feed_sharing_heat_to_policies_deterministically() {
    // Under the coherent front end, sharing-induced accesses aggregate
    // into per-row heat that adaptive policies read. The wiring must be
    // deterministic (replay-exact) and must leave PaperFixed untouched —
    // the paper's filter never looks at the sharing signal.
    use das_sim::experiments::run_one_coherent;
    use das_workloads::shared::{SharedKind, SharedSpec, Sharing};
    let spec = SharedSpec::new(SharedKind::Lock, 2, Sharing::High);
    let proto = das_coherence::ProtocolKind::Mesi;
    let cfg = SystemConfig::test_small();
    let bare = run_one_coherent(&cfg, Design::DasDram, &spec, proto).expect("run");
    for kind in [PolicyKind::PaperFixed, PolicyKind::CostAware] {
        let ruled_cfg = cfg.clone().with_policy(kind);
        let a = run_one_coherent(&ruled_cfg, Design::DasDram, &spec, proto).expect("run");
        let b = run_one_coherent(&ruled_cfg, Design::DasDram, &spec, proto).expect("run");
        let ra = run_report(&a, None).render();
        assert_eq!(ra, run_report(&b, None).render(), "{kind:?}: replay-exact");
        let p = a.policy.as_ref().expect("policy block present");
        assert!(
            p.promotes > 0 || p.holds > 0,
            "{kind:?}: policy observed traffic"
        );
        if kind == PolicyKind::PaperFixed {
            assert_eq!(
                run_report(&bare, None).render(),
                sans_policy(&ra),
                "sharing heat must not perturb the paper's fixed filter"
            );
        }
    }
}

#[test]
fn policies_are_deterministic_across_repeat_runs() {
    let cfg = SystemConfig::test_small();
    for kind in das_policy::ALL_POLICIES {
        let ruled_cfg = cfg.clone().with_policy(kind);
        let a = report_bytes(&ruled_cfg, Design::DasDram, "mcf");
        let b = report_bytes(&ruled_cfg, Design::DasDram, "mcf");
        assert_eq!(a, b, "{kind:?}: replay must be exact");
    }
}
