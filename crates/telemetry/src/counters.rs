//! Named monotonic counters and numeric-JSON aggregation.
//!
//! [`Counters`] is the dependency-free counter bag the resilience layer
//! uses for client-side retry/hedge accounting: insertion-order-free
//! (BTreeMap) so renders are deterministic, and mergeable so per-shard
//! stats can be summed into a fleet-wide view. [`merge_numeric`] is the
//! structural sibling: it folds two arbitrary stats documents together by
//! summing every numeric leaf, which is exactly what `dasctl stats` over a
//! multi-worker fleet needs — each worker reports the same shape, the
//! aggregate is the field-wise sum.

use std::collections::BTreeMap;

use crate::json::Value;

/// A deterministic bag of named `u64` counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter bag.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name` (creating it at zero first).
    pub fn add(&mut self, name: &str, n: u64) {
        *self.map.entry(name.to_string()).or_insert(0) += n;
    }

    /// The current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Whether no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.map {
            self.add(k, *v);
        }
    }

    /// Renders the counters as a JSON object in sorted key order.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        for (k, n) in &self.map {
            v = v.set(k, *n);
        }
        v
    }

    /// One-line `k=v` summary in sorted key order (for log lines).
    pub fn summary(&self) -> String {
        self.map
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Merges `b` into `a` by summing numeric leaves: objects merge key-wise
/// (keys present in either side survive), numbers add, and any other
/// shape mismatch keeps `a`'s side. Arrays and strings are treated as
/// opaque (first writer wins) — per-worker stats like addresses or state
/// labels must not be summed.
pub fn merge_numeric(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Obj(ka), Value::Obj(kb)) => {
            let mut out: Vec<(String, Value)> = Vec::new();
            for (k, va) in ka {
                match kb.iter().find(|(kk, _)| kk == k) {
                    Some((_, vb)) => out.push((k.clone(), merge_numeric(va, vb))),
                    None => out.push((k.clone(), va.clone())),
                }
            }
            for (k, vb) in kb {
                if !ka.iter().any(|(kk, _)| kk == k) {
                    out.push((k.clone(), vb.clone()));
                }
            }
            Value::Obj(out)
        }
        (Value::U64(x), Value::U64(y)) => Value::U64(x + y),
        (Value::I64(x), Value::I64(y)) => Value::I64(x + y),
        (Value::F64(x), Value::F64(y)) => Value::F64(x + y),
        _ => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_merge_and_render_deterministically() {
        let mut a = Counters::new();
        a.incr("reconnects");
        a.add("busy_retries", 3);
        let mut b = Counters::new();
        b.add("busy_retries", 2);
        b.incr("hedges_fired");
        a.merge(&b);
        assert_eq!(a.get("busy_retries"), 5);
        assert_eq!(a.get("hedges_fired"), 1);
        assert_eq!(a.get("never_touched"), 0);
        assert_eq!(
            a.to_value().render(),
            "{\"busy_retries\":5,\"hedges_fired\":1,\"reconnects\":1}"
        );
        assert_eq!(a.summary(), "busy_retries=5 hedges_fired=1 reconnects=1");
    }

    #[test]
    fn merge_numeric_sums_leaves_and_keeps_shape() {
        let a = Value::obj()
            .set("admitted", 3u64)
            .set("jobs", Value::obj().set("done", 2u64).set("failed", 0u64))
            .set("addr", "127.0.0.1:1");
        let b = Value::obj()
            .set("admitted", 4u64)
            .set("jobs", Value::obj().set("done", 5u64).set("queued", 1u64))
            .set("addr", "127.0.0.1:2");
        let m = merge_numeric(&a, &b);
        assert_eq!(m.get("admitted").and_then(Value::as_u64), Some(7));
        assert_eq!(m.get_path("jobs/done").and_then(Value::as_u64), Some(7));
        assert_eq!(m.get_path("jobs/failed").and_then(Value::as_u64), Some(0));
        assert_eq!(m.get_path("jobs/queued").and_then(Value::as_u64), Some(1));
        // Non-numeric leaves are opaque: first side wins, no concatenation.
        assert_eq!(m.get("addr").and_then(Value::as_str), Some("127.0.0.1:1"));
    }
}
