//! Named monotonic counters and numeric-JSON aggregation.
//!
//! [`Counters`] is the dependency-free counter bag the resilience layer
//! uses for client-side retry/hedge accounting: insertion-order-free
//! (BTreeMap) so renders are deterministic, and mergeable so per-shard
//! stats can be summed into a fleet-wide view. [`merge_numeric`] is the
//! structural sibling: it folds two arbitrary stats documents together by
//! summing every numeric leaf, which is exactly what `dasctl stats` over a
//! multi-worker fleet needs — each worker reports the same shape, the
//! aggregate is the field-wise sum.

use std::collections::BTreeMap;

use crate::json::Value;

/// A deterministic bag of named `u64` counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<String, u64>,
}

impl Counters {
    /// An empty counter bag.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Increments `name` by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to `name` (creating it at zero first). Saturates instead
    /// of overflowing: a counter pinned at `u64::MAX` is a visible "this
    /// overflowed" signal, a wrapped counter is silent nonsense (and a
    /// debug-build panic in a stats path).
    pub fn add(&mut self, name: &str, n: u64) {
        let e = self.map.entry(name.to_string()).or_insert(0);
        *e = e.saturating_add(n);
    }

    /// The current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Whether no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Folds `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &Counters) {
        for (k, v) in &other.map {
            self.add(k, *v);
        }
    }

    /// Renders the counters as a JSON object in sorted key order.
    pub fn to_value(&self) -> Value {
        let mut v = Value::obj();
        for (k, n) in &self.map {
            v = v.set(k, *n);
        }
        v
    }

    /// One-line `k=v` summary in sorted key order (for log lines).
    pub fn summary(&self) -> String {
        self.map
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Merges `b` into `a` by summing numeric leaves: objects merge key-wise
/// (keys present in either side survive), numbers add, and any other
/// shape mismatch keeps `a`'s side. Arrays and strings are treated as
/// opaque (first writer wins) — per-worker stats like addresses or state
/// labels must not be summed.
pub fn merge_numeric(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::Obj(ka), Value::Obj(kb)) => {
            let mut out: Vec<(String, Value)> = Vec::new();
            for (k, va) in ka {
                match kb.iter().find(|(kk, _)| kk == k) {
                    Some((_, vb)) => out.push((k.clone(), merge_numeric(va, vb))),
                    None => out.push((k.clone(), va.clone())),
                }
            }
            for (k, vb) in kb {
                if !ka.iter().any(|(kk, _)| kk == k) {
                    out.push((k.clone(), vb.clone()));
                }
            }
            Value::Obj(out)
        }
        (Value::U64(x), Value::U64(y)) => Value::U64(x.saturating_add(*y)),
        (Value::I64(x), Value::I64(y)) => Value::I64(x.saturating_add(*y)),
        (Value::F64(x), Value::F64(y)) => Value::F64(x + y),
        _ => a.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_merge_and_render_deterministically() {
        let mut a = Counters::new();
        a.incr("reconnects");
        a.add("busy_retries", 3);
        let mut b = Counters::new();
        b.add("busy_retries", 2);
        b.incr("hedges_fired");
        a.merge(&b);
        assert_eq!(a.get("busy_retries"), 5);
        assert_eq!(a.get("hedges_fired"), 1);
        assert_eq!(a.get("never_touched"), 0);
        assert_eq!(
            a.to_value().render(),
            "{\"busy_retries\":5,\"hedges_fired\":1,\"reconnects\":1}"
        );
        assert_eq!(a.summary(), "busy_retries=5 hedges_fired=1 reconnects=1");
    }

    #[test]
    fn add_and_merge_saturate_instead_of_wrapping() {
        let mut c = Counters::new();
        c.add("big", u64::MAX - 1);
        c.incr("big");
        assert_eq!(c.get("big"), u64::MAX);
        c.incr("big"); // would wrap; must pin
        c.add("big", u64::MAX);
        assert_eq!(c.get("big"), u64::MAX);

        let mut other = Counters::new();
        other.add("big", 5);
        c.merge(&other);
        assert_eq!(c.get("big"), u64::MAX, "merge saturates too");

        let m = merge_numeric(
            &Value::obj().set("n", u64::MAX).set("i", i64::MAX),
            &Value::obj().set("n", 1u64).set("i", 1i64),
        );
        assert_eq!(m.get("n").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(m.get("i").unwrap().render(), i64::MAX.to_string());
    }

    #[test]
    fn concurrent_increments_from_many_threads_all_land() {
        // The bag itself is single-threaded by design; shared use goes
        // through a mutex (as in FleetClient call sites). Hammer one from
        // several threads and check nothing is lost.
        use std::sync::{Arc, Mutex};
        let shared = Arc::new(Mutex::new(Counters::new()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        let mut c = shared.lock().unwrap();
                        c.incr("total");
                        c.add(if t % 2 == 0 { "even" } else { "odd" }, i % 3);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let c = shared.lock().unwrap();
        assert_eq!(c.get("total"), 8_000);
        // Each thread adds sum(i%3 for i in 0..1000) = 999.
        assert_eq!(c.get("even") + c.get("odd"), 8 * 999);
        assert_eq!(c.get("even"), c.get("odd"));
    }

    #[test]
    fn render_is_stable_across_insertion_orders() {
        let mut fwd = Counters::new();
        let mut rev = Counters::new();
        let keys = ["zeta", "alpha", "mid"];
        for k in keys {
            fwd.add(k, 2);
        }
        for k in keys.iter().rev() {
            rev.add(k, 2);
        }
        assert_eq!(fwd, rev);
        assert_eq!(fwd.to_value().render(), rev.to_value().render());
        assert_eq!(fwd.summary(), rev.summary());
        assert_eq!(fwd.summary(), "alpha=2 mid=2 zeta=2");
    }

    #[test]
    fn merge_numeric_sums_leaves_and_keeps_shape() {
        let a = Value::obj()
            .set("admitted", 3u64)
            .set("jobs", Value::obj().set("done", 2u64).set("failed", 0u64))
            .set("addr", "127.0.0.1:1");
        let b = Value::obj()
            .set("admitted", 4u64)
            .set("jobs", Value::obj().set("done", 5u64).set("queued", 1u64))
            .set("addr", "127.0.0.1:2");
        let m = merge_numeric(&a, &b);
        assert_eq!(m.get("admitted").and_then(Value::as_u64), Some(7));
        assert_eq!(m.get_path("jobs/done").and_then(Value::as_u64), Some(7));
        assert_eq!(m.get_path("jobs/failed").and_then(Value::as_u64), Some(0));
        assert_eq!(m.get_path("jobs/queued").and_then(Value::as_u64), Some(1));
        // Non-numeric leaves are opaque: first side wins, no concatenation.
        assert_eq!(m.get("addr").and_then(Value::as_str), Some("127.0.0.1:1"));
    }
}
