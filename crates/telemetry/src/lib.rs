//! # das-telemetry — observability for the DAS-DRAM simulation stack
//!
//! Three instruments, all deterministic (driven by the simulated clock,
//! never the wall clock) and all dependency-free:
//!
//! * [`hist`] — HDR-style log-bucketed latency histograms with percentile
//!   queries and cross-channel merge;
//! * [`series`] — an epoch sampler turning periodic cumulative counter
//!   snapshots into a per-epoch time-series (IPC, fast-activation ratio,
//!   queue occupancy, promotions, faults), exposing warm-up and phase
//!   behaviour;
//! * [`trace`] — a structured event trace (migration spans, recovery
//!   instants, per-epoch counters) exporting Chrome trace-event JSON
//!   viewable in Perfetto;
//!
//! plus [`json`], the minimal value builder/validator the exporters share,
//! [`counters`], a deterministic string-keyed counter map, and one
//! deliberate exception to the simulated-clock rule: [`stage`], a sampling
//! *wall-clock* profiler of the simulator's own event-loop stages. Stage
//! timings measure the host, not the model, so they are non-reproducible
//! by design and are kept out of every deterministic report path (see the
//! module docs for its overhead contract).
//!
//! [`Telemetry`] is the sink the simulator holds. Constructed [`SinkMode::Off`]
//! (the default), every record method returns after one branch and no
//! buffer is allocated — a run with the sink off is bit-identical to one
//! without the instrumentation (locked in by `crates/sim/tests/telemetry.rs`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod counters;
pub mod hist;
pub mod json;
pub mod series;
pub mod stage;
pub mod trace;

use std::collections::HashMap;

pub use counters::Counters;
pub use hist::LatencyHistogram;
pub use series::{EpochCounters, EpochSample, EpochSeries};
pub use stage::{Stage, StageProfiler, StageProfilerConfig, StageReport};
pub use trace::{Arg, EventTrace, Phase, TraceEvent};

/// Whether the sink records anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SinkMode {
    /// Record nothing; every hook is a single-branch no-op.
    #[default]
    Off,
    /// Record histograms, the epoch series and the event trace.
    On,
}

/// Telemetry configuration carried in the system config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Sink mode.
    pub mode: SinkMode,
    /// Epoch length in CPU cycles (sampling period of the time-series).
    pub epoch_cycles: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            mode: SinkMode::Off,
            epoch_cycles: 100_000,
        }
    }
}

impl TelemetryConfig {
    /// An enabled configuration sampling every `epoch_cycles` CPU cycles.
    pub fn on(epoch_cycles: u64) -> Self {
        assert!(epoch_cycles > 0, "epoch length must be positive");
        TelemetryConfig {
            mode: SinkMode::On,
            epoch_cycles,
        }
    }

    /// Whether the sink records.
    pub fn enabled(&self) -> bool {
        self.mode == SinkMode::On
    }
}

/// How a serviced access was classified (mirrors the simulator's
/// `ServiceClass` without depending on it — this crate stays a leaf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyClass {
    /// Serviced from an open row buffer.
    RowBufferHit,
    /// Required a fast-subarray activation.
    FastMiss,
    /// Required a slow-subarray activation.
    SlowMiss,
}

impl LatencyClass {
    /// All classes, in report order.
    pub const ALL: [LatencyClass; 3] = [
        LatencyClass::RowBufferHit,
        LatencyClass::FastMiss,
        LatencyClass::SlowMiss,
    ];

    /// Stable label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            LatencyClass::RowBufferHit => "row_buffer",
            LatencyClass::FastMiss => "fast",
            LatencyClass::SlowMiss => "slow",
        }
    }

    fn index(self) -> usize {
        match self {
            LatencyClass::RowBufferHit => 0,
            LatencyClass::FastMiss => 1,
            LatencyClass::SlowMiss => 2,
        }
    }
}

/// Coherence event kinds tracked by the sink, in report order. Indices
/// match the `counts` argument of [`Telemetry::coh_access`].
pub const COH_EVENTS: [&str; 7] = [
    "bus_rd",
    "bus_rdx",
    "bus_upgr",
    "bus_upd",
    "invalidations",
    "interventions",
    "writeback_flushes",
];

/// Per-class latency histograms (one [`LatencyHistogram`] per
/// [`LatencyClass`]).
#[derive(Debug, Clone, Default)]
pub struct ClassHistograms {
    hists: [LatencyHistogram; 3],
}

impl ClassHistograms {
    /// Records a sample under `class`.
    pub fn record(&mut self, class: LatencyClass, v: u64) {
        self.hists[class.index()].record(v);
    }

    /// The histogram for `class`.
    pub fn class(&self, class: LatencyClass) -> &LatencyHistogram {
        &self.hists[class.index()]
    }

    /// Merges `other` into `self` (cross-channel aggregation).
    pub fn merge(&mut self, other: &ClassHistograms) {
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
    }

    /// Total samples across classes.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(LatencyHistogram::count).sum()
    }

    /// Serialises all classes as a JSON object keyed by class label, each
    /// with count/min/max/mean/p50/p95/p99/p999 and the non-empty buckets.
    pub fn to_value(&self) -> json::Value {
        let mut obj = json::Value::obj();
        for class in LatencyClass::ALL {
            let h = self.class(class);
            let buckets = json::Value::Arr(
                h.nonzero_buckets()
                    .into_iter()
                    .map(|(low, c)| json::Value::Arr(vec![low.into(), c.into()]))
                    .collect(),
            );
            obj = obj.set(
                class.label(),
                json::Value::obj()
                    .set("count", h.count())
                    .set("min", h.min())
                    .set("max", h.max())
                    .set("mean", h.mean())
                    .set("p50", h.percentile(50.0))
                    .set("p95", h.percentile(95.0))
                    .set("p99", h.percentile(99.0))
                    .set("p999", h.percentile(99.9))
                    .set("buckets", buckets),
            );
        }
        obj
    }
}

/// The telemetry sink the simulator drives. All hooks are single-branch
/// no-ops when the sink is [`SinkMode::Off`].
#[derive(Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    ticks_per_us: f64,
    /// Per-channel histograms (index = channel).
    channel_hists: Vec<ClassHistograms>,
    series: EpochSeries,
    trace: EventTrace,
    /// Begin tick and channel of in-flight migration spans, by token.
    swap_begin: HashMap<u64, (u64, u32)>,
    /// Retries observed per in-flight migration span.
    swap_retries: HashMap<u64, u64>,
    /// Coherence event counts, indexed as [`COH_EVENTS`].
    coh_counts: [u64; 7],
    /// Bus-arbitration wait per coherence transaction, in core cycles.
    coh_bus_wait: LatencyHistogram,
}

impl Telemetry {
    /// Builds the sink for `channels` DRAM channels. `ticks_per_us`
    /// converts simulator ticks to trace-export microseconds.
    pub fn new(cfg: TelemetryConfig, channels: usize, ticks_per_us: f64) -> Self {
        let on = cfg.enabled();
        Telemetry {
            cfg,
            ticks_per_us,
            channel_hists: if on {
                vec![ClassHistograms::default(); channels]
            } else {
                Vec::new()
            },
            series: EpochSeries::new(if on { cfg.epoch_cycles } else { 0 }),
            trace: EventTrace::new(),
            swap_begin: HashMap::new(),
            swap_retries: HashMap::new(),
            coh_counts: [0; 7],
            coh_bus_wait: LatencyHistogram::default(),
        }
    }

    /// A disabled sink (what `Default`-configured systems hold).
    pub fn off() -> Self {
        Telemetry::new(TelemetryConfig::default(), 0, 1.0)
    }

    /// Whether the sink records.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// Epoch length in CPU cycles.
    pub fn epoch_cycles(&self) -> u64 {
        self.cfg.epoch_cycles
    }

    /// Records one serviced request's latency on `channel`.
    pub fn record_latency(&mut self, channel: usize, class: LatencyClass, ticks: u64) {
        if !self.enabled() {
            return;
        }
        self.channel_hists[channel].record(class, ticks);
    }

    /// Ingests the cumulative counters at an epoch boundary (`tick` is the
    /// simulated time of the boundary) and emits the per-epoch counter
    /// events into the trace.
    pub fn epoch_boundary(&mut self, tick: u64, cum: EpochCounters) {
        if !self.enabled() {
            return;
        }
        self.series.push_cumulative(cum);
        let s = *self.series.samples().last().expect("just pushed");
        let ts = tick;
        self.trace.push(TraceEvent {
            name: "fast_ratio",
            cat: "epoch",
            ph: Phase::Counter,
            ts_ticks: ts,
            dur_ticks: None,
            tid: u32::MAX,
            args: vec![("value", Arg::F64(s.fast_ratio))],
        });
        self.trace.push(TraceEvent {
            name: "queue_occupancy",
            cat: "epoch",
            ph: Phase::Counter,
            ts_ticks: ts,
            dur_ticks: None,
            tid: u32::MAX,
            args: vec![
                ("read", Arg::U64(s.counters.read_queue)),
                ("write", Arg::U64(s.counters.write_queue)),
            ],
        });
    }

    /// Opens a migration span: the management layer decided to move a row.
    pub fn swap_begin(&mut self, token: u64, tick: u64, channel: u32) {
        if !self.enabled() {
            return;
        }
        self.swap_begin.insert(token, (tick, channel));
    }

    /// Notes a retried migration (fault recovery re-enqueued it).
    pub fn swap_retry(&mut self, token: u64) {
        if !self.enabled() {
            return;
        }
        *self.swap_retries.entry(token).or_insert(0) += 1;
    }

    /// Closes a migration span as committed.
    pub fn swap_commit(&mut self, token: u64, tick: u64) {
        self.swap_end(token, tick, "swap", "commit");
    }

    /// Closes a migration span as aborted (the row was demoted).
    pub fn swap_abort(&mut self, token: u64, tick: u64) {
        self.swap_end(token, tick, "swap_abort", "abort");
    }

    fn swap_end(&mut self, token: u64, tick: u64, name: &'static str, outcome: &'static str) {
        if !self.enabled() {
            return;
        }
        let Some((begin, channel)) = self.swap_begin.remove(&token) else {
            return;
        };
        let retries = self.swap_retries.remove(&token).unwrap_or(0);
        self.trace.push(TraceEvent {
            name,
            cat: "migration",
            ph: Phase::Complete,
            ts_ticks: begin,
            dur_ticks: Some(tick.saturating_sub(begin)),
            tid: channel,
            args: vec![
                ("token", Arg::U64(token)),
                ("outcome", Arg::Str(outcome)),
                ("retries", Arg::U64(retries)),
            ],
        });
    }

    /// Records the coherence activity one cluster access caused: per-kind
    /// event deltas (indexed as [`COH_EVENTS`]) and the cycles the access's
    /// bus transactions spent waiting for arbitration. A sample lands in
    /// the bus-wait histogram only when the access used the bus at all.
    pub fn coh_access(&mut self, counts: [u64; 7], bus_wait: u64) {
        if !self.enabled() {
            return;
        }
        let mut used_bus = false;
        for (total, d) in self.coh_counts.iter_mut().zip(counts) {
            *total += d;
            used_bus |= d != 0;
        }
        if used_bus {
            self.coh_bus_wait.record(bus_wait);
        }
    }

    /// Records an instant event (`tcache_rebuild`, `watchdog_fire`, …).
    pub fn instant(&mut self, name: &'static str, cat: &'static str, tick: u64) {
        if !self.enabled() {
            return;
        }
        self.trace.push(TraceEvent {
            name,
            cat,
            ph: Phase::Instant,
            ts_ticks: tick,
            dur_ticks: None,
            tid: u32::MAX,
            args: vec![],
        });
    }

    /// Finishes recording and produces the report (merged histograms,
    /// series, trace). Returns `None` for a disabled sink.
    pub fn into_report(self) -> Option<TelemetryReport> {
        if !self.enabled() {
            return None;
        }
        let mut merged = ClassHistograms::default();
        for h in &self.channel_hists {
            merged.merge(h);
        }
        Some(TelemetryReport {
            epoch_cycles: self.cfg.epoch_cycles,
            ticks_per_us: self.ticks_per_us,
            merged,
            per_channel: self.channel_hists,
            series: self.series,
            trace: self.trace,
            coh_counts: self.coh_counts,
            coh_bus_wait: self.coh_bus_wait,
        })
    }
}

/// Everything a finished instrumented run exports.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Epoch length in CPU cycles.
    pub epoch_cycles: u64,
    /// Tick-to-microsecond conversion used for trace export.
    pub ticks_per_us: f64,
    /// Histograms merged across channels.
    pub merged: ClassHistograms,
    /// Per-channel histograms.
    pub per_channel: Vec<ClassHistograms>,
    /// The epoch time-series.
    pub series: EpochSeries,
    /// The structured event trace.
    pub trace: EventTrace,
    /// Coherence event counts, indexed as [`COH_EVENTS`] (all zero for
    /// runs without a coherent front end).
    pub coh_counts: [u64; 7],
    /// Bus-arbitration wait per coherence transaction, core cycles.
    pub coh_bus_wait: LatencyHistogram,
}

impl TelemetryReport {
    /// The Chrome trace-event JSON document for this run.
    pub fn chrome_trace_json(&self) -> String {
        self.trace.to_chrome_json(self.ticks_per_us)
    }

    /// Telemetry portion of the run report: histograms (merged and
    /// per-channel) plus the epoch series and the trace-event count (the
    /// full trace exports separately via [`Self::chrome_trace_json`]).
    pub fn to_value(&self) -> json::Value {
        let mut v = json::Value::obj()
            .set("epoch_cycles", self.epoch_cycles)
            .set("trace_events", self.trace.events().len())
            .set("latency_ticks", self.merged.to_value())
            .set(
                "latency_ticks_per_channel",
                json::Value::Arr(
                    self.per_channel
                        .iter()
                        .map(ClassHistograms::to_value)
                        .collect(),
                ),
            )
            .set("epochs", self.series.to_value());
        // The coherence block appears only when a coherent front end
        // recorded something: reports of pre-existing single-core runs stay
        // byte-identical.
        if self.coh_counts.iter().any(|&c| c != 0) {
            let mut counts = json::Value::obj();
            for (name, &c) in COH_EVENTS.iter().zip(self.coh_counts.iter()) {
                counts = counts.set(name, c);
            }
            let h = &self.coh_bus_wait;
            v = v.set(
                "coherence",
                json::Value::obj().set("events", counts).set(
                    "bus_wait_cycles",
                    json::Value::obj()
                        .set("count", h.count())
                        .set("mean", h.mean())
                        .set("p50", h.percentile(50.0))
                        .set("p99", h.percentile(99.0))
                        .set("max", h.max()),
                ),
            );
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_sink_records_nothing_and_reports_none() {
        let mut t = Telemetry::off();
        t.record_latency(0, LatencyClass::FastMiss, 100);
        t.swap_begin(1, 0, 0);
        t.swap_commit(1, 50);
        t.instant("watchdog_fire", "recovery", 10);
        t.epoch_boundary(0, EpochCounters::default());
        assert!(!t.enabled());
        assert!(t.into_report().is_none());
    }

    #[test]
    fn on_sink_merges_channels_and_traces_swaps() {
        let mut t = Telemetry::new(TelemetryConfig::on(1_000), 2, 24_000.0);
        t.record_latency(0, LatencyClass::SlowMiss, 700);
        t.record_latency(1, LatencyClass::SlowMiss, 900);
        t.record_latency(1, LatencyClass::RowBufferHit, 120);
        t.swap_begin(7, 100, 1);
        t.swap_retry(7);
        t.swap_commit(7, 400);
        t.swap_begin(8, 200, 0);
        t.swap_abort(8, 300);
        let r = t.into_report().unwrap();
        assert_eq!(r.merged.class(LatencyClass::SlowMiss).count(), 2);
        assert_eq!(r.per_channel[0].class(LatencyClass::SlowMiss).count(), 1);
        assert_eq!(r.trace.count_named("swap"), 1);
        assert_eq!(r.trace.count_named("swap_abort"), 1);
        let doc = r.to_value().render();
        json::validate(&doc).unwrap();
        json::validate(&r.chrome_trace_json()).unwrap();
    }

    #[test]
    fn coherence_block_appears_only_when_events_recorded() {
        // No coherence activity: the report value has no "coherence" key.
        let t = Telemetry::new(TelemetryConfig::on(1_000), 1, 24_000.0);
        let quiet = t.into_report().unwrap().to_value().render();
        assert!(!quiet.contains("\"coherence\""));

        let mut t = Telemetry::new(TelemetryConfig::on(1_000), 1, 24_000.0);
        t.coh_access([1, 0, 0, 0, 0, 1, 0], 4); // BusRd + intervention
        t.coh_access([0, 0, 0, 0, 0, 0, 0], 0); // pure hit: no sample
        let r = t.into_report().unwrap();
        assert_eq!(r.coh_counts[0], 1);
        assert_eq!(r.coh_counts[5], 1);
        assert_eq!(r.coh_bus_wait.count(), 1);
        let doc = r.to_value().render();
        assert!(doc.contains("\"coherence\""));
        assert!(doc.contains("\"bus_rd\""));
        json::validate(&doc).unwrap();

        // Off sink: the hook is a no-op.
        let mut off = Telemetry::off();
        off.coh_access([1; 7], 10);
        assert!(off.into_report().is_none());
    }

    #[test]
    fn unknown_swap_end_is_ignored() {
        let mut t = Telemetry::new(TelemetryConfig::on(1_000), 1, 24_000.0);
        t.swap_commit(99, 10); // no matching begin
        let r = t.into_report().unwrap();
        assert_eq!(r.trace.events().len(), 0);
    }

    #[test]
    fn cross_class_merge_is_exact_per_class() {
        // Merging per-channel ClassHistograms must equal recording every
        // sample into one set, class by class — classes never bleed into
        // each other, including classes empty on one side.
        let mut ch0 = ClassHistograms::default();
        let mut ch1 = ClassHistograms::default();
        let mut whole = ClassHistograms::default();
        for v in 0..1_500u64 {
            let x = (v * 2_654_435_761) % 50_000;
            let class = match v % 3 {
                0 => LatencyClass::RowBufferHit,
                1 => LatencyClass::FastMiss,
                _ => LatencyClass::SlowMiss,
            };
            // SlowMiss lands only on channel 1: channel 0's slow histogram
            // stays empty across the merge.
            if class == LatencyClass::SlowMiss || v % 2 == 1 {
                ch1.record(class, x);
            } else {
                ch0.record(class, x);
            }
            whole.record(class, x);
        }
        assert_eq!(ch0.class(LatencyClass::SlowMiss).count(), 0);
        ch0.merge(&ch1);
        assert_eq!(ch0.total_count(), whole.total_count());
        for class in LatencyClass::ALL {
            let (m, w) = (ch0.class(class), whole.class(class));
            assert_eq!(m.count(), w.count(), "{}", class.label());
            assert_eq!(m.min(), w.min(), "{}", class.label());
            assert_eq!(m.max(), w.max(), "{}", class.label());
            assert_eq!(m.nonzero_buckets(), w.nonzero_buckets());
            for p in [50.0, 95.0, 99.0] {
                assert_eq!(m.percentile(p), w.percentile(p), "p{p}");
            }
        }
        assert_eq!(ch0.to_value().render(), whole.to_value().render());
    }
}
