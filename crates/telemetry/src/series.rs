//! Epoch time-series: periodic snapshots of run counters.
//!
//! The simulator reports **cumulative** counters at every epoch boundary
//! (a fixed number of CPU cycles, so sampling is tick-driven and
//! deterministic); the sampler differences consecutive snapshots into
//! per-epoch deltas. This is what makes warm-up and phase behaviour
//! visible: the fast-activation ratio of epoch *k* is computed from the
//! activations of epoch *k* alone, not diluted by the whole history.

use crate::json::Value;

/// Cumulative counters at one epoch boundary, as reported by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochCounters {
    /// CPU cycle of the boundary (multiple of the epoch length).
    pub cycle: u64,
    /// Instructions retired, summed over cores.
    pub insts: u64,
    /// DRAM reads completed.
    pub reads: u64,
    /// DRAM writes completed.
    pub writes: u64,
    /// Row-buffer hits among serviced accesses.
    pub row_hits: u64,
    /// Fast-subarray activations.
    pub fast_acts: u64,
    /// Slow-subarray activations.
    pub slow_acts: u64,
    /// Row promotions committed.
    pub promotions: u64,
    /// Promotions aborted (fault recovery demoted the row).
    pub aborted: u64,
    /// Faults injected so far.
    pub faults_injected: u64,
    /// Translation-cache rebuilds so far.
    pub tcache_rebuilds: u64,
    /// Read-queue occupancy at the boundary (instantaneous, all channels).
    pub read_queue: u64,
    /// Write-queue occupancy at the boundary (instantaneous, all channels).
    pub write_queue: u64,
}

impl EpochCounters {
    fn delta(&self, prev: &EpochCounters) -> EpochCounters {
        EpochCounters {
            cycle: self.cycle,
            insts: self.insts - prev.insts,
            reads: self.reads - prev.reads,
            writes: self.writes - prev.writes,
            row_hits: self.row_hits - prev.row_hits,
            fast_acts: self.fast_acts - prev.fast_acts,
            slow_acts: self.slow_acts - prev.slow_acts,
            promotions: self.promotions - prev.promotions,
            aborted: self.aborted - prev.aborted,
            faults_injected: self.faults_injected - prev.faults_injected,
            tcache_rebuilds: self.tcache_rebuilds - prev.tcache_rebuilds,
            // Occupancies are instantaneous, not differenced.
            read_queue: self.read_queue,
            write_queue: self.write_queue,
        }
    }
}

/// One per-epoch sample (deltas plus instantaneous occupancies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochSample {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Counter deltas over this epoch (`cycle` = boundary cycle).
    pub counters: EpochCounters,
    /// Aggregate IPC over the epoch (instructions / epoch cycles, summed
    /// over cores — the multi-programming throughput view).
    pub ipc: f64,
    /// Fast share of this epoch's row activations (0 when none).
    pub fast_ratio: f64,
}

impl EpochSample {
    /// Serialises the sample as a JSON object.
    pub fn to_value(&self) -> Value {
        let c = &self.counters;
        Value::obj()
            .set("epoch", self.epoch)
            .set("cycle", c.cycle)
            .set("ipc", self.ipc)
            .set("fast_ratio", self.fast_ratio)
            .set("insts", c.insts)
            .set("reads", c.reads)
            .set("writes", c.writes)
            .set("row_hits", c.row_hits)
            .set("fast_acts", c.fast_acts)
            .set("slow_acts", c.slow_acts)
            .set("promotions", c.promotions)
            .set("aborted", c.aborted)
            .set("faults_injected", c.faults_injected)
            .set("tcache_rebuilds", c.tcache_rebuilds)
            .set("read_queue", c.read_queue)
            .set("write_queue", c.write_queue)
    }
}

/// The recorded time-series.
#[derive(Debug, Clone, Default)]
pub struct EpochSeries {
    /// Epoch length in CPU cycles.
    pub epoch_cycles: u64,
    samples: Vec<EpochSample>,
    last: EpochCounters,
}

impl EpochSeries {
    /// An empty series with the given epoch length.
    pub fn new(epoch_cycles: u64) -> Self {
        EpochSeries {
            epoch_cycles,
            samples: Vec::new(),
            last: EpochCounters::default(),
        }
    }

    /// Ingests the cumulative counters at the next epoch boundary and
    /// records the per-epoch delta sample.
    pub fn push_cumulative(&mut self, cum: EpochCounters) {
        let d = cum.delta(&self.last);
        let acts = d.fast_acts + d.slow_acts;
        let sample = EpochSample {
            epoch: self.samples.len() as u64,
            ipc: if self.epoch_cycles == 0 {
                0.0
            } else {
                d.insts as f64 / self.epoch_cycles as f64
            },
            fast_ratio: if acts == 0 {
                0.0
            } else {
                d.fast_acts as f64 / acts as f64
            },
            counters: d,
        };
        self.samples.push(sample);
        self.last = cum;
    }

    /// The recorded samples, in order.
    pub fn samples(&self) -> &[EpochSample] {
        &self.samples
    }

    /// Serialises the series as a JSON array of sample objects.
    pub fn to_value(&self) -> Value {
        Value::Arr(self.samples.iter().map(EpochSample::to_value).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(cycle: u64, insts: u64, fast: u64, slow: u64) -> EpochCounters {
        EpochCounters {
            cycle,
            insts,
            fast_acts: fast,
            slow_acts: slow,
            ..Default::default()
        }
    }

    #[test]
    fn deltas_and_ratios_are_per_epoch() {
        let mut s = EpochSeries::new(1_000);
        s.push_cumulative(cum(1_000, 2_000, 10, 90));
        s.push_cumulative(cum(2_000, 5_000, 110, 140));
        let v = s.samples();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].counters.insts, 2_000);
        assert!((v[0].ipc - 2.0).abs() < 1e-12);
        assert!((v[0].fast_ratio - 0.1).abs() < 1e-12);
        // Epoch 1 sees only its own activations: 100 fast, 50 slow.
        assert_eq!(v[1].counters.fast_acts, 100);
        assert!((v[1].ipc - 3.0).abs() < 1e-12);
        assert!((v[1].fast_ratio - 100.0 / 150.0).abs() < 1e-12);
    }

    #[test]
    fn empty_epoch_reports_zero_ratio() {
        let mut s = EpochSeries::new(100);
        s.push_cumulative(cum(100, 0, 0, 0));
        assert_eq!(s.samples()[0].fast_ratio, 0.0);
        assert_eq!(s.samples()[0].ipc, 0.0);
    }

    #[test]
    fn series_serialises_to_valid_json() {
        let mut s = EpochSeries::new(500);
        s.push_cumulative(cum(500, 100, 1, 3));
        let json = s.to_value().render();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"fast_ratio\":0.25"));
    }
}
