//! Sampling wall-clock stage profiler for the simulator's hot loop.
//!
//! This is the one instrument in the crate that reads the *host* clock
//! ([`std::time::Instant`]) instead of the simulated clock: it measures
//! how long the simulator itself spends in each event-loop stage (trace
//! decode, ROB retirement, memory-controller queue service, DRAM timing
//! engine), which is by construction host-dependent and non-reproducible.
//! It therefore lives outside the deterministic report path: stage data
//! never enters `RunMetrics`, the telemetry report or any journalled
//! artifact — it is only surfaced by explicitly perf-oriented consumers
//! (`harness --bench`).
//!
//! The overhead contract mirrors [`crate::Telemetry`]: constructed
//! [`SinkMode::Off`] (the default) every probe is a single-branch no-op
//! and nothing is allocated, so a run with profiling off is bit-identical
//! to one without the instrumentation (locked by `crates/sim/tests/`).
//! When on, probes are *sampled*: only every `sample_every`-th occurrence
//! of a stage pays the two `Instant::now()` calls, and the elapsed
//! nanoseconds land in a [`LatencyHistogram`] per stage. Occurrences are
//! always counted, so per-stage totals are estimated as
//! `mean(sampled) * occurrences`.

use std::time::Instant;

use crate::hist::LatencyHistogram;
use crate::json::Value;
use crate::SinkMode;

/// The instrumented event-loop stages, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Pulling decoded trace items into the core's window
    /// (`Core::dispatch_from`): trace decode + dispatch.
    TraceDecode,
    /// Retiring a completed memory access through the reorder window
    /// (`Core::complete`).
    RobRetire,
    /// Memory-controller queue work outside the timing engine: demand
    /// enqueue, overflow drain, wake scheduling.
    QueueService,
    /// The DRAM timing engine proper (`MemoryController::advance`).
    DramTiming,
}

/// Number of instrumented stages.
pub const STAGES: usize = 4;

impl Stage {
    /// All stages, in report order.
    pub const ALL: [Stage; STAGES] = [
        Stage::TraceDecode,
        Stage::RobRetire,
        Stage::QueueService,
        Stage::DramTiming,
    ];

    /// Stable label used in JSON reports and BENCH files.
    pub fn label(self) -> &'static str {
        match self {
            Stage::TraceDecode => "trace_decode",
            Stage::RobRetire => "rob_retire",
            Stage::QueueService => "queue_service",
            Stage::DramTiming => "dram_timing",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::TraceDecode => 0,
            Stage::RobRetire => 1,
            Stage::QueueService => 2,
            Stage::DramTiming => 3,
        }
    }
}

/// Stage-profiler configuration carried in the system config.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfilerConfig {
    /// Whether probes record anything.
    pub mode: SinkMode,
    /// Sampling stride: every N-th occurrence of a stage is timed.
    pub sample_every: u32,
}

impl Default for StageProfilerConfig {
    fn default() -> Self {
        StageProfilerConfig {
            mode: SinkMode::Off,
            sample_every: 64,
        }
    }
}

impl StageProfilerConfig {
    /// An enabled configuration timing every `sample_every`-th probe.
    pub fn on(sample_every: u32) -> Self {
        assert!(sample_every > 0, "sampling stride must be positive");
        StageProfilerConfig {
            mode: SinkMode::On,
            sample_every,
        }
    }

    /// Whether the profiler records.
    pub fn enabled(&self) -> bool {
        self.mode == SinkMode::On
    }
}

/// A live probe handle: present only when this occurrence was sampled.
/// `None` makes [`StageProfiler::end`] a no-op, so an unsampled (or
/// off-mode) probe costs one branch on each side.
pub type Probe = Option<Instant>;

/// The sampling profiler the simulator holds. See the module docs for the
/// overhead contract.
#[derive(Debug)]
pub struct StageProfiler {
    enabled: bool,
    sample_every: u32,
    countdown: [u32; STAGES],
    occurrences: [u64; STAGES],
    /// Per-stage sampled-elapsed-nanoseconds histograms; empty when off.
    hists: Vec<LatencyHistogram>,
    /// Per-stage depth histograms (queue/window occupancy at sampled
    /// probes); empty when off.
    depths: Vec<LatencyHistogram>,
}

impl StageProfiler {
    /// A disabled profiler: every probe is a single-branch no-op.
    pub fn off() -> Self {
        StageProfiler {
            enabled: false,
            sample_every: 1,
            countdown: [1; STAGES],
            occurrences: [0; STAGES],
            hists: Vec::new(),
            depths: Vec::new(),
        }
    }

    /// Builds a profiler; allocates only when `cfg` is enabled.
    pub fn new(cfg: StageProfilerConfig) -> Self {
        if !cfg.enabled() {
            return Self::off();
        }
        StageProfiler {
            enabled: true,
            sample_every: cfg.sample_every.max(1),
            countdown: [1; STAGES], // sample the first occurrence of each stage
            occurrences: [0; STAGES],
            hists: (0..STAGES).map(|_| LatencyHistogram::new()).collect(),
            depths: (0..STAGES).map(|_| LatencyHistogram::new()).collect(),
        }
    }

    /// Whether probes record (one branch; callers may skip probe setup).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a probe over `stage`. Returns `Some` only when this
    /// occurrence is sampled; pass the result to [`StageProfiler::end`].
    #[inline]
    pub fn begin(&mut self, stage: Stage) -> Probe {
        if !self.enabled {
            return None;
        }
        let i = stage.index();
        self.occurrences[i] += 1;
        self.countdown[i] -= 1;
        if self.countdown[i] == 0 {
            self.countdown[i] = self.sample_every;
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a probe, recording the elapsed nanoseconds. A `None` probe
    /// (off mode, or an unsampled occurrence) is a single-branch no-op.
    #[inline]
    pub fn end(&mut self, stage: Stage, probe: Probe) {
        let Some(t0) = probe else { return };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hists[stage.index()].record(ns);
    }

    /// Records a queue/window occupancy observed at a *sampled* probe
    /// (call only when [`StageProfiler::begin`] returned `Some`).
    #[inline]
    pub fn note_depth(&mut self, stage: Stage, depth: u64) {
        if !self.enabled {
            return;
        }
        self.depths[stage.index()].record(depth);
    }

    /// Consumes the profiler into a report; `None` when off (so the off
    /// mode is observationally identical to no profiler at all).
    pub fn into_report(self) -> Option<StageReport> {
        if !self.enabled {
            return None;
        }
        Some(StageReport {
            sample_every: self.sample_every,
            occurrences: self.occurrences,
            hists: self.hists,
            depths: self.depths,
        })
    }
}

/// Aggregated stage timings for one run.
#[derive(Debug)]
pub struct StageReport {
    /// Sampling stride the probes ran with.
    pub sample_every: u32,
    /// Total occurrences per stage (sampled or not), indexed like
    /// [`Stage::ALL`].
    pub occurrences: [u64; STAGES],
    /// Sampled elapsed-nanoseconds histograms, indexed like [`Stage::ALL`].
    pub hists: Vec<LatencyHistogram>,
    /// Occupancy-at-sample histograms, indexed like [`Stage::ALL`].
    pub depths: Vec<LatencyHistogram>,
}

impl StageReport {
    /// Estimated total nanoseconds spent in `stage`:
    /// `mean(sampled) * occurrences`.
    pub fn estimated_total_ns(&self, stage: Stage) -> f64 {
        let i = stage.index();
        self.hists[i].mean() * self.occurrences[i] as f64
    }

    /// Per-stage share of the summed estimated stage time, in
    /// [`Stage::ALL`] order. All zeros when nothing was sampled.
    pub fn shares(&self) -> [f64; STAGES] {
        let totals: Vec<f64> = Stage::ALL
            .iter()
            .map(|&s| self.estimated_total_ns(s))
            .collect();
        let sum: f64 = totals.iter().sum();
        let mut out = [0.0; STAGES];
        if sum > 0.0 {
            for (o, t) in out.iter_mut().zip(totals) {
                *o = t / sum;
            }
        }
        out
    }

    /// The report as a JSON object:
    /// `{sample_every, stages: {label: {occurrences, sampled, mean_ns,
    /// p50_ns, p95_ns, p99_ns, est_total_ns, share, depth: {...}}}}`.
    pub fn to_value(&self) -> Value {
        let shares = self.shares();
        let mut stages = Value::obj();
        for (k, &stage) in Stage::ALL.iter().enumerate() {
            let h = &self.hists[k];
            let mut s = Value::obj()
                .set("occurrences", self.occurrences[k])
                .set("sampled", h.count())
                .set("mean_ns", h.mean())
                .set("p50_ns", h.percentile(50.0))
                .set("p95_ns", h.percentile(95.0))
                .set("p99_ns", h.percentile(99.0))
                .set("est_total_ns", self.estimated_total_ns(stage))
                .set("share", shares[k]);
            if self.depths[k].count() > 0 {
                s = s.set("depth", self.depths[k].summary_value());
            }
            stages = stages.set(stage.label(), s);
        }
        Value::obj()
            .set("sample_every", u64::from(self.sample_every))
            .set("stages", stages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_profiler_records_nothing_and_reports_none() {
        let mut p = StageProfiler::off();
        assert!(!p.enabled());
        for stage in Stage::ALL {
            let probe = p.begin(stage);
            assert!(probe.is_none(), "off probes never sample");
            p.end(stage, probe);
            p.note_depth(stage, 7);
        }
        assert!(p.into_report().is_none());
        // Default config is off too.
        assert!(!StageProfilerConfig::default().enabled());
        assert!(StageProfiler::new(StageProfilerConfig::default())
            .into_report()
            .is_none());
    }

    #[test]
    fn sampling_stride_times_every_nth_occurrence() {
        let mut p = StageProfiler::new(StageProfilerConfig::on(4));
        let mut sampled = 0;
        for _ in 0..16 {
            let probe = p.begin(Stage::DramTiming);
            if probe.is_some() {
                sampled += 1;
                p.note_depth(Stage::DramTiming, 3);
            }
            p.end(Stage::DramTiming, probe);
        }
        assert_eq!(sampled, 4, "16 occurrences / stride 4");
        let r = p.into_report().expect("on profiler reports");
        let i = Stage::DramTiming.index();
        assert_eq!(r.occurrences[i], 16);
        assert_eq!(r.hists[i].count(), 4);
        assert_eq!(r.depths[i].count(), 4);
        assert_eq!(r.depths[i].max(), 3);
    }

    #[test]
    fn shares_sum_to_one_and_export_parses() {
        let mut p = StageProfiler::new(StageProfilerConfig::on(1));
        for stage in Stage::ALL {
            for _ in 0..8 {
                let probe = p.begin(stage);
                p.end(stage, probe);
            }
        }
        let r = p.into_report().unwrap();
        let sum: f64 = r.shares().iter().sum();
        // All stages sampled something, so shares are a partition of 1
        // (unless the host clock returned 0 ns for everything).
        assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9, "share sum {sum}");
        let v = r.to_value();
        crate::json::validate(&v.render()).unwrap();
        for stage in Stage::ALL {
            let path = format!("stages/{}/occurrences", stage.label());
            assert_eq!(v.get_path(&path).and_then(Value::as_u64), Some(8));
        }
        assert_eq!(v.get("sample_every").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn empty_report_has_zero_shares() {
        let p = StageProfiler::new(StageProfilerConfig::on(1_000));
        let r = p.into_report().unwrap();
        assert_eq!(r.shares(), [0.0; STAGES]);
        assert_eq!(r.estimated_total_ns(Stage::RobRetire), 0.0);
    }
}
