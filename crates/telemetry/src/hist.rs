//! Log-bucketed latency histograms (HDR-style, dependency-free).
//!
//! Values are `u64` (ticks in the simulator, but the histogram is
//! unit-agnostic). Buckets follow the classic HDR layout: values below
//! [`SUB_BUCKETS`] get exact unit-width buckets; above that, each power-of-
//! two octave is split into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantisation error at `1/SUB_BUCKETS` (≈ 3 %). The bucket count
//! is fixed (no allocation on record), recording is O(1), and two histograms
//! recorded on different channels merge by element-wise addition — exactly
//! what the per-channel → per-run aggregation needs.

/// Sub-buckets per octave (`2^SUB_BUCKET_BITS`).
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
const SUB_BUCKET_BITS: u32 = 5;
/// Total bucket count: one unit bucket per value below [`SUB_BUCKETS`],
/// then `SUB_BUCKETS` linear sub-buckets per octave for exponents
/// `SUB_BUCKET_BITS..=63`.
pub const BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize + 1) * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

/// Bucket index for `v`. Exact below [`SUB_BUCKETS`]; logarithmic with
/// linear sub-buckets above.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // v ∈ [2^exp, 2^(exp+1))
    let sub = ((v >> (exp - SUB_BUCKET_BITS)) as usize) & (SUB_BUCKETS - 1);
    (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `i` (inverse of [`bucket_index`]).
pub fn bucket_low(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let exp = (i / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (exp - SUB_BUCKET_BITS)
}

/// Largest value mapping to bucket `i`.
pub fn bucket_high(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(i + 1) - 1
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("BUCKETS sized"),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at percentile `p` (0.0–100.0), linearly interpolated
    /// within the containing bucket and clamped to the observed range.
    /// Returns 0 on an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the target sample, 1-based.
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let low = bucket_low(i);
                let high = bucket_high(i).min(self.max);
                let within = (rank - seen) as f64 / c as f64;
                let v = low as f64 + within * (high - low) as f64;
                return (v.round() as u64).clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Element-wise merge of `other` into `self` (cross-channel
    /// aggregation): afterwards every summary statistic reflects the union
    /// of both sample sets.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Summary of the distribution as a JSON object — count, min, max,
    /// mean and the p50/p95/p99 percentiles. This is the per-request-kind
    /// shape the `das-serve` stats response reports.
    pub fn summary_value(&self) -> crate::json::Value {
        crate::json::Value::obj()
            .set("count", self.count())
            .set("min", self.min())
            .set("max", self.max())
            .set("mean", self.mean())
            .set("p50", self.percentile(50.0))
            .set("p95", self.percentile(95.0))
            .set("p99", self.percentile(99.0))
    }

    /// Non-empty buckets as `(bucket_low, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_low(i), c))
            .collect()
    }

    /// Records `n` identical samples in O(1) — the bulk path
    /// [`LatencyHistogram::from_buckets_value`] reconstruction uses.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * u128::from(n);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The non-empty buckets as a JSON array of `[bucket_low, count]`
    /// pairs — the wire shape `das-serve` stats carry so a fleet client
    /// can rebuild a *mergeable* histogram instead of trying to average
    /// percentiles (which is not a thing).
    pub fn buckets_value(&self) -> crate::json::Value {
        crate::json::Value::Arr(
            self.nonzero_buckets()
                .into_iter()
                .map(|(low, c)| {
                    crate::json::Value::Arr(vec![
                        crate::json::Value::from(low),
                        crate::json::Value::from(c),
                    ])
                })
                .collect(),
        )
    }

    /// Rebuilds a histogram from a [`LatencyHistogram::buckets_value`]
    /// array. Bucket counts round-trip exactly (`bucket_low` maps back to
    /// its own bucket), so merges and percentiles of the reconstruction
    /// match the original to bucket resolution; min/max/mean are
    /// bucket-floor approximations. Returns `None` on a malformed value.
    pub fn from_buckets_value(v: &crate::json::Value) -> Option<LatencyHistogram> {
        let arr = v.as_arr()?;
        let mut h = LatencyHistogram::new();
        for pair in arr {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            h.record_n(pair[0].as_u64()?, pair[1].as_u64()?);
        }
        Some(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_sub_buckets() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v, "unit buckets are exact");
        }
    }

    #[test]
    fn bucket_boundaries_tile_the_range_contiguously() {
        // Every bucket's low is the previous bucket's high + 1: no gaps, no
        // overlaps, over the first few octaves and around u64::MAX.
        for i in 1..(SUB_BUCKETS * 10) {
            assert_eq!(bucket_low(i), bucket_high(i - 1) + 1, "bucket {i}");
        }
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
        // Round-trip: a value lands in a bucket whose range contains it.
        for &v in &[
            0,
            1,
            31,
            32,
            33,
            63,
            64,
            1000,
            123_456_789,
            u64::MAX / 3,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(
                bucket_low(i) <= v && v <= bucket_high(i),
                "value {v} bucket {i}"
            );
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_width() {
        for shift in 6..40 {
            let v = (1u64 << shift) + (1 << (shift - 1)) + 7;
            let i = bucket_index(v);
            let width = bucket_high(i) - bucket_low(i) + 1;
            assert!(
                (width as f64) / (v as f64) <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "bucket width {width} too coarse for {v}"
            );
        }
    }

    #[test]
    fn percentiles_are_exact_for_small_values() {
        let mut h = LatencyHistogram::new();
        for v in 1..=31u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 31);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 31);
        assert_eq!(h.percentile(50.0), 16, "median of 1..=31");
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(100.0), 31);
    }

    #[test]
    fn percentile_interpolation_stays_within_error_bound() {
        let mut h = LatencyHistogram::new();
        for v in 0..10_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 5_000.0), (95.0, 9_500.0), (99.0, 9_900.0)] {
            let got = h.percentile(p) as f64;
            let err = (got - expect).abs() / expect;
            assert!(
                err < 1.0 / SUB_BUCKETS as f64 + 1e-3,
                "p{p}: got {got}, want ≈{expect}"
            );
        }
        assert_eq!(h.percentile(100.0), 9_999);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for v in 0..2_000u64 {
            let x = (v * 2_654_435_761) % 100_000; // deterministic scatter
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            whole.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        for p in [1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
            assert_eq!(
                a.percentile(p),
                whole.percentile(p),
                "p{p} differs after merge"
            );
        }
        assert_eq!(a.nonzero_buckets(), whole.nonzero_buckets());
    }

    #[test]
    fn empty_merges_are_identities() {
        // empty ∪ empty stays empty.
        let mut a = LatencyHistogram::new();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.count(), 0);
        assert_eq!((a.min(), a.max()), (0, 0));
        assert_eq!(a.percentile(99.0), 0);

        // nonempty ∪ empty and empty ∪ nonempty both equal the nonempty
        // side — min/max must not be poisoned by the empty sentinel.
        let mut populated = LatencyHistogram::new();
        for v in [3u64, 900, 77] {
            populated.record(v);
        }
        let mut left = populated.clone();
        left.merge(&LatencyHistogram::new());
        let mut right = LatencyHistogram::new();
        right.merge(&populated);
        for h in [&left, &right] {
            assert_eq!(h.count(), 3);
            assert_eq!((h.min(), h.max()), (3, 900));
            assert_eq!(h.mean(), populated.mean());
            assert_eq!(h.nonzero_buckets(), populated.nonzero_buckets());
        }
    }

    #[test]
    fn single_bucket_merge_is_exact() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(7);
        a.record(7);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.nonzero_buckets(), vec![(7, 3)]);
        assert_eq!((a.min(), a.max()), (7, 7));
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), 7, "a one-value histogram is flat");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = LatencyHistogram::new();
        let mut loop_h = LatencyHistogram::new();
        for (v, n) in [(5u64, 3u64), (100, 1), (65_537, 4)] {
            bulk.record_n(v, n);
            for _ in 0..n {
                loop_h.record(v);
            }
        }
        bulk.record_n(9, 0); // no-op
        assert_eq!(bulk.count(), loop_h.count());
        assert_eq!(bulk.mean(), loop_h.mean());
        assert_eq!(bulk.nonzero_buckets(), loop_h.nonzero_buckets());
    }

    #[test]
    fn buckets_value_round_trips_counts_exactly() {
        let mut h = LatencyHistogram::new();
        for v in 0..3_000u64 {
            h.record((v * 2_654_435_761) % 1_000_000);
        }
        let rebuilt =
            LatencyHistogram::from_buckets_value(&h.buckets_value()).expect("well-formed buckets");
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.nonzero_buckets(), h.nonzero_buckets());
        // Percentiles agree to bucket resolution: the rebuilt value can
        // only differ by intra-bucket interpolation.
        for p in [50.0, 95.0, 99.0] {
            let (a, b) = (h.percentile(p), rebuilt.percentile(p));
            let i = bucket_index(a);
            assert!(
                bucket_low(i).saturating_sub(bucket_high(i) - bucket_low(i)) <= b
                    && b <= bucket_high(i),
                "p{p}: original {a} rebuilt {b}"
            );
        }
        // Malformed shapes are rejected, not mis-parsed.
        use crate::json::Value;
        assert!(LatencyHistogram::from_buckets_value(&Value::obj()).is_none());
        assert!(
            LatencyHistogram::from_buckets_value(&Value::Arr(vec![Value::Arr(vec![Value::from(
                1u64
            )])]))
            .is_none()
        );
    }

    #[test]
    fn mean_tracks_sum_without_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert!(h.mean() > 1e18);
    }
}
