//! A minimal JSON value builder, parser and well-formedness checker.
//!
//! The build environment has no registry access, so there is no `serde`;
//! this module provides the small subset the telemetry and harness
//! exporters need: building a [`Value`] tree, rendering it
//! ([`Value::render`]), [`parse`]-ing a document back into a [`Value`]
//! (used by the experiment harness to read manifests and resume journals),
//! and [`validate`], the strict well-formedness check used by tests and
//! smoke jobs to prove exported documents parse.
//!
//! Round-trip guarantee: for any tree built by this module,
//! `parse(&v.render()).render() == v.render()` — floats are rendered with
//! Rust's shortest round-trip formatting and re-parsed exactly, which is
//! what lets the harness re-render journal entries bit-identically.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A double (rendered with Rust's shortest round-trip formatting).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: an empty object builder.
    pub fn obj() -> Value {
        Value::Obj(Vec::new())
    }

    /// Adds `key: value` to an object (panics on non-objects — builder
    /// misuse, not data-dependent).
    pub fn set(mut self, key: &str, value: impl Into<Value>) -> Value {
        match &mut self {
            Value::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Value::set on a non-object"),
        }
        self
    }

    /// Renders the tree as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => {
                if v.is_finite() {
                    // Rust's `{}` is shortest-round-trip; always valid JSON
                    // once integers gain a fractional marker.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl Value {
    /// Looks up `key` in an object (`None` for other variants or a missing
    /// key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walks a `/`-separated path of object keys.
    pub fn get_path(&self, path: &str) -> Option<&Value> {
        path.split('/').try_fold(self, |v, key| v.get(key))
    }

    /// The value as an unsigned integer (exact; `I64`/`F64` convert only
    /// when lossless).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as a double (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Arr(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Checks that `text` is one well-formed JSON document (strict: no trailing
/// garbage, no trailing commas, `\u` escapes fully formed).
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Parses one strict JSON document into a [`Value`] tree.
///
/// Numbers without a fraction or exponent become [`Value::U64`] (or
/// [`Value::I64`] when negative); everything else becomes [`Value::F64`]
/// via Rust's correctly-rounded float parser, so values produced by
/// [`Value::render`] round-trip exactly.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first violation.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b't') => parse_lit(b, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null").map(|()| Value::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:#x} at {pos}")),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut pairs = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // '"'
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => match b.get(*pos + 1) {
                Some(&e @ (b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't')) => {
                    out.push(match e {
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        other => other as char,
                    });
                    *pos += 2;
                }
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    let code = hex
                        .iter()
                        .try_fold(0u32, |acc, &d| Some(acc << 4 | char::from(d).to_digit(16)?))
                        .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                    // Surrogates (unpaired or paired) are not produced by
                    // our writer; map them to the replacement character.
                    out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1f => return Err(format!("unescaped control byte at {pos}")),
            _ => {
                // Advance over one UTF-8 scalar (input is &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while b.get(*pos).is_some_and(|&x| x & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid UTF-8 input"));
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("expected digits at byte {pos}"));
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        is_float = true;
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected fraction digits at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        is_float = true;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("expected exponent digits at byte {pos}"));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("digits are ASCII");
    if !is_float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Value::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Value::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_values_validate() {
        let v = Value::obj()
            .set("name", "swap \"x\"\n")
            .set("count", 42u64)
            .set("neg", -7i64)
            .set("ratio", 0.375)
            .set("whole", 2.0)
            .set("bad", f64::NAN)
            .set("flag", true)
            .set(
                "items",
                Value::Arr(vec![Value::Null, Value::U64(1), Value::Str("a".into())]),
            );
        let s = v.render();
        validate(&s).expect("rendered JSON must validate");
        assert!(
            s.contains("\"whole\":2.0"),
            "whole floats keep a fraction: {s}"
        );
        assert!(
            s.contains("\"bad\":null"),
            "non-finite floats become null: {s}"
        );
        assert!(s.contains("\\n"), "newline escaped: {s}");
    }

    #[test]
    fn validator_accepts_canonical_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-3.5e-2",
            "[1,2,3]",
            "{\"a\":{\"b\":[true,false,null]}}",
            " { \"k\" : \"v\\u00e9\" } ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok:?} should validate: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "{a:1}",
            "01suffix",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1}}",
            "1.",
            "NaN",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn malformed_unicode_escapes_are_errors_not_panics() {
        for bad in [
            "\"\\uZZZZ\"",     // non-hex digits
            "\"\\u12g4\"",     // one bad digit
            "\"\\u{41}\"",     // Rust-style escape is not JSON
            "\"\\u00\"",       // too short, terminated
            "\"\\u12",         // truncated mid-escape
            "\"\\u\u{e9}99\"", // multibyte UTF-8 inside the hex run
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be a parse error");
        }
        assert_eq!(parse("\"\\u0041\"").unwrap(), Value::Str("A".into()));
        // Unpaired surrogate: mapped to U+FFFD, never a panic.
        assert_eq!(parse("\"\\ud800\"").unwrap(), Value::Str("\u{fffd}".into()));
    }

    #[test]
    fn escaping_round_trips_control_characters() {
        let v = Value::Str("\u{1}\t".to_string());
        let s = v.render();
        assert_eq!(s, "\"\\u0001\\t\"");
        validate(&s).unwrap();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn parse_rebuilds_the_exact_tree() {
        let v = Value::obj()
            .set("name", "swap \"x\"\n")
            .set("count", 42u64)
            .set("neg", -7i64)
            .set("ratio", 0.375)
            .set("whole", 2.0)
            .set("tiny", 1e-7)
            .set("flag", true)
            .set(
                "items",
                Value::Arr(vec![Value::Null, Value::U64(1), Value::Str("é".into())]),
            );
        let s = v.render();
        let back = parse(&s).unwrap();
        // Number variants are preserved for everything the writer emits
        // (floats always carry a '.' or exponent), so the re-render is
        // byte-identical — the property journal resume depends on.
        assert_eq!(back.render(), s);
        assert_eq!(back.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(back.get("neg").unwrap(), &Value::I64(-7));
        assert_eq!(back.get("whole").unwrap(), &Value::F64(2.0));
        assert_eq!(back.get_path("items").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn accessors_walk_paths_and_convert() {
        let v = Value::obj().set(
            "metrics",
            Value::obj().set("ipc", 1.5).set("promotions", 9u64),
        );
        assert_eq!(v.get_path("metrics/ipc").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get_path("metrics/promotions").unwrap().as_u64(), Some(9));
        assert_eq!(
            v.get_path("metrics/promotions").unwrap().as_f64(),
            Some(9.0)
        );
        assert!(v.get_path("metrics/missing").is_none());
        assert!(v.get_path("nope/ipc").is_none());
    }

    #[test]
    fn parse_handles_big_u64_and_floats() {
        let big = u64::MAX;
        let s = Value::U64(big).render();
        assert_eq!(parse(&s).unwrap().as_u64(), Some(big));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
    }
}
