//! Structured event trace with Chrome trace-event JSON export.
//!
//! Events carry simulated-time timestamps (ticks); export converts them to
//! the trace-event format's microseconds so a run opens directly in
//! Perfetto / `chrome://tracing`. Three phases are used:
//!
//! * `X` (complete) — spans with a duration: row migrations from the
//!   management decision to commit/abort;
//! * `i` (instant) — point events: translation-cache rebuilds, watchdog
//!   fires;
//! * `C` (counter) — per-epoch series (fast-activation ratio, queue
//!   occupancy), which Perfetto renders as step charts.

use crate::json::Value;

/// The trace-event phase (a subset of the Chrome spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Complete event (span with duration).
    Complete,
    /// Instant event.
    Instant,
    /// Counter event.
    Counter,
}

impl Phase {
    fn code(self) -> &'static str {
        match self {
            Phase::Complete => "X",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    /// Unsigned integer argument.
    U64(u64),
    /// Float argument.
    F64(f64),
    /// String argument.
    Str(&'static str),
}

impl From<Arg> for Value {
    fn from(a: Arg) -> Value {
        match a {
            Arg::U64(v) => Value::U64(v),
            Arg::F64(v) => Value::F64(v),
            Arg::Str(v) => Value::Str(v.to_string()),
        }
    }
}

/// One structured trace event, timestamped in simulator ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (shown on the track).
    pub name: &'static str,
    /// Category (used by trace viewers for filtering).
    pub cat: &'static str,
    /// Phase.
    pub ph: Phase,
    /// Start tick.
    pub ts_ticks: u64,
    /// Duration in ticks (complete events only).
    pub dur_ticks: Option<u64>,
    /// Track id (we use the DRAM channel; `u32::MAX` = global).
    pub tid: u32,
    /// Event arguments.
    pub args: Vec<(&'static str, Arg)>,
}

/// An append-only event trace.
#[derive(Debug, Clone, Default)]
pub struct EventTrace {
    events: Vec<TraceEvent>,
}

impl EventTrace {
    /// An empty trace.
    pub fn new() -> Self {
        EventTrace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// Recorded events, in append order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events with the given name (test/report helper).
    pub fn count_named(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Exports the Chrome trace-event JSON document. `ticks_per_us`
    /// converts simulated ticks to the format's microsecond timestamps.
    pub fn to_chrome_json(&self, ticks_per_us: f64) -> String {
        let scale = 1.0 / ticks_per_us;
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| {
                let mut obj = Value::obj()
                    .set("name", e.name)
                    .set("cat", e.cat)
                    .set("ph", e.ph.code())
                    .set("ts", e.ts_ticks as f64 * scale)
                    .set("pid", 0u64)
                    .set("tid", e.tid as u64);
                if let Some(d) = e.dur_ticks {
                    obj = obj.set("dur", d as f64 * scale);
                }
                if e.ph == Phase::Instant {
                    obj = obj.set("s", "g"); // global scope marker
                }
                if !e.args.is_empty() {
                    let mut args = Value::obj();
                    for (k, v) in &e.args {
                        args = args.set(k, v.clone());
                    }
                    obj = obj.set("args", args);
                }
                obj
            })
            .collect();
        Value::obj()
            .set("traceEvents", Value::Arr(events))
            .set("displayTimeUnit", "ns")
            .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;

    #[test]
    fn chrome_export_validates_and_scales_timestamps() {
        let mut t = EventTrace::new();
        t.push(TraceEvent {
            name: "swap",
            cat: "migration",
            ph: Phase::Complete,
            ts_ticks: 24_000, // 1 µs at 24 ticks/ns
            dur_ticks: Some(48_000),
            tid: 2,
            args: vec![("token", Arg::U64(7)), ("outcome", Arg::Str("commit"))],
        });
        t.push(TraceEvent {
            name: "tcache_rebuild",
            cat: "recovery",
            ph: Phase::Instant,
            ts_ticks: 0,
            dur_ticks: None,
            tid: u32::MAX,
            args: vec![],
        });
        let json = t.to_chrome_json(24_000.0);
        validate(&json).unwrap();
        assert!(json.contains("\"ts\":1.0"), "24k ticks = 1 µs: {json}");
        assert!(json.contains("\"dur\":2.0"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"s\":\"g\""));
        assert_eq!(t.count_named("swap"), 1);
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let json = EventTrace::new().to_chrome_json(24_000.0);
        validate(&json).unwrap();
        assert!(json.contains("\"traceEvents\":[]"));
    }
}
