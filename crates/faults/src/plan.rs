//! Fault plans, the per-site injector, and outcome accounting.
//!
//! A [`FaultPlan`] is plain data: per-site rates plus knobs for the recovery
//! policies (bounded swap retries, bounded re-reads). A [`FaultInjector`]
//! turns the plan into decisions, drawing each site from an *independent*
//! PRNG stream derived from the plan seed so that enabling one site never
//! perturbs the decision sequence of another.
//!
//! Sites whose rate is zero never draw from their stream — a rate-0 plan is
//! bit-identical to running without any injector.

use crate::prng::{splitmix64, Prng};

/// The injection sites the simulator wires up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A migration/swap step fails mid-flight (the swap must be retried or
    /// abandoned).
    SwapStep,
    /// A migration completes but takes longer than modelled (latency spike).
    SwapLatency,
    /// A translation-cache entry is corrupted or lost.
    TranslationCorrupt,
    /// A weak-retention bit flip on a row resident in a fast subarray
    /// (short bitlines hold less charge).
    RetentionFlip,
    /// A trace-file line fails to read/parse.
    TraceRead,
}

impl FaultSite {
    /// All sites, for iteration in reports.
    pub const ALL: [FaultSite; 5] = [
        FaultSite::SwapStep,
        FaultSite::SwapLatency,
        FaultSite::TranslationCorrupt,
        FaultSite::RetentionFlip,
        FaultSite::TraceRead,
    ];

    /// Stable label used in stats tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::SwapStep => "swap-step",
            FaultSite::SwapLatency => "swap-latency",
            FaultSite::TranslationCorrupt => "tcache-corrupt",
            FaultSite::RetentionFlip => "retention-flip",
            FaultSite::TraceRead => "trace-read",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::SwapStep => 0,
            FaultSite::SwapLatency => 1,
            FaultSite::TranslationCorrupt => 2,
            FaultSite::RetentionFlip => 3,
            FaultSite::TraceRead => 4,
        }
    }
}

/// What to inject, how often, and how hard consumers should try to recover.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed; each site derives an independent stream from it.
    pub seed: u64,
    /// Probability a swap step fails and must be retried.
    pub swap_failure_rate: f64,
    /// Probability a swap pays an extra latency spike on top of the model.
    pub swap_latency_rate: f64,
    /// Size of the spike in raw ticks (applied when `swap_latency_rate`
    /// fires).
    pub swap_latency_spike_ticks: u64,
    /// Probability a translation-cache fill is corrupted.
    pub translation_corrupt_rate: f64,
    /// Probability a read from a fast-resident row observes a retention
    /// flip and must be re-read.
    pub retention_flip_rate: f64,
    /// Probability a trace line read fails.
    pub trace_read_error_rate: f64,
    /// Bounded retry budget for a failing swap before the management layer
    /// demotes (aborts) it.
    pub max_swap_attempts: u32,
    /// Bounded re-read budget for a retention flip before the access is
    /// counted fatal (served from the ECC path at full penalty).
    pub max_read_retries: u32,
}

impl FaultPlan {
    /// A plan that injects nothing. Rate-0 sites never draw from the PRNG,
    /// so this is bit-identical to running without fault injection.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            swap_failure_rate: 0.0,
            swap_latency_rate: 0.0,
            swap_latency_spike_ticks: 0,
            translation_corrupt_rate: 0.0,
            retention_flip_rate: 0.0,
            trace_read_error_rate: 0.0,
            max_swap_attempts: 3,
            max_read_retries: 2,
        }
    }

    /// A plan injecting every site at the same `rate` (latency spikes are
    /// one slow-subarray row cycle, 1170 ticks).
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            swap_failure_rate: rate,
            swap_latency_rate: rate,
            swap_latency_spike_ticks: 1170,
            translation_corrupt_rate: rate,
            retention_flip_rate: rate,
            trace_read_error_rate: rate,
            ..FaultPlan::none()
        }
    }

    /// The rate configured for `site`.
    pub fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::SwapStep => self.swap_failure_rate,
            FaultSite::SwapLatency => self.swap_latency_rate,
            FaultSite::TranslationCorrupt => self.translation_corrupt_rate,
            FaultSite::RetentionFlip => self.retention_flip_rate,
            FaultSite::TraceRead => self.trace_read_error_rate,
        }
    }

    /// True when no site can ever fire.
    pub fn is_inert(&self) -> bool {
        FaultSite::ALL.iter().all(|&s| self.rate(s) <= 0.0)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Outcome counters for one injection site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteCounts {
    /// Faults the injector decided to fire.
    pub injected: u64,
    /// Recovery attempts (retries/re-reads/rebuild probes).
    pub retried: u64,
    /// Faults fully masked by a recovery policy.
    pub recovered: u64,
    /// Faults that exhausted their recovery budget.
    pub fatal: u64,
}

/// Aggregate accounting across all sites plus the consistency machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    sites: [SiteCounts; 5],
    /// Exclusive-cache invariant sweeps that passed.
    pub invariant_checks_passed: u64,
    /// Translation-cache rebuilds triggered by a failed audit.
    pub tcache_rebuilds: u64,
}

impl FaultStats {
    /// Counters for one site.
    pub fn site(&self, site: FaultSite) -> &SiteCounts {
        &self.sites[site.index()]
    }

    /// Mutable counters for one site.
    pub fn site_mut(&mut self, site: FaultSite) -> &mut SiteCounts {
        &mut self.sites[site.index()]
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.sites.iter().map(|s| s.injected).sum()
    }

    /// Total faults that exhausted recovery across all sites.
    pub fn total_fatal(&self) -> u64 {
        self.sites.iter().map(|s| s.fatal).sum()
    }

    /// Total recovered across all sites.
    pub fn total_recovered(&self) -> u64 {
        self.sites.iter().map(|s| s.recovered).sum()
    }

    /// Merge another accounting block into this one (used when a subsystem
    /// keeps local counts that are folded into the run totals).
    pub fn absorb(&mut self, other: &FaultStats) {
        for (mine, theirs) in self.sites.iter_mut().zip(other.sites.iter()) {
            mine.injected += theirs.injected;
            mine.retried += theirs.retried;
            mine.recovered += theirs.recovered;
            mine.fatal += theirs.fatal;
        }
        self.invariant_checks_passed += other.invariant_checks_passed;
        self.tcache_rebuilds += other.tcache_rebuilds;
    }
}

/// Rolls per-site dice on independent deterministic streams and accounts
/// the outcomes.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    streams: [Prng; 5],
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector; each site's stream is derived from the plan seed
    /// so sites are mutually independent.
    pub fn new(plan: FaultPlan) -> Self {
        let mut root = plan.seed ^ 0xfa17_5eed_0000_0000;
        let streams = core::array::from_fn(|_| Prng::new(splitmix64(&mut root)));
        FaultInjector {
            plan,
            streams,
            stats: FaultStats::default(),
        }
    }

    /// The plan this injector was built from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides whether `site` fires now. Rate-0 sites return `false`
    /// without consuming randomness, preserving bit-identical behaviour.
    pub fn roll(&mut self, site: FaultSite) -> bool {
        let rate = self.plan.rate(site);
        if rate <= 0.0 {
            return false;
        }
        let fired = self.streams[site.index()].gen_bool(rate);
        if fired {
            self.stats.site_mut(site).injected += 1;
        }
        fired
    }

    /// Records one recovery attempt for `site`.
    pub fn note_retry(&mut self, site: FaultSite) {
        self.stats.site_mut(site).retried += 1;
    }

    /// Records a fault fully masked by recovery.
    pub fn note_recovered(&mut self, site: FaultSite) {
        self.stats.site_mut(site).recovered += 1;
    }

    /// Records a fault that exhausted its recovery budget.
    pub fn note_fatal(&mut self, site: FaultSite) {
        self.stats.site_mut(site).fatal += 1;
    }

    /// Records a passing invariant sweep.
    pub fn note_invariant_pass(&mut self) {
        self.stats.invariant_checks_passed += 1;
    }

    /// Records a translation-cache rebuild.
    pub fn note_tcache_rebuild(&mut self) {
        self.stats.tcache_rebuilds += 1;
    }

    /// The accounting so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Fold externally collected counts (e.g. from the trace reader) into
    /// this injector's accounting.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.stats.absorb(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_plan_never_fires_and_never_draws() {
        let mut inj = FaultInjector::new(FaultPlan::none());
        let snapshot = inj.streams.clone();
        for _ in 0..10_000 {
            for site in FaultSite::ALL {
                assert!(!inj.roll(site));
            }
        }
        assert_eq!(inj.streams, snapshot, "rate-0 sites must not draw");
        assert_eq!(inj.stats().total_injected(), 0);
    }

    #[test]
    fn rates_are_honoured_per_site() {
        let mut plan = FaultPlan::none();
        plan.seed = 3;
        plan.swap_failure_rate = 0.25;
        let mut inj = FaultInjector::new(plan);
        let n = 40_000;
        let mut hits = 0u64;
        for _ in 0..n {
            if inj.roll(FaultSite::SwapStep) {
                hits += 1;
            }
            // Other sites stay silent.
            assert!(!inj.roll(FaultSite::RetentionFlip));
        }
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
        assert_eq!(inj.stats().site(FaultSite::SwapStep).injected, hits);
        assert_eq!(inj.stats().site(FaultSite::RetentionFlip).injected, 0);
    }

    #[test]
    fn sites_use_independent_streams() {
        // Enabling a second site must not change the first site's decisions.
        let mut only_swap = FaultPlan::uniform(9, 0.0);
        only_swap.swap_failure_rate = 0.1;
        let mut both = only_swap.clone();
        both.retention_flip_rate = 0.1;

        let mut a = FaultInjector::new(only_swap);
        let mut b = FaultInjector::new(both);
        for i in 0..5_000 {
            if i % 3 == 0 {
                b.roll(FaultSite::RetentionFlip);
            }
            assert_eq!(
                a.roll(FaultSite::SwapStep),
                b.roll(FaultSite::SwapStep),
                "swap stream perturbed by retention stream at step {i}"
            );
        }
    }

    #[test]
    fn same_plan_same_decisions() {
        let plan = FaultPlan::uniform(1234, 0.05);
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for _ in 0..10_000 {
            for site in FaultSite::ALL {
                assert_eq!(a.roll(site), b.roll(site));
            }
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn outcome_accounting_adds_up() {
        let mut inj = FaultInjector::new(FaultPlan::uniform(7, 1.0));
        assert!(inj.roll(FaultSite::SwapStep));
        inj.note_retry(FaultSite::SwapStep);
        inj.note_retry(FaultSite::SwapStep);
        inj.note_recovered(FaultSite::SwapStep);
        inj.note_fatal(FaultSite::TraceRead);
        inj.note_invariant_pass();
        inj.note_tcache_rebuild();
        let s = inj.stats();
        assert_eq!(s.site(FaultSite::SwapStep).retried, 2);
        assert_eq!(s.site(FaultSite::SwapStep).recovered, 1);
        assert_eq!(s.site(FaultSite::TraceRead).fatal, 1);
        assert_eq!(s.invariant_checks_passed, 1);
        assert_eq!(s.tcache_rebuilds, 1);
        assert_eq!(s.total_fatal(), 1);
        assert_eq!(s.total_recovered(), 1);

        let mut agg = FaultStats::default();
        agg.absorb(s);
        agg.absorb(s);
        assert_eq!(agg.site(FaultSite::SwapStep).retried, 4);
        assert_eq!(agg.invariant_checks_passed, 2);
    }

    #[test]
    fn uniform_and_inert_helpers() {
        assert!(FaultPlan::none().is_inert());
        assert!(FaultPlan::default().is_inert());
        let p = FaultPlan::uniform(5, 0.01);
        assert!(!p.is_inert());
        for site in FaultSite::ALL {
            assert_eq!(p.rate(site), 0.01);
            assert!(!site.label().is_empty());
        }
    }
}
