//! Dependency-free deterministic PRNG: SplitMix64 seeding, xoshiro256**
//! generation.
//!
//! The generator is a pure function of its 64-bit seed; there is no
//! wall-clock or OS-entropy fallback anywhere. Statistical quality is good
//! enough for workload synthesis (the MPKI/fraction calibration tests in
//! `das-workloads` hold to a few percent) while staying a dozen lines of
//! arithmetic.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used to expand a single `u64` seed into generator state and to derive
/// independent per-site streams from one master seed.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator seeded via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Creates a generator whose entire future output is determined by
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** requires a non-zero state; SplitMix64 cannot emit
        // four consecutive zeros, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Prng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses the widening-multiply technique with a rejection step, so the
    /// distribution is exactly uniform.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "bounded_u64 needs a non-zero bound");
        // Lemire's method: multiply-shift with rejection of the biased zone.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.bounded_u64(hi - lo)
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::new(42);
        let mut b = Prng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::new(1);
        let mut b = Prng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_stays_in_unit_interval_and_is_roughly_uniform() {
        let mut p = Prng::new(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = p.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut p = Prng::new(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| p.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        assert!(!(0..100).any(|_| p.gen_bool(0.0)));
        assert!((0..100).all(|_| p.gen_bool(1.0)));
    }

    #[test]
    fn bounded_is_uniform_over_small_ranges() {
        let mut p = Prng::new(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[p.bounded_u64(8) as usize] += 1;
        }
        for c in counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut p = Prng::new(13);
        for _ in 0..1000 {
            let v = p.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let f = p.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = p.range_usize(0, 5);
            assert!(u < 5);
        }
    }

    #[test]
    fn splitmix_expansion_is_stable() {
        // Pin the seeding path: changing it would silently change every
        // seeded experiment in the workspace.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
    }
}
