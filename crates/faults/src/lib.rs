//! Deterministic, seed-driven fault injection for the DAS-DRAM stack.
//!
//! The crate has two halves:
//!
//! * [`prng`] — a small, dependency-free pseudo-random number generator
//!   (SplitMix64 seeding into xoshiro256\*\*). It is the *only* source of
//!   randomness in the whole workspace: the workload generators, the random
//!   replacement policy and the fault injector all draw from it, so a run is
//!   a pure function of its seeds. No wall-clock, no OS entropy.
//! * [`plan`] — the [`FaultPlan`] describing *what* to inject and how often,
//!   the [`FaultInjector`] that rolls per-site dice on independent streams,
//!   and [`FaultStats`] accounting every injected/retried/recovered/fatal
//!   outcome so experiments can quantify graceful degradation.
//!
//! Determinism contract: a [`FaultInjector`] built from the same
//! [`FaultPlan`] produces the same decision sequence, and a site whose rate
//! is zero **never draws from its stream** — so a rate-0 plan is
//! bit-identical to running with no injector at all.

pub mod plan;
pub mod prng;

pub use plan::{FaultInjector, FaultPlan, FaultSite, FaultStats, SiteCounts};
pub use prng::Prng;
