//! Seeded randomized tests for the core model (formerly proptest; rewritten
//! on the deterministic `das-faults` PRNG): instruction conservation,
//! monotone timing, and window discipline.

use das_cpu::core::{Core, CoreConfig};
use das_cpu::trace::TraceItem;
use das_faults::Prng;

fn run_to_completion(items: Vec<TraceItem>, latency: u64) -> Core {
    let mut core = Core::new(CoreConfig::paper_default(), u64::MAX);
    let mut out = Vec::new();
    let mut it = items.into_iter();
    core.dispatch_from(&mut it, &mut out);
    let mut guard = 0;
    while !out.is_empty() {
        let pending = std::mem::take(&mut out);
        for r in pending {
            // Stores are posted: the core retires them at dispatch and the
            // memory system never calls back (mirrors `das-sim`).
            if !r.is_write {
                core.complete(r.id, r.issue_at + latency, &mut out);
            }
        }
        core.dispatch_from(&mut it, &mut out);
        guard += 1;
        assert!(guard < 100_000, "no forward progress");
    }
    core
}

fn random_items(rng: &mut Prng) -> Vec<TraceItem> {
    let n = rng.range_usize(1, 120);
    (0..n)
        .map(|_| {
            let w = rng.gen_bool(0.5);
            let dep = rng.gen_bool(0.5);
            TraceItem {
                gap: rng.range_u32(0, 64),
                addr: rng.range_u64(0, 1 << 20) & !63,
                is_write: w,
                depends_on_prev: dep && !w,
            }
        })
        .collect()
}

/// Every dispatched instruction retires exactly once.
#[test]
fn instructions_are_conserved() {
    for seed in 0..40u64 {
        let mut rng = Prng::new(seed);
        let items = random_items(&mut rng);
        let expected: u64 = items.iter().map(|i| i.insts()).sum();
        let core = run_to_completion(items, 500);
        assert!(core.is_finished(), "seed {seed}");
        assert_eq!(core.insts_retired(), expected, "seed {seed}");
    }
}

/// Higher memory latency never makes the run finish earlier.
#[test]
fn finish_time_monotone_in_latency() {
    for seed in 0..40u64 {
        let mut rng = Prng::new(seed ^ 0x10a7);
        let items = random_items(&mut rng);
        let lat_a = rng.range_u64(1, 500);
        let extra = rng.range_u64(1, 2000);
        let fast = run_to_completion(items.clone(), lat_a).finish_time();
        let slow = run_to_completion(items, lat_a + extra).finish_time();
        assert!(
            slow >= fast,
            "seed {seed}: slower memory finished earlier: {slow} < {fast}"
        );
    }
}

/// The number of memory requests equals the number of trace items (each
/// reference is issued exactly once).
#[test]
fn one_request_per_reference() {
    for seed in 0..40u64 {
        let mut rng = Prng::new(seed ^ 0x0e0e);
        let items = random_items(&mut rng);
        let n = items.len() as u64;
        let core = run_to_completion(items, 100);
        let s = core.stats();
        assert_eq!(s.loads + s.stores, n, "seed {seed}");
    }
}

/// Retirement is frontend-bound from below: a trace can never finish
/// faster than insts/width cycles (8 ticks per cycle, width 4).
#[test]
fn frontend_bandwidth_is_a_lower_bound() {
    for seed in 0..40u64 {
        let mut rng = Prng::new(seed ^ 0xf0f0);
        let items = random_items(&mut rng);
        let insts: u64 = items.iter().map(|i| i.insts()).sum();
        let core = run_to_completion(items, 1);
        let min_ticks = insts.div_ceil(4) * 8;
        assert!(
            core.finish_time() >= min_ticks.saturating_sub(8),
            "seed {seed}: finish {} below frontend bound {}",
            core.finish_time(),
            min_ticks
        );
    }
}
