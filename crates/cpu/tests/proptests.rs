//! Property-based tests for the core model: instruction conservation,
//! monotone timing, and window discipline.

use proptest::prelude::*;

use das_cpu::core::{Core, CoreConfig};
use das_cpu::trace::TraceItem;

fn run_to_completion(items: Vec<TraceItem>, latency: u64) -> Core {
    let mut core = Core::new(CoreConfig::paper_default(), u64::MAX);
    let mut out = Vec::new();
    let mut it = items.into_iter();
    core.dispatch_from(&mut it, &mut out);
    let mut guard = 0;
    while !out.is_empty() {
        let pending = std::mem::take(&mut out);
        for r in pending {
            // Stores are posted: the core retires them at dispatch and the
            // memory system never calls back (mirrors `das-sim`).
            if !r.is_write {
                core.complete(r.id, r.issue_at + latency, &mut out);
            }
        }
        core.dispatch_from(&mut it, &mut out);
        guard += 1;
        assert!(guard < 100_000, "no forward progress");
    }
    core
}

fn arb_items() -> impl Strategy<Value = Vec<TraceItem>> {
    prop::collection::vec(
        (0u32..64, 0u64..(1 << 20), any::<bool>(), any::<bool>()).prop_map(
            |(gap, addr, w, dep)| TraceItem {
                gap,
                addr: addr & !63,
                is_write: w,
                depends_on_prev: dep && !w,
            },
        ),
        1..120,
    )
}

proptest! {
    /// Every dispatched instruction retires exactly once.
    #[test]
    fn instructions_are_conserved(items in arb_items()) {
        let expected: u64 = items.iter().map(|i| i.insts()).sum();
        let core = run_to_completion(items, 500);
        prop_assert!(core.is_finished());
        prop_assert_eq!(core.insts_retired(), expected);
    }

    /// Higher memory latency never makes the run finish earlier.
    #[test]
    fn finish_time_monotone_in_latency(items in arb_items(), lat_a in 1u64..500, extra in 1u64..2000) {
        let fast = run_to_completion(items.clone(), lat_a).finish_time();
        let slow = run_to_completion(items, lat_a + extra).finish_time();
        prop_assert!(slow >= fast, "slower memory finished earlier: {slow} < {fast}");
    }

    /// The number of memory requests equals the number of trace items
    /// (each reference is issued exactly once).
    #[test]
    fn one_request_per_reference(items in arb_items()) {
        let n = items.len() as u64;
        let core = run_to_completion(items, 100);
        let s = core.stats();
        prop_assert_eq!(s.loads + s.stores, n);
    }

    /// Retirement is frontend-bound from below: a trace can never finish
    /// faster than insts/width cycles (8 ticks per cycle, width 4).
    #[test]
    fn frontend_bandwidth_is_a_lower_bound(items in arb_items()) {
        let insts: u64 = items.iter().map(|i| i.insts()).sum();
        let core = run_to_completion(items, 1);
        let min_ticks = insts.div_ceil(4) * 8;
        prop_assert!(core.finish_time() >= min_ticks.saturating_sub(8),
            "finish {} below frontend bound {}", core.finish_time(), min_ticks);
    }
}
