//! Memory-reference trace items.
//!
//! A workload is a stream of memory references, each annotated with the
//! number of non-memory instructions preceding it and whether it depends on
//! the previous reference (pointer-chasing serialisation).

/// One memory reference in an instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceItem {
    /// Non-memory instructions executed before this reference.
    pub gap: u32,
    /// Byte address referenced.
    pub addr: u64,
    /// `true` for a store, `false` for a load.
    pub is_write: bool,
    /// If `true`, this reference cannot issue until the previous reference
    /// of the same trace completes (address-dependent chain, e.g. linked
    /// list traversal). Loads in such chains expose no memory-level
    /// parallelism.
    pub depends_on_prev: bool,
}

impl TraceItem {
    /// A simple independent load after `gap` compute instructions.
    pub fn load(gap: u32, addr: u64) -> Self {
        TraceItem {
            gap,
            addr,
            is_write: false,
            depends_on_prev: false,
        }
    }

    /// A store after `gap` compute instructions.
    pub fn store(gap: u32, addr: u64) -> Self {
        TraceItem {
            gap,
            addr,
            is_write: true,
            depends_on_prev: false,
        }
    }

    /// A load that depends on the previous reference.
    pub fn dependent_load(gap: u32, addr: u64) -> Self {
        TraceItem {
            gap,
            addr,
            is_write: false,
            depends_on_prev: true,
        }
    }

    /// Total instructions this item represents (the reference itself plus
    /// its preceding compute gap).
    pub fn insts(&self) -> u64 {
        self.gap as u64 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let l = TraceItem::load(3, 0x40);
        assert!(!l.is_write && !l.depends_on_prev && l.insts() == 4);
        let s = TraceItem::store(0, 0x80);
        assert!(s.is_write && s.insts() == 1);
        let d = TraceItem::dependent_load(1, 0xc0);
        assert!(d.depends_on_prev && !d.is_write);
    }
}
