//! Pluggable per-core reference streams.
//!
//! The core model consumes `Iterator<Item = TraceItem>`; a [`TraceSource`]
//! is the concrete stream a simulation wires to each core. Upstream crates
//! provide the actual producers — a synthetic generator, a parsed text
//! trace, or a streaming binary-trace reader — all funneled through the
//! boxed [`TraceSource::Streaming`] variant so this crate stays at the
//! bottom of the dependency stack.

use crate::trace::TraceItem;

/// A per-core reference stream.
pub enum TraceSource {
    /// A pre-recorded reference list held in memory.
    Recorded(std::vec::IntoIter<TraceItem>),
    /// Any live producer: a synthetic generator or a streaming trace
    /// reader (boxed: producers carry their own state).
    Streaming(Box<dyn Iterator<Item = TraceItem> + Send>),
}

impl TraceSource {
    /// A source over an in-memory item list.
    pub fn recorded(items: Vec<TraceItem>) -> Self {
        TraceSource::Recorded(items.into_iter())
    }

    /// A source over any live iterator (generator, file reader, ...).
    pub fn streaming<I>(iter: I) -> Self
    where
        I: Iterator<Item = TraceItem> + Send + 'static,
    {
        TraceSource::Streaming(Box::new(iter))
    }
}

impl Iterator for TraceSource {
    type Item = TraceItem;

    fn next(&mut self) -> Option<TraceItem> {
        match self {
            TraceSource::Recorded(it) => it.next(),
            TraceSource::Streaming(it) => it.next(),
        }
    }
}

impl std::fmt::Debug for TraceSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSource::Recorded(it) => {
                write!(f, "TraceSource::Recorded({} items left)", it.len())
            }
            TraceSource::Streaming(_) => f.write_str("TraceSource::Streaming(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorded_and_streaming_yield_the_same_items() {
        let items = vec![
            TraceItem::load(1, 0x40),
            TraceItem::store(0, 0x80),
            TraceItem::dependent_load(2, 0xc0),
        ];
        let rec: Vec<_> = TraceSource::recorded(items.clone()).collect();
        let stream: Vec<_> = TraceSource::streaming(items.clone().into_iter()).collect();
        assert_eq!(rec, items);
        assert_eq!(stream, items);
    }

    #[test]
    fn debug_is_implemented_for_both_variants() {
        let rec = TraceSource::recorded(vec![TraceItem::load(0, 0)]);
        assert!(format!("{rec:?}").contains("Recorded"));
        let s = TraceSource::streaming(std::iter::empty());
        assert!(format!("{s:?}").contains("Streaming"));
    }
}
