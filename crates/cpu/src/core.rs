//! Event-driven out-of-order core model.
//!
//! The model approximates the paper's 3 GHz, 4-wide, 192-entry-ROB cores
//! (Table 1) with a reorder-window occupancy machine:
//!
//! * references **dispatch** into the window as frontend bandwidth allows
//!   (`width` instructions per cycle) while window space remains;
//! * loads **issue** to the memory hierarchy at dispatch (full MLP across
//!   the window), except references marked dependent, which wait for the
//!   previous reference's completion;
//! * the window **retires** in order at `width` instructions per cycle; a
//!   load at the head blocks retirement until its data returns — the
//!   classic ROB-full stall that makes IPC latency-sensitive;
//! * stores retire without waiting (store-buffer semantics) but still
//!   access the hierarchy.
//!
//! Time is an abstract `u64` tick count; the caller supplies
//! `ticks_per_cycle` (8 at 3 GHz with the 1/24 ns tick base).

use std::collections::VecDeque;

use crate::trace::TraceItem;

/// Core shape parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Reorder window capacity in instructions (Table 1: 192).
    pub rob_entries: u32,
    /// Dispatch/retire width in instructions per cycle (Table 1: 4).
    pub width: u32,
    /// Simulation ticks per CPU cycle.
    pub ticks_per_cycle: u64,
}

impl CoreConfig {
    /// The paper's core: 3 GHz, 4-wide issue, 192-entry ROB.
    pub fn paper_default() -> Self {
        CoreConfig {
            rob_entries: 192,
            width: 4,
            ticks_per_cycle: 8,
        }
    }

    fn frontend_ticks(&self, insts: u64) -> u64 {
        insts.div_ceil(self.width as u64) * self.ticks_per_cycle
    }
}

/// A memory request the core wants serviced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Core-local request id; pass back to [`Core::complete`].
    pub id: u64,
    /// Byte address.
    pub addr: u64,
    /// Store or load.
    pub is_write: bool,
    /// Tick at which the request enters the memory hierarchy.
    pub issue_at: u64,
}

#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    id: u64,
    insts: u64,
    window_cost: u64,
    is_write: bool,
    /// Completion time; set at dispatch for stores, on `complete` for loads.
    completed_at: Option<u64>,
    /// Dependent reference not yet released by its predecessor.
    waiting_on_prev: bool,
    addr: u64,
    issue_at: u64,
}

/// Cumulative core statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Instructions retired.
    pub insts_retired: u64,
    /// Loads issued to the hierarchy.
    pub loads: u64,
    /// Stores issued to the hierarchy.
    pub stores: u64,
}

/// The out-of-order core model. See the [module docs](self) for semantics.
///
/// Drive it with:
/// 1. [`Core::dispatch_from`] whenever window space may exist, collecting
///    issueable [`MemRequest`]s;
/// 2. [`Core::complete`] when the hierarchy finishes a request, again
///    collecting newly issueable requests;
/// 3. [`Core::is_finished`] / [`Core::finish_time`] to detect the end.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    window: VecDeque<WindowEntry>,
    window_insts: u64,
    /// An item pulled from the trace that did not fit in the window yet.
    staged: Option<TraceItem>,
    /// Time up to which the frontend has dispatched.
    dispatch_clock: u64,
    /// Time up to which instructions have retired.
    retire_clock: u64,
    next_id: u64,
    /// Completion time of the most recently dispatched reference, if known
    /// (for dependence chains).
    prev_ref_completion: Option<u64>,
    /// Id of the previous reference when its completion is still unknown.
    prev_ref_id: Option<u64>,
    inst_budget: u64,
    insts_dispatched: u64,
    stats: CoreStats,
    trace_done: bool,
}

impl Core {
    /// Creates a core that will run until `inst_budget` instructions have
    /// been dispatched (the trace may end earlier).
    ///
    /// # Panics
    ///
    /// Panics if any configuration field is zero.
    pub fn new(cfg: CoreConfig, inst_budget: u64) -> Self {
        assert!(cfg.rob_entries > 0 && cfg.width > 0 && cfg.ticks_per_cycle > 0);
        Core {
            cfg,
            window: VecDeque::new(),
            window_insts: 0,
            staged: None,
            dispatch_clock: 0,
            retire_clock: 0,
            next_id: 0,
            prev_ref_completion: Some(0),
            prev_ref_id: None,
            inst_budget,
            insts_dispatched: 0,
            stats: CoreStats::default(),
            trace_done: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Pulls trace items into the window while space and budget remain,
    /// appending the requests that become issueable to `out`.
    pub fn dispatch_from(
        &mut self,
        trace: &mut dyn Iterator<Item = TraceItem>,
        out: &mut Vec<MemRequest>,
    ) {
        loop {
            let budget_left = self.inst_budget.saturating_sub(self.insts_dispatched);
            // The staged item (if any) must dispatch before anything new.
            let item = match self.staged.take() {
                Some(item) => item,
                None => {
                    if self.trace_done || budget_left == 0 {
                        return;
                    }
                    match trace.next() {
                        Some(item) => item,
                        None => {
                            self.trace_done = true;
                            return;
                        }
                    }
                }
            };
            let insts = item.insts().min(budget_left.max(1));
            let window_cost = insts.min(self.cfg.rob_entries as u64);
            if self.window_insts + window_cost > self.cfg.rob_entries as u64 {
                self.staged = Some(item);
                return;
            }
            self.admit(item, insts, window_cost, out);
        }
    }

    fn admit(&mut self, item: TraceItem, insts: u64, window_cost: u64, out: &mut Vec<MemRequest>) {
        // Frontend takes insts/width cycles to reach this reference, and
        // cannot run ahead of what has already retired plus the window.
        self.dispatch_clock = self.dispatch_clock.max(self.retire_clock);
        self.dispatch_clock += self.cfg.frontend_ticks(insts);
        let id = self.next_id;
        self.next_id += 1;
        let mut issue_at = self.dispatch_clock;
        let mut waiting = false;
        if item.depends_on_prev {
            match self.prev_ref_completion {
                Some(t) => issue_at = issue_at.max(t),
                None => waiting = true,
            }
        }
        let completed_at = if item.is_write && !waiting {
            Some(issue_at)
        } else {
            None
        };
        self.window.push_back(WindowEntry {
            id,
            insts,
            window_cost,
            is_write: item.is_write,
            completed_at,
            waiting_on_prev: waiting,
            addr: item.addr,
            issue_at,
        });
        self.window_insts += window_cost;
        self.insts_dispatched += insts;
        if item.is_write {
            self.stats.stores += 1;
            if !waiting {
                self.prev_ref_completion = Some(issue_at);
                self.prev_ref_id = None;
            } else {
                // Completion (and hence issue time) resolves on release.
                self.prev_ref_completion = None;
                self.prev_ref_id = Some(id);
            }
        } else {
            self.stats.loads += 1;
            self.prev_ref_completion = None;
            self.prev_ref_id = Some(id);
        }
        if !waiting {
            out.push(MemRequest {
                id,
                addr: item.addr,
                is_write: item.is_write,
                issue_at,
            });
        }
        // Stores (and anything already complete) may retire immediately.
        self.retire_ready();
    }

    /// Records the completion of request `id` at time `at`, retiring what
    /// can retire and releasing a dependent successor. Newly issueable
    /// requests are appended to `out`.
    ///
    /// # Panics
    ///
    /// Panics (debug) on double or unknown completion.
    pub fn complete(&mut self, id: u64, at: u64, out: &mut Vec<MemRequest>) {
        let pos = self.window.iter().position(|e| e.id == id);
        let Some(pos) = pos else {
            debug_assert!(false, "completion of unknown request {id}");
            return;
        };
        {
            let e = &mut self.window[pos];
            debug_assert!(e.completed_at.is_none(), "double completion of {id}");
            e.completed_at = Some(at);
        }
        if self.prev_ref_id == Some(id) {
            self.prev_ref_completion = Some(at);
            self.prev_ref_id = None;
        }
        // Only the immediately following reference can depend on `id`
        // (dependencies are chained through adjacent trace items).
        if let Some(next) = self.window.get_mut(pos + 1) {
            if next.waiting_on_prev {
                next.waiting_on_prev = false;
                next.issue_at = next.issue_at.max(at);
                if next.is_write {
                    next.completed_at = Some(next.issue_at);
                    if self.prev_ref_id == Some(next.id) {
                        self.prev_ref_completion = Some(next.issue_at);
                        self.prev_ref_id = None;
                    }
                }
                out.push(MemRequest {
                    id: next.id,
                    addr: next.addr,
                    is_write: next.is_write,
                    issue_at: next.issue_at,
                });
            }
        }
        self.retire_ready();
    }

    fn retire_ready(&mut self) {
        while let Some(head) = self.window.front() {
            if head.waiting_on_prev {
                break;
            }
            let Some(done) = head.completed_at else { break };
            let head = self.window.pop_front().expect("nonempty");
            self.window_insts -= head.window_cost;
            self.retire_clock = (self.retire_clock + self.cfg.frontend_ticks(head.insts)).max(done);
            self.stats.insts_retired += head.insts;
        }
    }

    /// Whether the trace is exhausted (or budget reached) and the window
    /// fully drained.
    pub fn is_finished(&self) -> bool {
        (self.trace_done || self.insts_dispatched >= self.inst_budget)
            && self.window.is_empty()
            && self.staged.is_none()
    }

    /// Whether the window can currently accept at least one instruction
    /// (and no item is staged waiting for more space).
    pub fn window_has_space(&self) -> bool {
        self.staged.is_none() && self.window_insts < self.cfg.rob_entries as u64
    }

    /// Outstanding (unretired) references in the window.
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Time at which the last retired instruction retired.
    pub fn finish_time(&self) -> u64 {
        self.retire_clock
    }

    /// Instructions dispatched so far (including the compute gaps).
    pub fn insts_dispatched(&self) -> u64 {
        self.insts_dispatched
    }

    /// Instructions retired so far.
    pub fn insts_retired(&self) -> u64 {
        self.stats.insts_retired
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Instructions per cycle over the whole run so far.
    pub fn ipc(&self) -> f64 {
        if self.retire_clock == 0 {
            0.0
        } else {
            self.stats.insts_retired as f64
                / (self.retire_clock as f64 / self.cfg.ticks_per_cycle as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TPC: u64 = 8;

    fn cfg() -> CoreConfig {
        CoreConfig::paper_default()
    }

    fn drain(core: &mut Core, items: Vec<TraceItem>) -> Vec<MemRequest> {
        let mut out = Vec::new();
        let mut it = items.into_iter();
        core.dispatch_from(&mut it, &mut out);
        out
    }

    #[test]
    fn pure_compute_retires_at_full_width() {
        let mut core = Core::new(cfg(), 400);
        // One store after 399 compute instructions: all retire freely.
        let reqs = drain(&mut core, vec![TraceItem::store(399, 0)]);
        assert_eq!(reqs.len(), 1);
        assert!(core.is_finished());
        // 400 insts at 4-wide = 100 cycles = 800 ticks.
        assert_eq!(core.finish_time(), 100 * TPC);
        assert!((core.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn load_blocks_retirement_until_completion() {
        let mut core = Core::new(cfg(), 4);
        let reqs = drain(&mut core, vec![TraceItem::load(3, 0x40)]);
        assert_eq!(reqs.len(), 1);
        assert!(!core.is_finished(), "load outstanding");
        let mut out = Vec::new();
        core.complete(reqs[0].id, 1000, &mut out);
        assert!(core.is_finished());
        assert_eq!(core.finish_time(), 1000);
    }

    #[test]
    fn independent_loads_overlap() {
        let mut core = Core::new(cfg(), 8);
        let reqs = drain(
            &mut core,
            vec![TraceItem::load(3, 0x40), TraceItem::load(3, 0x80)],
        );
        assert_eq!(reqs.len(), 2, "both issue without waiting");
        assert!(reqs[1].issue_at - reqs[0].issue_at <= 2 * TPC);
        let mut out = Vec::new();
        core.complete(reqs[0].id, 500, &mut out);
        core.complete(reqs[1].id, 510, &mut out);
        assert!(core.is_finished());
        // Overlapped: total time ~ one memory latency, not two.
        assert_eq!(core.finish_time(), 510);
    }

    #[test]
    fn dependent_load_serialises() {
        let mut core = Core::new(cfg(), 8);
        let reqs = drain(
            &mut core,
            vec![TraceItem::load(3, 0x40), TraceItem::dependent_load(3, 0x80)],
        );
        assert_eq!(reqs.len(), 1, "dependent load must wait");
        let mut out = Vec::new();
        core.complete(reqs[0].id, 500, &mut out);
        assert_eq!(out.len(), 1, "dependent released on completion");
        assert!(out[0].issue_at >= 500);
        core.complete(out[0].id, 900, &mut out);
        assert!(core.is_finished());
        assert_eq!(core.finish_time(), 900);
    }

    #[test]
    fn dependent_chain_of_three_serialises_fully() {
        let mut core = Core::new(cfg(), 12);
        let reqs = drain(
            &mut core,
            vec![
                TraceItem::load(3, 0x40),
                TraceItem::dependent_load(3, 0x80),
                TraceItem::dependent_load(3, 0xc0),
            ],
        );
        assert_eq!(reqs.len(), 1);
        let mut out = Vec::new();
        core.complete(reqs[0].id, 100, &mut out);
        assert_eq!(out.len(), 1);
        let second = out.pop().unwrap();
        core.complete(second.id, 250, &mut out);
        assert_eq!(out.len(), 1);
        let third = out.pop().unwrap();
        assert!(third.issue_at >= 250);
        core.complete(third.id, 400, &mut out);
        assert!(core.is_finished());
        assert_eq!(core.finish_time(), 400);
    }

    #[test]
    fn dependent_store_releases_and_retires() {
        let mut core = Core::new(cfg(), 8);
        let reqs = drain(
            &mut core,
            vec![
                TraceItem::load(3, 0x40),
                TraceItem {
                    gap: 3,
                    addr: 0x80,
                    is_write: true,
                    depends_on_prev: true,
                },
            ],
        );
        assert_eq!(reqs.len(), 1);
        let mut out = Vec::new();
        core.complete(reqs[0].id, 600, &mut out);
        assert_eq!(out.len(), 1, "store released");
        assert!(out[0].is_write);
        assert!(core.is_finished(), "released store retires eagerly");
    }

    #[test]
    fn window_fills_and_unblocks_on_retirement() {
        let mut core = Core::new(cfg(), 10_000);
        // Each load occupies 48 insts: window of 192 fits exactly 4.
        let items: Vec<_> = (0..8).map(|i| TraceItem::load(47, 0x40 * i)).collect();
        let mut out = Vec::new();
        let mut it = items.into_iter();
        core.dispatch_from(&mut it, &mut out);
        assert_eq!(out.len(), 4, "window capacity 192/48 = 4");
        assert_eq!(core.in_flight(), 4);
        assert!(!core.window_has_space(), "a fifth item is staged");
        // Completing the head frees space for the staged item.
        let head = out[0].id;
        core.complete(head, 2000, &mut out);
        core.dispatch_from(&mut it, &mut out);
        assert_eq!(out.len(), 5);
        assert!(out[4].issue_at >= 2000, "new dispatch gated by retirement");
    }

    #[test]
    fn staged_item_dispatches_before_new_trace_items() {
        let mut core = Core::new(cfg(), 10_000);
        let mut out = Vec::new();
        let mut it = (0..8u64).map(|i| TraceItem::load(47, 0x40 * i));
        core.dispatch_from(&mut it, &mut out);
        let first_staged_addr = 0x40 * 4;
        core.complete(out[0].id, 100, &mut out);
        core.dispatch_from(&mut it, &mut out);
        assert_eq!(
            out[4].addr, first_staged_addr,
            "order preserved across staging"
        );
    }

    #[test]
    fn stores_do_not_block_retirement() {
        let mut core = Core::new(cfg(), 2);
        let reqs = drain(
            &mut core,
            vec![TraceItem::store(0, 0), TraceItem::store(0, 64)],
        );
        assert_eq!(reqs.len(), 2);
        assert!(core.is_finished(), "stores retire eagerly");
        assert_eq!(core.stats().stores, 2);
    }

    #[test]
    fn giant_gap_is_window_clamped_but_counted() {
        let mut core = Core::new(cfg(), 100_000);
        let reqs = drain(&mut core, vec![TraceItem::load(9_999, 0)]);
        assert_eq!(reqs.len(), 1);
        let mut out = Vec::new();
        core.complete(reqs[0].id, 1, &mut out);
        assert!(core.is_finished());
        assert_eq!(core.insts_retired(), 10_000);
        // Frontend-bound: 10 000 insts / 4-wide = 2 500 cycles.
        assert_eq!(core.finish_time(), 2_500 * TPC);
    }

    #[test]
    fn inst_budget_truncates_dispatch() {
        let mut core = Core::new(cfg(), 10);
        let mut out = Vec::new();
        let mut it = (0..100u64).map(|i| TraceItem::load(3, 64 * i));
        core.dispatch_from(&mut it, &mut out);
        assert!(core.insts_dispatched() <= 12, "stops near budget");
        for r in out.clone() {
            let mut tmp = Vec::new();
            core.complete(r.id, 10, &mut tmp);
        }
        assert!(core.is_finished());
        assert!(core.insts_retired() >= 10);
    }

    #[test]
    fn latency_sensitivity_shows_in_ipc() {
        // The same dependent-load trace at two memory latencies: slower
        // memory must yield lower IPC.
        let run = |lat: u64| {
            let mut core = Core::new(cfg(), 100_000);
            let mut out = Vec::new();
            let mut it = (0..500u64)
                .map(|i| TraceItem::dependent_load(99, 64 * i))
                .collect::<Vec<_>>()
                .into_iter();
            core.dispatch_from(&mut it, &mut out);
            while !out.is_empty() {
                let pending = std::mem::take(&mut out);
                for r in pending {
                    core.complete(r.id, r.issue_at + lat, &mut out);
                }
                core.dispatch_from(&mut it, &mut out);
            }
            assert!(core.is_finished());
            core.ipc()
        };
        let fast = run(100);
        let slow = run(1000);
        assert!(fast > slow, "fast {fast} !> slow {slow}");
    }

    #[test]
    fn mlp_improves_throughput_vs_serial_chain() {
        // Independent loads overlap; dependent loads do not. Same latency,
        // same count — the independent trace must finish sooner.
        let run = |dependent: bool| {
            let mut core = Core::new(cfg(), 1_000_000);
            let mut out = Vec::new();
            let items: Vec<_> = (0..200u64)
                .map(|i| {
                    if dependent {
                        TraceItem::dependent_load(7, 64 * i)
                    } else {
                        TraceItem::load(7, 64 * i)
                    }
                })
                .collect();
            let mut it = items.into_iter();
            core.dispatch_from(&mut it, &mut out);
            while !out.is_empty() {
                let pending = std::mem::take(&mut out);
                for r in pending {
                    core.complete(r.id, r.issue_at + 2000, &mut out);
                }
                core.dispatch_from(&mut it, &mut out);
            }
            assert!(core.is_finished());
            core.finish_time()
        };
        let parallel = run(false);
        let serial = run(true);
        assert!(
            parallel * 4 < serial,
            "MLP should be ≫: parallel {parallel}, serial {serial}"
        );
    }
}
