//! # das-cpu — trace-driven out-of-order core model
//!
//! CPU substrate for the DAS-DRAM reproduction. Substitutes for the paper's
//! Marss86 full-system cores with a reorder-window occupancy model (see
//! `DESIGN.md`): 3 GHz, 4-wide, 192-entry ROB, full memory-level parallelism
//! across the window, in-order retirement blocked by incomplete loads, and
//! explicit serialisation for dependent (pointer-chasing) references.
//!
//! # Examples
//!
//! ```
//! use das_cpu::{Core, CoreConfig, TraceItem};
//!
//! let mut core = Core::new(CoreConfig::paper_default(), 1000);
//! let mut requests = Vec::new();
//! let mut trace = vec![TraceItem::load(99, 0x1000)].into_iter();
//! core.dispatch_from(&mut trace, &mut requests);
//! let req = requests.pop().expect("load issued");
//! core.complete(req.id, req.issue_at + 800, &mut requests);
//! assert!(core.is_finished());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod core;
pub mod source;
pub mod trace;

pub use crate::core::{Core, CoreConfig, CoreStats, MemRequest};
pub use source::TraceSource;
pub use trace::TraceItem;
