//! The inclusive-cache management alternative of §5.
//!
//! The paper weighs two ways to manage the asymmetric DRAM: treating the
//! fast subarrays as a hardware-managed **inclusive** cache of the slow
//! level, or forming one uniform space managed as an **exclusive** cache.
//! It adopts exclusive for capacity (inclusive duplicates 1/8 of memory)
//! but credits inclusive with simpler translation and faster replacement
//! when the victim is clean. This module implements the inclusive
//! alternative so that the trade-off is reproducible (see the
//! `ablation_inclusive` bench).
//!
//! Semantics: the OS-visible address space covers **slow rows only**; every
//! logical row has a fixed home slow row. Each migration group's fast slots
//! hold copies of up to `fast_slots` of its rows, tagged and dirty-tracked.
//! A fill over a clean victim is one row copy (1.5 tRC); over a dirty
//! victim, the victim is first written back to its home row (two serial
//! migrations, 3 tRC).

use das_dram::command::MigrationKind;
use das_dram::geometry::{BankCoord, BankLayout, DramGeometry, FastRatio};

use crate::groups::GroupId;
use crate::management::{ManagementConfig, ManagementStats, Translation};
use crate::promotion::{FilterStats, PromotionFilter};
use crate::replacement::Replacer;
use crate::translation::{TableAddressMap, TranslationCache, TranslationSource, TranslationStats};

/// A fill the controller should perform for the inclusive cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillRequest {
    /// Bank holding the group.
    pub bank: BankCoord,
    /// Migration group.
    pub group: u32,
    /// Logical row being cached.
    pub promotee: u32,
    /// Fast slot index within the group receiving the copy.
    pub slot: u8,
    /// Physical row of the promotee's home (copy source).
    pub promotee_phys: u32,
    /// Physical row of the fast slot (copy destination).
    pub slot_phys: u32,
    /// `Copy` for a clean victim, `CopyWithWriteback` for a dirty one.
    pub kind: MigrationKind,
}

#[derive(Debug, Clone, Copy, Default)]
struct Tag {
    /// Cached logical slot + 1; 0 = empty.
    resident: u16,
    dirty: bool,
}

/// Hardware-managed inclusive cache over the fast subarrays.
#[derive(Debug, Clone)]
pub struct InclusiveManager {
    cfg: ManagementConfig,
    geometry: DramGeometry,
    layout: BankLayout,
    /// `tags[bank][group * fast_slots + slot]`.
    tags: Vec<Vec<Tag>>,
    fast_slots: u32,
    slow_per_group: u32,
    tcache: TranslationCache,
    table_map: TableAddressMap,
    replacer: Replacer,
    filter: PromotionFilter,
    busy_groups: std::collections::HashSet<GroupId>,
    stats: ManagementStats,
    dirty_fills: u64,
}

impl InclusiveManager {
    /// Creates the manager. The logical row space per bank is the **slow**
    /// row count (`usable_rows_per_bank`); fast rows are cache only.
    ///
    /// # Panics
    ///
    /// Panics if group geometry does not divide evenly.
    pub fn new(cfg: ManagementConfig, geometry: DramGeometry, layout: BankLayout) -> Self {
        let fast_slots = cfg.fast_ratio.apply(cfg.group_size);
        let slow_per_group = cfg.group_size - fast_slots;
        assert!(fast_slots > 0 && slow_per_group > 0);
        assert!(
            layout.slow_rows().is_multiple_of(slow_per_group),
            "slow rows {} not divisible into groups of {slow_per_group}",
            layout.slow_rows()
        );
        let groups = layout.slow_rows() / slow_per_group;
        assert!(
            groups * fast_slots <= layout.fast_rows(),
            "not enough fast rows for {groups} groups"
        );
        let banks = geometry.total_banks() as usize;
        let table_map = TableAddressMap::new(geometry.total_bytes() - geometry.total_rows());
        InclusiveManager {
            cfg,
            geometry: geometry.clone(),
            layout,
            tags: vec![vec![Tag::default(); (groups * fast_slots) as usize]; banks],
            fast_slots,
            slow_per_group,
            tcache: TranslationCache::new(cfg.tcache_bytes, cfg.tcache_ways),
            table_map,
            replacer: Replacer::new(cfg.replacement, cfg.seed),
            filter: PromotionFilter::new(cfg.promotion_threshold, cfg.filter_counters),
            busy_groups: std::collections::HashSet::new(),
            stats: ManagementStats::default(),
            dirty_fills: 0,
        }
    }

    /// Usable (OS-visible) logical rows per bank: the slow rows.
    pub fn usable_rows_per_bank(&self) -> u32 {
        self.layout.slow_rows()
    }

    fn locate(&self, logical_row: u32) -> (u32, u32) {
        (
            logical_row / self.slow_per_group,
            logical_row % self.slow_per_group,
        )
    }

    fn tag_index(&self, group: u32, slot: u8) -> usize {
        (group * self.fast_slots) as usize + slot as usize
    }

    /// The fast slot caching `logical_row`, if any.
    fn cached_slot(&self, bank_idx: usize, logical_row: u32) -> Option<u8> {
        let (group, slot_in_group) = self.locate(logical_row);
        for s in 0..self.fast_slots as u8 {
            let t = self.tags[bank_idx][self.tag_index(group, s)];
            if t.resident == slot_in_group as u16 + 1 {
                return Some(s);
            }
        }
        None
    }

    /// Home physical row of a logical row (its slow slot).
    pub fn home_phys(&self, logical_row: u32) -> u32 {
        self.layout.slow_to_phys(logical_row)
    }

    fn slot_phys(&self, group: u32, slot: u8) -> u32 {
        self.layout
            .fast_to_phys(group * self.fast_slots + slot as u32)
    }

    /// Current physical location and cached-ness of a logical row.
    pub fn peek(&self, bank: BankCoord, logical_row: u32) -> (u32, bool) {
        let bank_idx = self.geometry.bank_index(bank);
        match self.cached_slot(bank_idx, logical_row) {
            Some(s) => {
                let (group, _) = self.locate(logical_row);
                (self.slot_phys(group, s), true)
            }
            None => (self.home_phys(logical_row), false),
        }
    }

    /// Translates a request: cached rows are served from their fast copy.
    ///
    /// The inclusive tag store covers only the fast level, so (as the paper
    /// notes) the translation structures are smaller; the lookup path is
    /// modelled identically to the exclusive design for comparability.
    pub fn translate(&mut self, bank: BankCoord, logical_row: u32) -> Translation {
        let (phys_row, in_fast) = self.peek(bank, logical_row);
        let row_id = self.geometry.global_row_id(bank, logical_row);
        let source = if self.cfg.static_mapping {
            TranslationSource::Cache
        } else {
            let src = self.tcache.lookup(row_id);
            if src == TranslationSource::TableFetch && in_fast {
                self.tcache.insert(row_id);
            }
            src
        };
        Translation {
            phys_row,
            in_fast,
            source,
            table_line: self
                .table_map
                .entry_line(row_id, self.geometry.line_bytes as u64),
        }
    }

    /// Records a serviced access; slow-level demand hits may trigger a fill.
    pub fn on_data_access(
        &mut self,
        bank: BankCoord,
        logical_row: u32,
        is_write: bool,
        now: u64,
    ) -> Option<FillRequest> {
        let bank_idx = self.geometry.bank_index(bank);
        let (group, _) = self.locate(logical_row);
        let gid = GroupId {
            bank: bank_idx,
            group,
        };
        if let Some(slot) = self.cached_slot(bank_idx, logical_row) {
            self.stats.fast_hits += 1;
            let idx = self.tag_index(group, slot);
            self.tags[bank_idx][idx].dirty |= is_write;
            self.replacer
                .note_fast_access(gid, slot, self.fast_slots, now);
            return None;
        }
        self.stats.slow_hits += 1;
        // A write to an uncached row updates its home copy; it does not
        // allocate (write-no-allocate at the row level — allocating on
        // write-backs would churn streams).
        if is_write {
            return None;
        }
        let row_id = self.geometry.global_row_id(bank, logical_row);
        if !self.filter.observe(row_id) {
            return None;
        }
        if self.busy_groups.contains(&gid) {
            self.stats.deferred_busy += 1;
            return None;
        }
        let slot = self.replacer.choose_victim(gid, self.fast_slots);
        let idx = self.tag_index(group, slot);
        let victim = self.tags[bank_idx][idx];
        let kind = if victim.resident != 0 && victim.dirty {
            self.dirty_fills += 1;
            MigrationKind::CopyWithWriteback
        } else {
            MigrationKind::Copy
        };
        self.busy_groups.insert(gid);
        Some(FillRequest {
            bank,
            group,
            promotee: logical_row,
            slot,
            promotee_phys: self.home_phys(logical_row),
            slot_phys: self.slot_phys(group, slot),
            kind,
        })
    }

    /// Commits a completed fill: retags the slot, keeps the translation
    /// cache coherent, and marks the slot most-recently-used so the next
    /// fill does not immediately evict it.
    pub fn commit_fill(&mut self, req: &FillRequest, now: u64) {
        let bank_idx = self.geometry.bank_index(req.bank);
        let idx = self.tag_index(req.group, req.slot);
        let old = self.tags[bank_idx][idx];
        if old.resident != 0 {
            let victim_row = req.group * self.slow_per_group + (old.resident as u32 - 1);
            let victim_id = self.geometry.global_row_id(req.bank, victim_row);
            self.tcache.invalidate(victim_id);
        }
        let (_, slot_in_group) = self.locate(req.promotee);
        self.tags[bank_idx][idx] = Tag {
            resident: slot_in_group as u16 + 1,
            dirty: false,
        };
        let id = self.geometry.global_row_id(req.bank, req.promotee);
        self.tcache.insert(id);
        self.filter.forget(id);
        let gid = GroupId {
            bank: bank_idx,
            group: req.group,
        };
        self.replacer
            .note_fast_access(gid, req.slot, self.fast_slots, now);
        self.busy_groups.remove(&gid);
        self.stats.promotions += 1;
    }

    /// Abandons a fill that could not be scheduled.
    pub fn abort_fill(&mut self, req: &FillRequest) {
        let bank_idx = self.geometry.bank_index(req.bank);
        self.busy_groups.remove(&GroupId {
            bank: bank_idx,
            group: req.group,
        });
        self.stats.aborted += 1;
    }

    /// Management statistics (promotions = fills).
    pub fn stats(&self) -> ManagementStats {
        self.stats
    }

    /// Fills that required a dirty-victim write-back.
    pub fn dirty_fills(&self) -> u64 {
        self.dirty_fills
    }

    /// Translation-cache statistics.
    pub fn translation_stats(&self) -> TranslationStats {
        self.tcache.stats()
    }

    /// Current number of valid translation-cache entries (O(1); intended
    /// for perf/diagnostic occupancy sampling).
    pub fn tcache_occupancy(&self) -> usize {
        self.tcache.occupancy()
    }

    /// Promotion-filter statistics.
    pub fn filter_stats(&self) -> FilterStats {
        self.filter.stats()
    }

    /// Capacity lost to duplication, in bytes (the exclusive design's §5
    /// argument against inclusive).
    pub fn duplicated_bytes(&self) -> u64 {
        self.geometry.total_banks() as u64
            * self.layout.fast_rows() as u64
            * self.geometry.row_bytes as u64
    }
}

/// Convenience: the fast ratio's slots per group, shared with tests.
pub fn fast_slots_per_group(group_size: u32, ratio: FastRatio) -> u32 {
    ratio.apply(group_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use das_dram::geometry::Arrangement;

    fn manager() -> InclusiveManager {
        let geometry = DramGeometry::paper_scaled(64);
        let layout = BankLayout::build(
            geometry.rows_per_bank,
            FastRatio::new(1, 8),
            Arrangement::ReducedInterleaving,
            128,
            512,
        );
        let cfg = ManagementConfig {
            tcache_bytes: 2 << 10,
            ..ManagementConfig::paper_default()
        };
        InclusiveManager::new(cfg, geometry, layout)
    }

    fn bank0() -> BankCoord {
        BankCoord::new(0, 0, 0)
    }

    #[test]
    fn usable_space_is_slow_rows_only() {
        let m = manager();
        assert_eq!(m.usable_rows_per_bank(), 448, "512 rows - 64 fast");
        assert!(m.duplicated_bytes() > 0);
    }

    #[test]
    fn first_read_fills_with_clean_copy() {
        let mut m = manager();
        let (phys, cached) = m.peek(bank0(), 10);
        assert!(!cached);
        assert_eq!(phys, m.home_phys(10));
        let fill = m
            .on_data_access(bank0(), 10, false, 1)
            .expect("threshold 1 fills");
        assert_eq!(fill.kind, MigrationKind::Copy, "empty slot: clean fill");
        assert_eq!(fill.promotee_phys, m.home_phys(10));
        m.commit_fill(&fill, 2);
        let (phys, cached) = m.peek(bank0(), 10);
        assert!(cached);
        assert_eq!(phys, fill.slot_phys);
    }

    #[test]
    fn dirty_victim_costs_a_writeback_copy() {
        let mut m = manager();
        // Fill several rows; fills may evict each other, so pick a row that
        // is actually resident afterwards and dirty it.
        for row in 0..8u32 {
            if let Some(f) = m.on_data_access(bank0(), row, false, row as u64) {
                m.commit_fill(&f, row as u64);
            }
        }
        let dirty_row = (0..8u32)
            .find(|&r| m.peek(bank0(), r).1)
            .expect("something cached");
        assert!(
            m.on_data_access(bank0(), dirty_row, true, 100).is_none(),
            "cached write"
        );
        // Make the dirty row the LRU resident by touching all others later.
        for row in 0..8u32 {
            if row != dirty_row && m.peek(bank0(), row).1 {
                assert!(m
                    .on_data_access(bank0(), row, false, 200 + row as u64)
                    .is_none());
            }
        }
        let fill = m.on_data_access(bank0(), 20, false, 300).expect("fills");
        assert_eq!(fill.kind, MigrationKind::CopyWithWriteback);
        m.commit_fill(&fill, 301);
        assert_eq!(m.dirty_fills(), 1);
        // The dirty victim reverted to its home row.
        let (phys, cached) = m.peek(bank0(), dirty_row);
        assert!(!cached);
        assert_eq!(phys, m.home_phys(dirty_row));
    }

    #[test]
    fn uncached_writes_do_not_allocate() {
        let mut m = manager();
        assert!(m.on_data_access(bank0(), 5, true, 1).is_none());
        assert!(!m.peek(bank0(), 5).1);
    }

    #[test]
    fn busy_group_defers() {
        let mut m = manager();
        let f = m.on_data_access(bank0(), 1, false, 1).unwrap();
        assert!(m.on_data_access(bank0(), 2, false, 2).is_none());
        m.abort_fill(&f);
        assert!(m.on_data_access(bank0(), 2, false, 3).is_some());
    }

    #[test]
    fn translation_tracks_fills() {
        let mut m = manager();
        let t = m.translate(bank0(), 3);
        assert!(!t.in_fast);
        assert_eq!(t.source, TranslationSource::TableFetch);
        let fill = m.on_data_access(bank0(), 3, false, 1).unwrap();
        m.commit_fill(&fill, 2);
        let t = m.translate(bank0(), 3);
        assert!(t.in_fast);
        assert_eq!(t.source, TranslationSource::Cache);
    }

    #[test]
    fn helper_matches_ratio() {
        assert_eq!(fast_slots_per_group(32, FastRatio::new(1, 8)), 4);
    }
}
